#!/usr/bin/env python3
"""Shopping-cart scenario: session state + shared in-memory inventory.

This is the kind of workload the paper's introduction motivates: the
middle tier keeps each customer's cart as *session state* and caches hot
inventory counts as *shared state* (instead of paying a database round
trip per request — §1.3: "an MSP program can now cache shared state
retrieved from a database, enabling later requests to have speedy
access").  Both recover exactly-once across server crashes.

Three customers race to buy a scarce item while the store server
crashes twice; afterwards inventory + sold counts still add up.

Run:  python examples/shopping_cart.py
"""

import json

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator

INITIAL_STOCK = {"widget": 12, "gadget": 5}


def _get_json(raw, default):
    return json.loads(raw.decode()) if raw else default


def add_to_cart(ctx, argument):
    """Reserve one unit of an item into this customer's cart.

    Uses ``ctx.update_shared`` — an atomic read-modify-write — so two
    concurrent shoppers can never both grab the last unit (the paper's
    plain per-access locks would allow that lost update).
    """
    item = argument.decode()
    yield from ctx.compute(0.15)

    seen = {}

    def take_one(raw: bytes) -> bytes:
        stock = int.from_bytes(raw, "big")
        seen["had"] = stock
        return max(stock - 1, 0).to_bytes(4, "big")

    new_raw = yield from ctx.update_shared(f"stock:{item}", take_one)
    if seen["had"] == 0:
        return b"SOLD-OUT"

    cart_raw = yield from ctx.get_session_var("cart")
    cart = _get_json(cart_raw, {})
    cart[item] = cart.get(item, 0) + 1
    yield from ctx.set_session_var("cart", json.dumps(cart).encode())
    left = int.from_bytes(new_raw, "big")
    return f"RESERVED {item} (left: {left})".encode()


def checkout(ctx, argument):
    """Turn the cart into an order; bump the shared sold counters."""
    yield from ctx.compute(0.3)
    cart_raw = yield from ctx.get_session_var("cart")
    cart = _get_json(cart_raw, {})
    for item, count in sorted(cart.items()):

        def add_sold(raw: bytes, count=count) -> bytes:
            return (int.from_bytes(raw, "big") + count).to_bytes(4, "big")

        yield from ctx.update_shared(f"sold:{item}", add_sold)
    yield from ctx.set_session_var("cart", b"{}")
    return json.dumps(cart).encode()


def main():
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed=7))
    store = MiddlewareServer(
        sim, network, "store", ServiceDomainConfig(), config=RecoveryConfig()
    )
    store.register_service("add_to_cart", add_to_cart)
    store.register_service("checkout", checkout)
    for item, count in INITIAL_STOCK.items():
        store.register_shared(f"stock:{item}", count.to_bytes(4, "big"))
        store.register_shared(f"sold:{item}", (0).to_bytes(4, "big"))
    store.start_process()

    client = EndClient(sim, network, "browsers")
    orders: list[dict] = []

    def shopper(name, wants):
        session = client.open_session("store", session_id=name)
        yield 1.0
        reserved = 0
        for item in wants:
            result = yield from session.call("add_to_cart", item.encode())
            if not result.payload.startswith(b"SOLD-OUT"):
                reserved += 1
        result = yield from session.call("checkout", b"")
        orders.append(json.loads(result.payload.decode()))
        print(f"  {name}: checked out {result.payload.decode()} "
              f"({reserved} items reserved)")

    def chaos():
        for delay in (25.0, 60.0):
            yield delay
            print("  *** store server crashes ***")
            store.crash()
            store.restart_process()

    shoppers = [
        sim.spawn(shopper("alice", ["widget"] * 5 + ["gadget"] * 3)),
        sim.spawn(shopper("bob", ["widget"] * 6 + ["gadget"] * 2)),
        sim.spawn(shopper("carol", ["gadget"] * 4 + ["widget"] * 4)),
    ]
    sim.spawn(chaos())
    for s in shoppers:
        sim.run_until_process(s, limit=120_000)

    print("\nfinal accounting:")
    total_ordered = {}
    for order in orders:
        for item, count in order.items():
            total_ordered[item] = total_ordered.get(item, 0) + count
    for item, initial in INITIAL_STOCK.items():
        left = int.from_bytes(store.shared[f"stock:{item}"].value, "big")
        sold = int.from_bytes(store.shared[f"sold:{item}"].value, "big")
        print(f"  {item}: initial {initial}, left {left}, sold {sold}, "
              f"in orders {total_ordered.get(item, 0)}")
        assert left + sold == initial, f"{item}: stock leaked!"
        assert sold == total_ordered.get(item, 0), f"{item}: phantom sale!"
    print("inventory conserved across crashes — exactly-once verified.")


if __name__ == "__main__":
    main()
