#!/usr/bin/env python3
"""Travel booking across a service domain: multi-MSP exactly-once.

A front-end *trips* MSP orchestrates bookings by calling a *flights* MSP
and a *hotels* MSP.  All three are operated by the same provider, so
they form one service domain and exchange messages with optimistic
logging (DVs attached, no flush per hop) — the paper's headline
optimization.  The reply to the end client crosses the domain boundary,
so a single distributed log flush covers the whole chain.

We kill the flights MSP at an awkward moment; its crash makes dependent
sessions on the trips MSP orphans, which roll back and re-execute —
without ever double-booking a seat.

Run:  python examples/travel_booking.py
"""

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def book_trip(ctx, argument):
    """Orchestrator on the trips MSP: one flight seat + one hotel night."""
    destination = argument.decode()
    yield from ctx.compute(0.2)
    flight = yield from ctx.call("flights", "reserve_seat", argument)
    hotel = yield from ctx.call("hotels", "reserve_room", argument)
    raw = yield from ctx.get_session_var("itinerary")
    trips = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("itinerary", trips.to_bytes(4, "big"))
    return f"trip#{trips} to {destination}: {flight.decode()}, {hotel.decode()}".encode()


def _reserve(ctx, variable, total, label):
    """Atomically take one unit of a shared counter (no double booking)."""
    seen = {}

    def take_one(raw: bytes) -> bytes:
        count = int.from_bytes(raw, "big")
        seen["had"] = count
        return max(count - 1, 0).to_bytes(4, "big")

    yield from ctx.update_shared(variable, take_one)
    if seen["had"] == 0:
        return f"NO-{label.upper()}S".encode()
    return f"{label}#{total - seen['had'] + 1}".encode()


def reserve_seat(ctx, argument):
    yield from ctx.compute(0.15)
    result = yield from _reserve(ctx, "seats", 200, "seat")
    return result


def reserve_room(ctx, argument):
    yield from ctx.compute(0.15)
    result = yield from _reserve(ctx, "rooms", 500, "room")
    return result


def main():
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed=3))
    # One service domain: optimistic logging between these three MSPs.
    domains = ServiceDomainConfig([["trips", "flights", "hotels"]])

    trips = MiddlewareServer(sim, network, "trips", domains, config=RecoveryConfig())
    flights = MiddlewareServer(sim, network, "flights", domains, config=RecoveryConfig())
    hotels = MiddlewareServer(sim, network, "hotels", domains, config=RecoveryConfig())
    trips.register_service("book_trip", book_trip)
    flights.register_service("reserve_seat", reserve_seat)
    flights.register_shared("seats", (200).to_bytes(4, "big"))
    hotels.register_service("reserve_room", reserve_room)
    hotels.register_shared("rooms", (500).to_bytes(4, "big"))
    for msp in (trips, flights, hotels):
        msp.start_process()

    client = EndClient(sim, network, "traveler")
    bookings = []

    def traveler(name, count):
        session = client.open_session("trips", session_id=name)
        yield 1.0
        for i in range(count):
            result = yield from session.call("book_trip", b"Beijing")
            bookings.append(result.payload.decode())

    def chaos():
        yield 70.0
        print("  *** flights MSP crashes (its unflushed log is lost) ***")
        flights.crash()
        flights.restart_process()
        yield 120.0
        print("  *** trips MSP crashes too ***")
        trips.crash()
        trips.restart_process()

    travelers = [
        sim.spawn(traveler("ann", 8)),
        sim.spawn(traveler("ben", 8)),
    ]
    sim.spawn(chaos())
    for t in travelers:
        sim.run_until_process(t, limit=300_000)

    print(f"completed bookings: {len(bookings)}")
    for line in bookings[:4]:
        print(f"  {line}")
    print("  ...")
    seats_left = int.from_bytes(flights.shared["seats"].value, "big")
    rooms_left = int.from_bytes(hotels.shared["rooms"].value, "big")
    print(f"seats consumed: {200 - seats_left} (expected {len(bookings)})")
    print(f"rooms consumed: {500 - rooms_left} (expected {len(bookings)})")
    assert 200 - seats_left == len(bookings), "seat double-booked or lost!"
    assert 500 - rooms_left == len(bookings), "room double-booked or lost!"
    print(f"orphan recoveries at trips MSP: {trips.stats.orphan_recoveries}")
    print("no double bookings despite two crashes — exactly-once verified.")


if __name__ == "__main__":
    main()
