#!/usr/bin/env python3
"""Quickstart: a recoverable middleware server in ~60 lines.

Builds one MSP hosting a counter service, drives it from an end client,
crashes it mid-stream, and shows that recovery restores both the
session state and the shared state with exactly-once semantics.

Run:  python examples/quickstart.py
"""

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def counter(ctx, argument):
    """A service method: bump a private counter and a shared counter.

    Service methods are generator functions; every interaction with the
    world goes through ``ctx`` so the infrastructure can log the
    nondeterminism and replay the method after a crash.
    """
    yield from ctx.compute(0.2)  # business logic CPU

    raw = yield from ctx.get_session_var("mine")
    mine = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("mine", mine.to_bytes(4, "big"))

    raw = yield from ctx.read_shared("everyone")
    everyone = int.from_bytes(raw, "big") + 1
    yield from ctx.write_shared("everyone", everyone.to_bytes(8, "big"))

    return f"you:{mine} all:{everyone}".encode()


def main():
    sim = Simulator()
    network = Network(sim, rng=RngRegistry(seed=42))

    server = MiddlewareServer(
        sim, network, "server", ServiceDomainConfig(), config=RecoveryConfig()
    )
    server.register_service("counter", counter)
    server.register_shared("everyone", (0).to_bytes(8, "big"))
    server.start_process()

    client = EndClient(sim, network, "laptop")
    session = client.open_session("server")

    def run():
        yield 1.0  # let the server boot
        for i in range(10):
            result = yield from session.call("counter", b"")
            print(f"  reply {i}: {result.payload.decode()}  "
                  f"({result.response_time_ms:.1f} ms)")
            if i == 4:
                print("  *** crashing the server (volatile state lost) ***")
                server.crash()
                server.restart_process()

    print("calling the counter service 10 times, crashing after call 5:")
    driver = sim.spawn(run())
    sim.run_until_process(driver, limit=60_000)

    everyone = int.from_bytes(server.shared["everyone"].value, "big")
    print(f"\nshared counter after crash+recovery: {everyone} (expected 10)")
    print(f"server crashes: {server.stats.crashes}, "
          f"recoveries: {server.stats.recoveries}, "
          f"requests replayed: {server.stats.replayed_requests}")
    assert everyone == 10, "exactly-once violated!"
    print("exactly-once execution verified.")


if __name__ == "__main__":
    main()
