#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables and figures (§5).

Runs every experiment of the harness and prints the same rows/series the
paper reports, side by side with the published reference values and the
checked shape claims.

Run:   python examples/paper_experiments.py [scale]

``scale`` defaults to 0.05 (a ~2 minute run); 1.0 approximates the
paper's run lengths (20 K requests for Fig. 14) and takes much longer.
"""

import sys
import time

from repro.harness import (
    analysis_flush_accounting,
    fig14_calls_chart,
    fig14_response_table,
    fig15a_checkpoint_overhead,
    fig15b_crash_throughput,
    fig16_max_response_table,
    fig16_optimal_threshold,
    fig17_multiclient,
    render_result,
)

EXPERIMENTS = [
    ("Fig. 14 table", fig14_response_table, 1.0),
    ("Fig. 14 chart", fig14_calls_chart, 0.8),
    ("Fig. 15(a)", fig15a_checkpoint_overhead, 4.0),
    ("Fig. 15(b)", fig15b_crash_throughput, 1.6),
    ("Fig. 16 table", fig16_max_response_table, 1.6),
    ("Fig. 16 chart", fig16_optimal_threshold, 3.0),
    ("Fig. 17", fig17_multiclient, 1.2),
    ("§5.2 analysis", analysis_flush_accounting, 5.0),
]


def main():
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"regenerating all §5 artifacts at scale {scale}\n")
    failures = 0
    for name, experiment, relative in EXPERIMENTS:
        started = time.time()
        result = experiment(scale=scale * relative)
        elapsed = time.time() - started
        print(render_result(result))
        print(f"({name} regenerated in {elapsed:.1f}s wall)\n")
        failures += sum(1 for _claim, ok in result.claims if not ok)
    if failures:
        print(f"{failures} shape claim(s) FAILED")
        sys.exit(1)
    print("all shape claims hold.")


if __name__ == "__main__":
    main()
