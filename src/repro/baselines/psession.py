"""The Psession baseline: DB-persisted session state (paper §5.2).

"Configuration Psession provides persistent sessions via the web server
storing session states inside a local DBMS.  When a request is
processed, the session state is fetched from the database, and after
processing, the session state is written back. ... Psession takes a
session checkpoint after every request and requires two database
transactions (read and write) at both MSPs for each request.  This is
very costly."

Session state *is* recovered after a crash (it lives in the DB), but
there is no exactly-once guarantee and no shared-state recovery — the
limitations the paper's log-based approach removes.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import LoggingMode, RecoveryConfig
from repro.core.msp import MiddlewareServer
from repro.core.session import Session
from repro.db import KVStore
from repro.wire import Decoder, Encoder


def encode_variables(variables: dict[str, bytes]) -> bytes:
    enc = Encoder()
    enc.uint(len(variables))
    for name in sorted(variables):
        enc.text(name).raw(variables[name])
    return enc.finish()


def decode_variables(blob: bytes) -> dict[str, bytes]:
    dec = Decoder(blob)
    variables = {}
    for _ in range(dec.uint()):
        name = dec.text()
        variables[name] = dec.raw()
    return variables


class PsessionServer(MiddlewareServer):
    """An MSP whose sessions are persisted in a local WAL'd KV store."""

    def __init__(self, *args, **kwargs):
        config: Optional[RecoveryConfig] = kwargs.get("config")
        if config is None:
            config = RecoveryConfig()
            kwargs["config"] = config
        config.mode = LoggingMode.NOLOG  # no log-based recovery
        super().__init__(*args, **kwargs)
        # The DBMS shares the server's disk and CPU (it is "a local
        # DBMS" on the web server machine).
        self.db = KVStore(
            self.sim,
            self.disk,
            name=f"db.{self.name}",
            txn_cpu_ms=self.config.costs.db_txn_cpu_ms,
            cpu=self._cpu,
            disk_reads=True,
        )
        #: Sessions whose state was already loaded since the last crash.
        self._loaded: set[str] = set()

    def crash(self) -> None:
        super().crash()
        self.db.crash()
        self._loaded = set()

    def start(self):
        started = self.running
        if not started and self.db.wal.durable_end > 0:
            yield from self.db.recover()
        yield from super().start()

    def _before_method(self, session: Session):
        """Fetch session state from the database (one read txn)."""
        txn = self.db.begin()
        blob = yield from txn.read(session.id)
        yield from txn.commit()
        if blob is not None and session.id not in self._loaded:
            session.variables = decode_variables(blob)
        self._loaded.add(session.id)

    def _after_method(self, session: Session):
        """Write session state back (one write txn with a log force)."""
        txn = self.db.begin()
        yield from txn.write(session.id, encode_variables(session.variables))
        yield from txn.commit()
