"""The StateServer baseline: remote in-memory session state (§5.2).

"In configuration StateServer, session states are stored in-memory at a
state server on a different computer. ... StateServer has a much
shorter response time, but session states are not persistent and will
not be recovered if the state server crashes."

Around every request the MSP fetches the full session state from the
state server and stores it back afterwards — two RPCs moving the whole
(8 KB in the paper's workload) state across the network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.baselines.psession import decode_variables, encode_variables
from repro.core.config import LoggingMode, RecoveryConfig
from repro.core.msp import MiddlewareServer
from repro.core.session import Session
from repro.net import Network
from repro.sim import ProcessGroup, Resource, SimTimeoutError, Simulator

_req_ids = itertools.count(1)

#: Fixed protocol overhead per state-server message.
_HEADER = 120


@dataclass
class StateGet:
    session_id: str
    reply_to: str
    reply_port: str
    req_id: int

    def wire_size(self) -> int:
        return _HEADER


@dataclass
class StateGetReply:
    req_id: int
    blob: Optional[bytes]

    def wire_size(self) -> int:
        return _HEADER + (len(self.blob) if self.blob else 0)


@dataclass
class StatePut:
    session_id: str
    blob: bytes
    reply_to: str
    reply_port: str
    req_id: int

    def wire_size(self) -> int:
        return _HEADER + len(self.blob)


@dataclass
class StatePutAck:
    req_id: int

    def wire_size(self) -> int:
        return _HEADER


class StateServerNode:
    """The state server: an in-memory session store on its own node."""

    def __init__(self, sim: Simulator, network: Network, name: str = "stateserver",
                 handle_cpu_ms: float = 0.08):
        self.sim = sim
        self.network = network
        self.name = name
        self.node = network.node(name)
        self.handle_cpu_ms = handle_cpu_ms
        self.cpu = Resource(sim, capacity=2, name=f"cpu.{name}")
        self._states: dict[str, bytes] = {}
        self.group: Optional[ProcessGroup] = None

    def start(self) -> None:
        self.group = ProcessGroup(self.name)
        self.sim.spawn(self._serve(), name=f"{self.name}.serve", group=self.group)

    def crash(self) -> None:
        """All session states are lost — not persistent, as the paper
        notes; this is the baseline's weakness."""
        if self.group is not None:
            self.group.kill_all()
        self.node.unbind_all()
        self._states = {}

    def _serve(self):
        inbox = self.node.bind("state")
        while True:
            envelope = yield from inbox.get()
            message = envelope.payload
            yield from self.cpu.acquire()
            try:
                yield self.handle_cpu_ms
            finally:
                self.cpu.release()
            if isinstance(message, StateGet):
                reply = StateGetReply(
                    req_id=message.req_id, blob=self._states.get(message.session_id)
                )
                self.node.send(message.reply_to, message.reply_port, reply, reply.wire_size())
            elif isinstance(message, StatePut):
                self._states[message.session_id] = message.blob
                ack = StatePutAck(req_id=message.req_id)
                self.node.send(message.reply_to, message.reply_port, ack, ack.wire_size())


class StateServerServer(MiddlewareServer):
    """An MSP whose sessions live on a remote state server."""

    def __init__(self, *args, state_server: str = "stateserver", **kwargs):
        config: Optional[RecoveryConfig] = kwargs.get("config")
        if config is None:
            config = RecoveryConfig()
            kwargs["config"] = config
        config.mode = LoggingMode.NOLOG
        super().__init__(*args, **kwargs)
        self.state_server = state_server
        self._loaded: set[str] = set()

    def crash(self) -> None:
        super().crash()
        self._loaded = set()

    def _state_rpc(self, build_message):
        """One reliable RPC to the state server (generator)."""
        req_id = next(_req_ids)
        port = f"state-ack:{self.name}:{req_id}"
        inbox = self.node.bind(port)
        message = build_message(req_id, port)
        try:
            while True:
                yield from self.cpu(self.config.costs.state_stack_ms)
                self.send(self.state_server, "state", message)
                try:
                    envelope = yield from inbox.get_with_timeout(100.0)
                except SimTimeoutError:
                    continue  # state server briefly unavailable: retry
                yield from self.cpu(self.config.costs.state_stack_ms)
                return envelope.payload
        finally:
            self.node.unbind(port)

    def _before_method(self, session: Session):
        """Fetch the full session state from the state server."""
        yield from self.cpu(self.config.costs.state_serialize_ms)
        reply = yield from self._state_rpc(
            lambda req_id, port: StateGet(
                session_id=session.id, reply_to=self.name, reply_port=port, req_id=req_id
            )
        )
        if reply.blob is not None and session.id not in self._loaded:
            session.variables = decode_variables(reply.blob)
        self._loaded.add(session.id)

    def _after_method(self, session: Session):
        """Store the full session state back."""
        yield from self.cpu(self.config.costs.state_serialize_ms)
        blob = encode_variables(session.variables)
        yield from self._state_rpc(
            lambda req_id, port: StatePut(
                session_id=session.id,
                blob=blob,
                reply_to=self.name,
                reply_port=port,
                req_id=req_id,
            )
        )
