"""The paper's comparison configurations (§5.2).

Five configurations run the same workload:

- **LoOptimistic** — the paper's system with both MSPs in one service
  domain (optimistic logging inside, pessimistic toward clients);
- **Pessimistic** — the paper's system with each MSP in its own domain
  (pessimistic logging everywhere);
- **NoLog** — no logging/recovery infrastructure at all;
- **Psession** — commercial-style persistent sessions: session state is
  read from and written back to a local WAL'd DBMS around every request
  (:class:`~repro.baselines.psession.PsessionServer`);
- **StateServer** — commercial-style remote in-memory session state: the
  full session state is fetched from and stored to a separate state
  server around every request
  (:class:`~repro.baselines.stateserver.StateServerServer`).

LoOptimistic/Pessimistic/NoLog are plain configurations of
:class:`~repro.core.msp.MiddlewareServer`; the two commercial baselines
subclass it to add session persistence around method execution.  Neither
baseline supports recoverable shared in-memory state — the gap the
paper's system fills.
"""

from repro.baselines.psession import PsessionServer
from repro.baselines.stateserver import StateServerNode, StateServerServer

__all__ = ["PsessionServer", "StateServerNode", "StateServerServer"]
