"""Open-loop traffic generation for fleet runs (DESIGN.md §17).

Arrivals are *open loop*: session start times come from a rate curve
(baseline rate with periodic bursts), independent of how fast the fleet
serves them — the paper's middleware is sized for admission-controlled
web traffic, and overload shows up as queueing, busy replies and resend
storms rather than as a politely throttled generator.

Determinism: every draw comes from one named RNG stream in one fixed
order (session index order).  Every shard generates the *full* fleet
plan identically and keeps only the sessions homed on its own MSPs, so
no cross-shard coordination is needed and the plan is byte-stable at
any shard/jobs combination.  Generation is O(sessions) with O(1) state,
so ~10^6 sessions are a few seconds of setup, not a memory problem.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterator

from repro.fleet.topology import FleetTopology

#: Resolution of the arrival-rate inverse CDF.
_RATE_BINS = 512


@dataclass(frozen=True)
class SessionPlan:
    """One session's full deterministic script."""

    index: int
    session_id: str
    #: Home MSP (the one the client opens the session against).
    home: str
    arrival_ms: float
    #: Hop targets per call: ``calls[i]`` is the chain the i-th request
    #: walks after executing at the home MSP (may be empty).
    calls: tuple[tuple[str, ...], ...]


def _rate_cdf(topology: FleetTopology) -> list[float]:
    """Cumulative arrival mass per time bin over the arrival window."""
    spec = topology.spec
    weights = []
    for b in range(_RATE_BINS):
        t = (b + 0.5) * spec.duration_ms / _RATE_BINS
        in_burst = (
            spec.burst_factor > 1.0
            and spec.burst_every_ms > 0
            and (t % spec.burst_every_ms) < spec.burst_length_ms
        )
        weights.append(spec.burst_factor if in_burst else 1.0)
    return list(accumulate(weights))


def _invert(cdf: list[float], u: float, duration_ms: float) -> float:
    """Map uniform ``u`` in [0,1) through the inverse rate CDF."""
    target = u * cdf[-1]
    b = bisect_right(cdf, target)
    lo = cdf[b - 1] if b > 0 else 0.0
    span = cdf[b] - lo if b < len(cdf) else 1.0
    frac = (target - lo) / span if span > 0 else 0.0
    return (b + frac) * duration_ms / _RATE_BINS


def generate_session_plans(topology: FleetTopology, rng) -> Iterator[SessionPlan]:
    """Yield every session's plan in index order (full fleet view).

    ``rng`` is the dedicated ``fleet.traffic`` stream; all draws happen
    here, in one fixed order, so the plan is a pure function of the
    spec's seed.
    """
    spec = topology.spec
    cdf = _rate_cdf(topology)
    # Hot/cold placement: inverse-CDF over the per-MSP arrival weights.
    placement_cdf = list(accumulate(topology.arrival_weights))
    placement_total = placement_cdf[-1]
    names = topology.msp_names
    width = len(str(max(spec.sessions - 1, 1)))

    for k in range(spec.sessions):
        arrival = _invert(cdf, rng.random(), spec.duration_ms)
        home = names[bisect_right(placement_cdf, rng.random() * placement_total)]
        # Zipf-ish request count: most sessions are one-shot, a hot tail
        # runs up to the cap.
        n_calls = min(
            spec.max_requests_per_session, max(1, int(rng.paretovariate(spec.zipf_alpha)))
        )
        calls = []
        for _ in range(n_calls):
            hops: list[str] = []
            here = home
            for _ in range(spec.chain_depth):
                cross = rng.random() < spec.cross_domain_fraction
                if cross:
                    candidates = topology.peers_outside_domain(here)
                else:
                    candidates = topology.peers_inside_domain(here)
                if not candidates:
                    # Draw parity: consume the index draw even when the
                    # hop is impossible (single-domain or singleton
                    # domain), so plans stay stable across shapes.
                    rng.random()
                    continue
                here = candidates[int(rng.random() * len(candidates))]
                hops.append(here)
            calls.append(tuple(hops))
        yield SessionPlan(
            index=k,
            session_id=f"s{k:0{width}d}",
            home=home,
            arrival_ms=arrival,
            calls=tuple(calls),
        )


def encode_hops(hops: tuple[str, ...]) -> bytes:
    """Wire form of a chain suffix, carried in the request argument so
    logged-request replay re-walks the same chain."""
    return ("h=" + ",".join(hops)).encode()


def decode_hops(argument: bytes) -> tuple[str, ...]:
    text = bytes(argument).decode()
    if not text.startswith("h=") or len(text) == 2:
        return ()
    return tuple(text[2:].split(","))
