"""Fleet topology: MSP naming, service domains, shard placement.

The shape rules (DESIGN.md §17):

- MSPs are named ``m000..mNNN`` and assigned to service domains round
  robin (``domain_of(m_i) = i mod domains``) unless the spec pins an
  explicit ``domain_layout``.
- Whole domains are placed on one shard (``shard_of(domain d) = d mod
  shards``), so every *optimistic* message — DV-tagged intra-domain
  requests, distributed-flush legs, recovery announcements — stays
  inside one simulator.  Only pessimistic cross-domain traffic crosses
  shards.
- The shard count is part of the spec, like ``log_partitions``: it
  defines the simulated semantics.  ``--jobs`` only chooses how many
  shards execute concurrently and never changes results.

Validation happens at construction: unknown MSP names in the domain
layout or the crash plan, non-disjoint layouts, and epoch lengths
longer than the cross-shard latency are all rejected before any
simulator is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Optional

from repro.core.domain import ServiceDomainConfig


@dataclass(frozen=True)
class FleetSpec:
    """Everything that defines one fleet run (picklable, hashable-ish).

    Two runs with equal specs produce byte-identical results at any
    ``--jobs`` value — the spec is the complete seed of the simulation.
    """

    msps: int = 8
    domains: int = 2
    shards: int = 1
    seed: int = 0

    # -- open-loop traffic -------------------------------------------------
    #: Total sessions arriving over ``duration_ms`` (open loop: arrivals
    #: are scheduled by the rate curve, independent of completions).
    sessions: int = 200
    #: Arrival window in simulated ms.
    duration_ms: float = 10_000.0
    #: Zipf-ish skew of requests per session (higher alpha = flatter).
    zipf_alpha: float = 1.3
    max_requests_per_session: int = 8
    #: Downstream hops chained per request (0 = no inter-MSP calls).
    chain_depth: int = 1
    #: Probability a hop crosses a domain boundary (the pessimistic
    #: flush-before-send path); otherwise it stays inside the domain.
    cross_domain_fraction: float = 0.5
    #: Hot/cold placement skew: the first ``ceil(hot_fraction*msps)``
    #: MSPs receive ``hot_weight`` times the arrival mass of cold ones.
    hot_fraction: float = 0.25
    hot_weight: float = 4.0
    #: Burst shape of the arrival-rate curve: every ``burst_every_ms``
    #: the rate multiplies by ``burst_factor`` for ``burst_length_ms``.
    burst_factor: float = 3.0
    burst_every_ms: float = 4_000.0
    burst_length_ms: float = 500.0
    #: Client think time between a session's calls.
    think_ms: float = 5.0

    # -- sharded execution --------------------------------------------------
    #: Epoch barrier length; must not exceed ``cross_latency_ms`` so a
    #: message sent in epoch k can only arrive in epoch k+1 or later.
    epoch_ms: float = 5.0
    #: One-way latency of every cross-domain MSP link (WAN-ish, vs the
    #: 0.35 ms intra-domain LAN default).
    cross_latency_ms: float = 5.0
    #: Extra simulated time after the arrival window for stragglers,
    #: recoveries and drains before the run is declared stuck.
    settle_ms: float = 30_000.0

    # -- failures ----------------------------------------------------------
    #: ``((time_ms, msp_name), ...)`` — crash + restart that MSP then.
    #: Several entries at the *same* timestamp are a correlated
    #: multi-node crash (rack loss): every named MSP fails in the same
    #: simulation instant, before any of them restarts.
    crash_plan: tuple = ()
    #: ``((start_ms, end_ms, side_a, side_b), ...)`` — deterministic
    #: network partition windows (see
    #: :class:`~repro.net.faults.PartitionWindow`).  Sides are tuples of
    #: node names: MSP names, or ``c.<msp>`` for an MSP's client
    #: machine.  Every shard installs the identical schedule, so a
    #: cross-shard send is blacked out at the sender's fabric before
    #: export — windows are RNG-free and never shift the fault streams.
    partition_plan: tuple = ()
    #: ``((time_ms, domain_index), ...)`` — whole-domain loss: every MSP
    #: of that domain is destroyed *with its storage* at that instant.
    #: Requires ``warm_standby`` — without shipped logs there is nothing
    #: to recover from.
    disaster_plan: tuple = ()
    #: Attach a :class:`~repro.core.standby.WarmStandby` to every MSP:
    #: flushed log frames ship synchronously to a standby store, and a
    #: disaster fails over to it (skipping the cold ``restart_delay_ms``).
    warm_standby: bool = False
    #: Failure-detection / takeover delay a disaster failover pays
    #: before the standby starts recovering.
    standby_takeover_ms: float = 5.0

    # -- recovery configuration (per MSP) ----------------------------------
    log_partitions: int = 1
    recovery_mode: str = "eager"
    logging_mode: str = "value"
    batch_flush_timeout_ms: float = 2.0
    session_ckpt_threshold: Optional[int] = 8 * 1024
    sv_ckpt_write_threshold: int = 64
    msp_ckpt_interval_ms: float = 5_000.0
    log_segment_bytes: int = 64 * 1024
    resend_timeout_ms: float = 400.0
    #: Server-side idle-session expiry (bounded-memory truncation: the
    #: implicit inter-MSP sessions chains open are never client-ended,
    #: and expired sessions stop pinning the log truncation floor).
    session_idle_timeout_ms: Optional[float] = 30_000.0

    #: Optional explicit domain assignment ``((msp, ...), ...)``.  Every
    #: member must name a known MSP and every MSP must appear exactly
    #: once — validated by :class:`FleetTopology`.
    domain_layout: tuple = ()

    def canonical(self) -> dict:
        """A stable JSON-safe form for result fingerprints."""
        spec = asdict(self)
        spec["crash_plan"] = [list(entry) for entry in self.crash_plan]
        spec["partition_plan"] = [
            [start, end, list(side_a), list(side_b)]
            for start, end, side_a, side_b in self.partition_plan
        ]
        spec["disaster_plan"] = [list(entry) for entry in self.disaster_plan]
        spec["domain_layout"] = [list(d) for d in self.domain_layout]
        return spec


class FleetTopology:
    """Validated, derived view of a :class:`FleetSpec`."""

    def __init__(self, spec: FleetSpec):
        if spec.msps < 1:
            raise ValueError(f"fleet needs at least one MSP, got {spec.msps}")
        if not 1 <= spec.domains <= spec.msps:
            raise ValueError(
                f"domains must be in [1, msps]: {spec.domains} vs {spec.msps} MSPs"
            )
        if not 1 <= spec.shards <= spec.domains:
            raise ValueError(
                f"shards must be in [1, domains]: {spec.shards} vs "
                f"{spec.domains} domains (whole domains live on one shard)"
            )
        if spec.epoch_ms <= 0:
            raise ValueError(f"epoch_ms must be positive, got {spec.epoch_ms}")
        if spec.shards > 1 and spec.cross_latency_ms < spec.epoch_ms:
            raise ValueError(
                f"cross_latency_ms ({spec.cross_latency_ms}) must be >= "
                f"epoch_ms ({spec.epoch_ms}): a cross-shard message must "
                "never arrive inside the epoch that sent it"
            )
        self.spec = spec
        self.msp_names: list[str] = [f"m{i:03d}" for i in range(spec.msps)]
        known = set(self.msp_names)

        if spec.domain_layout:
            layout = [tuple(members) for members in spec.domain_layout]
            assigned = [m for members in layout for m in members]
            unknown = sorted(set(assigned) - known)
            if unknown:
                raise ValueError(
                    f"domain layout routes unknown MSPs: {', '.join(unknown)}"
                )
            missing = sorted(known - set(assigned))
            if missing:
                raise ValueError(
                    f"domain layout leaves MSPs unrouted: {', '.join(missing)}"
                )
            if len(layout) != spec.domains:
                raise ValueError(
                    f"domain layout has {len(layout)} domains, spec says "
                    f"{spec.domains}"
                )
            self.domain_lists = layout
        else:
            self.domain_lists = [
                tuple(
                    self.msp_names[i]
                    for i in range(spec.msps)
                    if i % spec.domains == d
                )
                for d in range(spec.domains)
            ]
        # ServiceDomainConfig itself rejects overlaps and empty domains.
        self.domains = ServiceDomainConfig(self.domain_lists)
        self.domains.validate_members(known)

        self._domain_index: dict[str, int] = {}
        for d, members in enumerate(self.domain_lists):
            for msp in members:
                self._domain_index[msp] = d

        for when, target in spec.crash_plan:
            if target not in known:
                raise ValueError(f"crash plan routes unknown MSP: {target!r}")
            if when < 0:
                raise ValueError(f"crash plan entry in the past: {when}")

        # Partition sides may name MSPs or their client machines;
        # PartitionWindow itself rejects empty/overlapping sides and
        # empty intervals at construction (see partition_windows()).
        addressable = known | {f"c.{m}" for m in known}
        for start, end, side_a, side_b in spec.partition_plan:
            unknown = sorted(
                (set(side_a) | set(side_b)) - addressable
            )
            if unknown:
                raise ValueError(
                    f"partition plan names unknown nodes: {', '.join(unknown)}"
                )
            if end <= start:
                raise ValueError(
                    f"empty partition window: [{start}, {end})"
                )

        if spec.disaster_plan and not spec.warm_standby:
            raise ValueError(
                "disaster_plan destroys storage — recovery needs "
                "warm_standby=True (log shipping)"
            )
        for when, domain in spec.disaster_plan:
            if not 0 <= domain < spec.domains:
                raise ValueError(
                    f"disaster plan names unknown domain {domain} "
                    f"(have {spec.domains})"
                )
            if when < 0:
                raise ValueError(f"disaster plan entry in the past: {when}")

        # Hot/cold arrival weights (satellite of the open-loop generator):
        # the first ceil(hot_fraction * msps) MSPs are "hot".
        hot = max(1, round(spec.hot_fraction * spec.msps)) if spec.msps else 0
        self.arrival_weights = [
            spec.hot_weight if i < hot else 1.0 for i in range(spec.msps)
        ]

    # -- placement ---------------------------------------------------------

    def domain_index(self, msp: str) -> int:
        return self._domain_index[msp]

    def shard_of_domain(self, domain: int) -> int:
        return domain % self.spec.shards

    def shard_of(self, msp: str) -> int:
        return self.shard_of_domain(self._domain_index[msp])

    def local_msps(self, shard: int) -> list[str]:
        """MSPs hosted on ``shard``, in canonical (name) order."""
        return [m for m in self.msp_names if self.shard_of(m) == shard]

    def partition_windows(self):
        """The spec's partition plan as validated ``PartitionWindow``s.

        Every shard installs the identical list — the windows are pure
        functions of simulated time, so sender-side blackout decisions
        agree across shards without any coordination.
        """
        from repro.net import PartitionWindow

        return [
            PartitionWindow(tuple(side_a), tuple(side_b), start, end)
            for start, end, side_a, side_b in self.spec.partition_plan
        ]

    def domain_members(self, domain: int) -> tuple[str, ...]:
        return self.domain_lists[domain]

    def peers_outside_domain(self, msp: str) -> list[str]:
        d = self._domain_index[msp]
        return [m for m in self.msp_names if self._domain_index[m] != d]

    def peers_inside_domain(self, msp: str) -> list[str]:
        d = self._domain_index[msp]
        return [m for m in self.domain_lists[d] if m != msp]
