"""One fleet shard: a full simulator hosting whole service domains.

A shard owns every MSP of the domains placed on it, plus the end
clients of the sessions homed there.  All optimistic machinery —
DV-tagged intra-domain messages, distributed-flush legs, recovery
announcements — is intra-shard by construction (whole domains per
shard); only pessimistic cross-domain requests and replies cross the
shard boundary, through the network's ``remote_router`` hook, and are
re-injected by the destination shard at the next epoch barrier.

Everything a shard computes is a pure function of (spec, shard index,
barrier inputs), which is what makes the fleet byte-identical at any
``--jobs`` value.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import asdict

from repro.core.client import EndClient
from repro.core.config import RecoveryConfig
from repro.core.msp import MiddlewareServer
from repro.core.session import SessionStatus
from repro.core.standby import WarmStandby
from repro.fleet.topology import FleetSpec, FleetTopology
from repro.fleet.traffic import decode_hops, encode_hops, generate_session_plans
from repro.net import Network
from repro.net.network import DEFAULT_LATENCY_MS
from repro.sim import Resource, RngRegistry, Simulator

#: Client→home-MSP one-way latency (same LAN figure the paper workload
#: uses for its clients).
CLIENT_LATENCY_MS = 1.35

#: Business-logic CPU per chain hop.
CHAIN_COMPUTE_MS = 0.25

#: Arrivals are shifted this far into the run so the very first
#: sessions do not race the MSPs' cold boot.
BOOT_GRACE_MS = 50.0

#: Upper edges of the latency histogram buckets (ms); the last bucket
#: is open-ended.  Mergeable across shards, compact in results.
LATENCY_BUCKETS_MS = (
    1.0, 2.0, 3.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0, 50.0, 75.0, 100.0,
    150.0, 200.0, 300.0, 500.0, 750.0, 1000.0, 1500.0, 2000.0, 3000.0,
    5000.0, 7500.0, 10000.0,
)


def _incr8(value: bytes) -> bytes:
    return (int.from_bytes(value, "big") + 1).to_bytes(8, "big")


def chain_service(ctx, argument):
    """The fleet's service method: count a hit, walk the chain suffix.

    The remaining hops ride in the argument, so command-logging replay
    re-executes the identical chain.  The hit counter is an atomic RMW
    whose return value is never exposed — the exactly-once oracle sums
    it per MSP at the end of the run.
    """
    yield from ctx.compute(CHAIN_COMPUTE_MS)
    yield from ctx.update_shared("hits", _incr8)
    hops = decode_hops(argument)
    if hops:
        yield from ctx.call(hops[0], "chain", encode_hops(hops[1:]))
    return b"ok"


class FleetShard:
    """One shard's world plus its epoch-barrier surface."""

    def __init__(self, spec: FleetSpec, index: int):
        self.spec = spec
        self.index = index
        self.topology = FleetTopology(spec)
        self.sim = Simulator()
        self.rng = RngRegistry(spec.seed)
        self.network = Network(self.sim, self.rng)
        self.network.remote_router = self._export
        self._outbox: list[tuple[int, float, int, object]] = []
        self._export_seq = 0

        self.local_names = self.topology.local_msps(index)
        local = set(self.local_names)
        config_proto = self._recovery_config()
        self.msps: dict[str, MiddlewareServer] = {}
        for name in self.local_names:
            msp = MiddlewareServer(
                self.sim,
                self.network,
                name,
                domains=self.topology.domains,
                config=self._recovery_config(),
                rng=self.rng,
            )
            msp.register_service("chain", chain_service)
            msp.register_shared("hits", (0).to_bytes(8, "big"))
            self.msps[name] = msp

        # Links: intra-domain pairs keep the LAN default; anything that
        # crosses a domain boundary is a WAN link at cross_latency_ms —
        # which is also what makes the epoch barrier sound (latency >=
        # epoch length).  Only outgoing halves are set here; the reverse
        # direction is configured by the shard that owns the peer.
        for name in self.local_names:
            d = self.topology.domain_index(name)
            for other in self.topology.msp_names:
                if other == name:
                    continue
                cross = self.topology.domain_index(other) != d
                self.network.set_link(
                    name,
                    other,
                    latency_ms=spec.cross_latency_ms if cross else DEFAULT_LATENCY_MS,
                    symmetric=False,
                )

        # One client machine per local MSP; its CPU is effectively
        # unbounded so the open-loop generator never throttles itself.
        self.clients: dict[str, EndClient] = {}
        for name in self.local_names:
            client = EndClient(
                self.sim,
                self.network,
                f"c.{name}",
                costs=config_proto.costs,
                resend_timeout_ms=spec.resend_timeout_ms,
            )
            client.cpu = Resource(self.sim, capacity=1 << 20, name=f"cpu.c.{name}")
            self.network.set_link(f"c.{name}", name, latency_ms=CLIENT_LATENCY_MS)
            self.clients[name] = client

        # Scenario fault machinery: every shard installs the *identical*
        # partition schedule (windows are RNG-free pure functions of
        # simulated time, so sender-side blackout decisions agree across
        # shards), and warm standbys attach before the first boot so the
        # shipped prefix tracks the durable prefix from byte zero.
        for window in self.topology.partition_windows():
            self.network.add_partition(window)
        self.standbys: dict[str, WarmStandby] = {}
        if spec.warm_standby:
            self.standbys = {
                name: WarmStandby(self.msps[name]) for name in self.local_names
            }
        self.standby_violations: list[str] = []
        #: Completed reopenings after a fault: ``{"msp", "kind", "at_ms",
        #: "duration_ms"}`` with kind ``restart`` (crash plan) or
        #: ``failover`` (disaster promotion) — the raw samples behind
        #: the scenario report's recovery-time distributions.
        self.recovery_events: list[dict] = []

        for msp in self.msps.values():
            msp.start_process()

        # Open-loop drivers: every shard generates the full fleet plan
        # deterministically and schedules only its local sessions.
        self.expected_sessions = 0
        self.completed_sessions = 0
        self.completed_calls = 0
        self.call_errors = 0
        self.cross_domain_calls = 0
        self.expected_hits: dict[str, int] = {m: 0 for m in self.topology.msp_names}
        self.latency_counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
        self.latency_total_ms = 0.0
        self.latency_max_ms = 0.0
        traffic_rng = self.rng.stream("fleet.traffic")
        for plan in generate_session_plans(self.topology, traffic_rng):
            if plan.home not in local:
                continue
            self.expected_sessions += 1
            self.sim.call_at(
                plan.arrival_ms + BOOT_GRACE_MS,
                lambda p=plan: self.sim.spawn(
                    self._session_driver(p), name=f"driver.{p.session_id}"
                ),
            )

        self._last_crash_ms = 0.0
        for when, target in spec.crash_plan:
            self._last_crash_ms = max(self._last_crash_ms, when)
            if target in local:
                self.sim.call_at(
                    when, lambda m=self.msps[target]: self._crash_restart(m)
                )
        # Whole-domain loss: domains never straddle shards, so every MSP
        # a disaster destroys is local to exactly one shard.
        for when, domain in spec.disaster_plan:
            self._last_crash_ms = max(self._last_crash_ms, when)
            for target in self.topology.domain_members(domain):
                if target in local:
                    self.sim.call_at(
                        when, lambda m=self.msps[target]: self._disaster(m)
                    )

    def _recovery_config(self) -> RecoveryConfig:
        spec = self.spec
        return RecoveryConfig(
            session_ckpt_threshold_bytes=spec.session_ckpt_threshold,
            sv_ckpt_write_threshold=spec.sv_ckpt_write_threshold,
            msp_ckpt_interval_ms=spec.msp_ckpt_interval_ms,
            session_idle_timeout_ms=spec.session_idle_timeout_ms,
            batch_flush_timeout_ms=spec.batch_flush_timeout_ms,
            log_segment_bytes=spec.log_segment_bytes,
            log_partitions=spec.log_partitions,
            recovery_mode=spec.recovery_mode,
            logging_mode=spec.logging_mode,
        )

    def _crash_restart(self, msp: MiddlewareServer) -> None:
        struck_at = self.sim.now
        msp.crash()
        msp.restart_process()
        self._watch_reopen(msp, struck_at, "restart")

    def _disaster(self, msp: MiddlewareServer) -> None:
        """Destroy one MSP *with its storage*; fail over to its standby.

        The standby verifies its shipped prefix byte-for-byte against
        the primary's post-crash durable log before promoting; a
        divergence is recorded as a violation and the run falls back to
        an ordinary restart so it can still settle.
        """
        struck_at = self.sim.now
        msp.crash()
        standby = self.standbys[msp.name]
        try:
            standby.failover_process(
                takeover_delay_ms=self.spec.standby_takeover_ms
            )
        except RuntimeError as exc:
            self.standby_violations.append(str(exc))
            msp.restart_process()
        self._watch_reopen(msp, struck_at, "failover")

    def _watch_reopen(self, msp: MiddlewareServer, since: float, kind: str) -> None:
        """Record fault-to-open time once ``msp`` serves again.

        Lives outside the MSP's process group on purpose: a second crash
        mid-recovery must not kill the watcher — the sample then spans
        fault to *final* reopen, which is the recovery time a client
        actually experienced.
        """

        def monitor():
            while not msp.running:
                yield 1.0
            self.recovery_events.append(
                {
                    "msp": msp.name,
                    "kind": kind,
                    "at_ms": round(since, 6),
                    "duration_ms": round(self.sim.now - since, 6),
                }
            )

        self.sim.spawn(monitor(), name=f"watch.{kind}.{msp.name}.{since:.0f}")

    # -- drivers -----------------------------------------------------------

    def _session_driver(self, plan):
        session = self.clients[plan.home].open_session(
            plan.home, session_id=plan.session_id
        )
        home_domain = self.topology.domain_index(plan.home)
        for hops in plan.calls:
            result = yield from session.call("chain", encode_hops(hops))
            if result.error:
                self.call_errors += 1
            else:
                self.expected_hits[plan.home] += 1
                here_domain = home_domain
                for hop in hops:
                    self.expected_hits[hop] += 1
                    hop_domain = self.topology.domain_index(hop)
                    if hop_domain != here_domain:
                        self.cross_domain_calls += 1
                    here_domain = hop_domain
            self.completed_calls += 1
            self._observe_latency(result.response_time_ms)
            if self.spec.think_ms > 0:
                yield self.spec.think_ms
        yield from session.end()
        self.completed_sessions += 1

    def _observe_latency(self, ms: float) -> None:
        self.latency_counts[bisect_left(LATENCY_BUCKETS_MS, ms)] += 1
        self.latency_total_ms += ms
        if ms > self.latency_max_ms:
            self.latency_max_ms = ms

    # -- the epoch-barrier surface ----------------------------------------

    def _export(self, envelope, arrival_time: float) -> None:
        dest_shard = self.topology.shard_of(envelope.destination)
        self._outbox.append((dest_shard, arrival_time, self._export_seq, envelope))
        self._export_seq += 1

    def run_until(self, barrier_ms: float) -> None:
        """Advance the local simulator to the barrier time."""
        tracer = self.sim.tracer
        if tracer is not None:
            span = tracer.span(
                "fleet.shard.epoch", owner=f"shard{self.index}", until=barrier_ms
            )
            self.sim.run(until=barrier_ms)
            span.end(steps=self.sim.steps)
        else:
            self.sim.run(until=barrier_ms)

    def take_outbox(self) -> list[tuple[int, float, int, object]]:
        outbox, self._outbox = self._outbox, []
        return outbox

    def inject(self, inbound: list[tuple[float, object]]) -> None:
        """Deliver envelopes exported by other shards, in the canonical
        order the coordinator merged them into."""
        tracer = self.sim.tracer
        span = None
        if tracer is not None and inbound:
            span = tracer.span(
                "fleet.barrier",
                owner=f"shard{self.index}",
                inbound=len(inbound),
            )
        now = self.sim.now
        for arrival, envelope in inbound:
            self.network.import_remote(envelope, max(arrival, now))
        if span is not None:
            span.end()

    def incarnations(self) -> dict[str, int]:
        return {name: self.msps[name].node.incarnation for name in self.local_names}

    def update_incarnations(self, fleet_map: dict[str, int]) -> None:
        self.network.remote_incarnations.update(fleet_map)

    def settled(self) -> bool:
        """Nothing left to do locally: all sessions done, no messages in
        flight, every MSP open, no recovery pending."""
        if self.completed_sessions != self.expected_sessions:
            return False
        if self.network.messages_in_flight != 0 or self._outbox:
            return False
        if self.sim.now <= self._last_crash_ms:
            return False
        for msp in self.msps.values():
            if not msp.running:
                return False
            for session in msp.sessions.values():
                if (
                    session.lazy_pending
                    or session.recovery_pending
                    or session.status is not SessionStatus.NORMAL
                ):
                    return False
        return True

    # -- results -----------------------------------------------------------

    def check_invariants(self) -> list[str]:
        """Domain-isolation invariants (DESIGN.md §17, fuzz satellite):
        DVs and recovery knowledge must never leak past a domain
        boundary."""
        violations: list[str] = []
        for name in self.local_names:
            msp = self.msps[name]
            domain = self.topology.domains.domain_of(name) or frozenset({name})
            for session in msp.sessions.values():
                leaked = sorted(set(session.dv.msps()) - domain)
                if leaked:
                    violations.append(
                        f"{name}: session {session.id} DV crosses the domain "
                        f"boundary to {', '.join(leaked)}"
                    )
            known = sorted(set(msp.table.snapshot()) - domain)
            if known:
                violations.append(
                    f"{name}: recovery knowledge about {', '.join(known)} "
                    "leaked across the domain boundary"
                )
        violations.extend(self.standby_violations)
        # End-of-run shipping audit: every standby that never promoted
        # must still hold the primary's exact durable prefix.  Promoted
        # standbys are skipped — after the swap the mirror *is* the
        # primary store, and comparing it against itself would flag the
        # new unshipped tail as divergence.
        for name in self.local_names:
            standby = self.standbys.get(name)
            if standby is None or standby.promoted:
                continue
            for problem in standby.verify_against_primary():
                violations.append(f"standby audit: {problem}")
        return violations

    def finalize(self) -> dict:
        """Deterministic per-shard result (canonical key order)."""
        # Run the invariant sweep (including the standby shipping audit)
        # first so its verification counters land in the stats below.
        violations = self.check_invariants()
        actual_hits = {}
        for name in self.local_names:
            msp = self.msps[name]
            sv = msp.shared.get("hits")
            actual_hits[name] = (
                int.from_bytes(sv.value, "big") if sv is not None else 0
            )
        log_stats = {}
        for name in self.local_names:
            msp = self.msps[name]
            log_stats[name] = {
                "live_bytes": sum(s.live_bytes for s in msp.stores),
                "recycled_segments": sum(s.recycled_segments for s in msp.stores),
            }
        client_stats = {
            name: {
                "calls": c.stats.calls,
                "resends": c.stats.resends,
                "busy_retries": c.stats.busy_retries,
                "duplicate_replies": c.stats.duplicate_replies,
            }
            for name, c in sorted(self.clients.items())
        }
        return {
            "shard": self.index,
            "msps": list(self.local_names),
            "steps": self.sim.steps,
            "sim_now_ms": self.sim.now,
            "expected_sessions": self.expected_sessions,
            "completed_sessions": self.completed_sessions,
            "completed_calls": self.completed_calls,
            "call_errors": self.call_errors,
            "cross_domain_calls": self.cross_domain_calls,
            "expected_hits": {
                m: n for m, n in sorted(self.expected_hits.items()) if n
            },
            "actual_hits": actual_hits,
            "latency": {
                "counts": list(self.latency_counts),
                "total_ms": round(self.latency_total_ms, 6),
                "max_ms": round(self.latency_max_ms, 6),
            },
            "msp_stats": {
                name: asdict(self.msps[name].stats) for name in self.local_names
            },
            "log": log_stats,
            "clients": client_stats,
            "recovery_events": sorted(
                self.recovery_events,
                key=lambda e: (e["at_ms"], e["msp"], e["kind"]),
            ),
            "standby": {
                name: {
                    "shipments": sb.stats.shipments,
                    "shipped_bytes": sb.stats.shipped_bytes,
                    "anchor_shipments": sb.stats.anchor_shipments,
                    "rewinds": sb.stats.rewinds,
                    "failovers": sb.stats.failovers,
                    "verifications": sb.stats.verifications,
                    "promoted": sb.promoted,
                }
                for name, sb in sorted(self.standbys.items())
            },
            "ledger": self.network.ledger(),
            "violations": violations,
        }
