"""Fleet coordinator: epoch barriers, canonical merge, worker pool.

The protocol (DESIGN.md §17):

1. Every shard runs its simulator to the barrier time ``t_k = k *
   epoch_ms``.  Messages bound for other shards were captured by the
   network's ``remote_router`` with their exact computed arrival time
   (send time + link latency + transmission + fault delay), which is
   provably ``> t_k`` because cross-shard links have latency >=
   ``epoch_ms`` (validated at construction).
2. At the barrier, the coordinator gathers each shard's outbox and
   incarnation snapshot, merges the envelopes bound for each
   destination shard in canonical order — sorted by ``(arrival_time,
   source shard, send ordinal)`` — and hands them back together with
   the fleet-wide incarnation map.
3. Each shard injects its inbound envelopes (scheduling delivery at the
   exact arrival time) before running the next epoch.

Every coordinator decision is a pure function of the per-shard outputs,
and each shard is a deterministic simulator, so the whole fleet run is
byte-for-byte reproducible at any ``--jobs`` value: ``jobs=1`` steps
all shards in-process (the reference path), ``jobs>1`` spreads them
over persistent spawn workers connected by pipes.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import pickle
import time
import traceback
from typing import Callable, Optional

from repro.fleet.shard import FleetShard, LATENCY_BUCKETS_MS
from repro.fleet.topology import FleetSpec, FleetTopology

#: How many epochs between progress callbacks.
_PROGRESS_EVERY = 200


class FleetWorkerError(RuntimeError):
    """A shard worker process died or raised."""


class _SequentialExecutor:
    """jobs=1 reference path: every shard stepped in-process, in order.

    Besides being the reference for byte-identity, this path measures
    the decomposition quality: per epoch it records each shard's busy
    wall time and accumulates the per-epoch maximum.  ``critical_s`` is
    the wall time an idealized one-core-per-shard host would spend
    inside shard stepping (workers barrier every epoch, so the slowest
    shard of each epoch is the parallel critical path); ``busy_s`` over
    ``critical_s`` is the achievable shard-scaling speedup, measurable
    even on a single-core CI host.  Wall-clock never enters the shard
    results themselves, so fingerprints stay jobs-invariant.
    """

    def __init__(self, spec: FleetSpec, tracer_factory=None):
        self.shards = [FleetShard(spec, i) for i in range(spec.shards)]
        self.busy_s = 0.0
        self.critical_s = 0.0
        self.shard_busy_s = [0.0] * spec.shards
        if tracer_factory is not None:
            # The factory receives each shard and attaches whatever
            # instrumentation it wants (e.g. Tracer(shard.sim).attach()).
            for shard in self.shards:
                tracer_factory(shard)

    def epoch(self, until, inbound_by_shard, incarnations):
        out = {}
        epoch_busy = []
        for shard in self.shards:
            started = time.perf_counter()
            shard.update_incarnations(incarnations)
            shard.inject(inbound_by_shard.get(shard.index, []))
            shard.run_until(until)
            out[shard.index] = (
                shard.take_outbox(),
                shard.incarnations(),
                shard.settled(),
            )
            busy = time.perf_counter() - started
            epoch_busy.append(busy)
            self.shard_busy_s[shard.index] += busy
        self.busy_s += sum(epoch_busy)
        self.critical_s += max(epoch_busy)
        return out

    def finalize(self):
        timing = {
            "busy_s": self.busy_s,
            "critical_s": self.critical_s,
            "shard_busy_s": {
                str(i): round(b, 6) for i, b in enumerate(self.shard_busy_s)
            },
        }
        return {s.index: s.finalize() for s in self.shards}, timing

    def close(self):
        pass


def _fleet_worker_main(conn, spec_bytes: bytes, shard_ids: list[int]) -> None:
    """Persistent worker: owns its shards across all epoch barriers."""
    try:
        spec = pickle.loads(spec_bytes)
        shards = {sid: FleetShard(spec, sid) for sid in shard_ids}
        barrier_wait_s = 0.0
        barrier_count = 0
        while True:
            waited_from = time.perf_counter()
            msg = conn.recv()
            waited = time.perf_counter() - waited_from
            if msg[0] == "epoch":
                barrier_wait_s += waited
                barrier_count += 1
                _, until, inbound_by_shard, incarnations = msg
                out = {}
                for sid in shard_ids:
                    shard = shards[sid]
                    shard.update_incarnations(incarnations)
                    shard.inject(inbound_by_shard.get(sid, []))
                    shard.run_until(until)
                    out[sid] = (
                        shard.take_outbox(),
                        shard.incarnations(),
                        shard.settled(),
                    )
                conn.send(("ok", out))
            elif msg[0] == "finalize":
                results = {sid: shards[sid].finalize() for sid in shard_ids}
                timing = {
                    "barrier_wait_s": barrier_wait_s,
                    "barriers": barrier_count,
                }
                conn.send(("done", results, timing))
                return
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"unknown fleet worker command {msg[0]!r}")
    except Exception:  # noqa: BLE001 - surfaced to the coordinator
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass


class _PoolExecutor:
    """jobs>1: shards spread round-robin over persistent spawn workers."""

    def __init__(self, spec: FleetSpec, jobs: int):
        ctx = multiprocessing.get_context("spawn")
        spec_bytes = pickle.dumps(spec)
        self.assignment = [
            sorted(range(w, spec.shards, jobs)) for w in range(jobs)
        ]
        self.conns = []
        self.procs = []
        for shard_ids in self.assignment:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_fleet_worker_main,
                args=(child, spec_bytes, shard_ids),
                daemon=True,
            )
            proc.start()
            child.close()
            self.conns.append(parent)
            self.procs.append(proc)

    def _recv(self, conn):
        try:
            msg = conn.recv()
        except EOFError as exc:
            raise FleetWorkerError("fleet worker died mid-run") from exc
        if msg[0] == "error":
            raise FleetWorkerError(f"fleet worker failed:\n{msg[1]}")
        return msg

    def epoch(self, until, inbound_by_shard, incarnations):
        for conn, shard_ids in zip(self.conns, self.assignment):
            local_inbound = {
                sid: inbound_by_shard[sid]
                for sid in shard_ids
                if sid in inbound_by_shard
            }
            conn.send(("epoch", until, local_inbound, incarnations))
        out = {}
        for conn in self.conns:
            _, worker_out = self._recv(conn)
            out.update(worker_out)
        return out

    def finalize(self):
        for conn in self.conns:
            conn.send(("finalize",))
        results = {}
        timing = {}
        for w, conn in enumerate(self.conns):
            _, worker_results, worker_timing = self._recv(conn)
            results.update(worker_results)
            timing[f"worker{w}"] = worker_timing
        return results, timing

    def close(self):
        for conn in self.conns:
            conn.close()
        for proc in self.procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - cleanup of a hung worker
                proc.terminate()


def _merge_outboxes(epoch_out) -> dict[int, list[tuple[float, object]]]:
    """Canonical cross-shard merge: (arrival, source shard, ordinal)."""
    routed: dict[int, list[tuple[float, int, int, object]]] = {}
    for src in sorted(epoch_out):
        outbox, _inc, _settled = epoch_out[src]
        for dest, arrival, ordinal, envelope in outbox:
            routed.setdefault(dest, []).append((arrival, src, ordinal, envelope))
    merged: dict[int, list[tuple[float, object]]] = {}
    for dest, entries in routed.items():
        entries.sort(key=lambda e: (e[0], e[1], e[2]))
        merged[dest] = [(arrival, env) for arrival, _s, _o, env in entries]
    return merged


def _latency_percentile(counts: list[int], q: float) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    for i, n in enumerate(counts):
        seen += n
        if seen >= target:
            if i < len(LATENCY_BUCKETS_MS):
                return LATENCY_BUCKETS_MS[i]
            return float("inf")
    return float("inf")  # pragma: no cover


def run_fleet(
    spec: FleetSpec,
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
    tracer_factory=None,
) -> dict:
    """Run the fleet to quiescence; returns the deterministic result.

    ``jobs`` is pure execution parallelism (capped at the shard count);
    the result is byte-identical at any value.  ``tracer_factory(i)``
    attaches a tracer to each shard's sim — sequential path only.
    """
    topology = FleetTopology(spec)  # validates before any worker spawns
    jobs = max(1, min(jobs, spec.shards))
    if tracer_factory is not None and jobs > 1:
        raise ValueError("tracing a fleet run requires --jobs 1")
    started = time.perf_counter()
    if jobs == 1:
        executor = _SequentialExecutor(spec, tracer_factory=tracer_factory)
    else:
        executor = _PoolExecutor(spec, jobs)

    horizon_ms = spec.duration_ms + spec.settle_ms
    epoch = 0
    sim_t = 0.0
    pending: dict[int, list[tuple[float, object]]] = {}
    incarnations: dict[str, int] = {}
    cross_shard_messages = 0
    timed_out = False
    try:
        while True:
            epoch += 1
            sim_t = epoch * spec.epoch_ms
            epoch_out = executor.epoch(sim_t, pending, incarnations)
            pending = _merge_outboxes(epoch_out)
            cross_shard_messages += sum(len(v) for v in pending.values())
            for _outbox, inc, _settled in epoch_out.values():
                incarnations.update(inc)
            all_settled = all(settled for _o, _i, settled in epoch_out.values())
            if all_settled and not pending:
                break
            if sim_t >= horizon_ms:
                timed_out = True
                break
            if progress is not None and epoch % _PROGRESS_EVERY == 0:
                done = sum(
                    1 for _o, _i, settled in epoch_out.values() if settled
                )
                progress(
                    f"epoch {epoch} (t={sim_t:.0f} ms, "
                    f"{done}/{spec.shards} shards settled)"
                )
        shard_results, worker_timing = executor.finalize()
    finally:
        executor.close()
    wall_s = time.perf_counter() - started

    shards = [shard_results[i] for i in range(spec.shards)]
    expected_hits: dict[str, int] = {}
    actual_hits: dict[str, int] = {}
    latency_counts = [0] * (len(LATENCY_BUCKETS_MS) + 1)
    ledger_totals: dict[str, int] = {}
    violations: list[str] = []
    totals = {
        "expected_sessions": 0,
        "completed_sessions": 0,
        "completed_calls": 0,
        "call_errors": 0,
        "cross_domain_calls": 0,
        "steps": 0,
    }
    latency_total_ms = 0.0
    latency_max_ms = 0.0
    recovery_events: list[dict] = []
    for shard in shards:
        for key in totals:
            totals[key] += shard[key] if key != "steps" else shard["steps"]
        for msp, n in shard["expected_hits"].items():
            expected_hits[msp] = expected_hits.get(msp, 0) + n
        actual_hits.update(shard["actual_hits"])
        for i, n in enumerate(shard["latency"]["counts"]):
            latency_counts[i] += n
        latency_total_ms += shard["latency"]["total_ms"]
        latency_max_ms = max(latency_max_ms, shard["latency"]["max_ms"])
        for key, value in shard["ledger"].items():
            ledger_totals[key] = ledger_totals.get(key, 0) + value
        recovery_events.extend(shard.get("recovery_events", ()))
        violations.extend(shard["violations"])
    recovery_events.sort(key=lambda e: (e["at_ms"], e["msp"], e["kind"]))

    completed = (
        not timed_out
        and totals["completed_sessions"] == totals["expected_sessions"]
        and totals["call_errors"] == 0
    )
    hit_mismatches = sorted(
        msp
        for msp in set(expected_hits) | {m for m, n in actual_hits.items() if n}
        if expected_hits.get(msp, 0) != actual_hits.get(msp, 0)
    )
    exactly_once = completed and not hit_mismatches
    if completed and hit_mismatches:
        for msp in hit_mismatches:
            violations.append(
                f"exactly-once violated at {msp}: expected "
                f"{expected_hits.get(msp, 0)} hits, counter shows "
                f"{actual_hits.get(msp, 0)}"
            )
    exported = ledger_totals.get("messages_exported", 0)
    imported = ledger_totals.get("messages_imported", 0)
    ledger_balanced = (
        exported == imported
        and ledger_totals.get("messages_sent", 0)
        + ledger_totals.get("messages_duplicated", 0)
        == ledger_totals.get("messages_delivered", 0)
        + ledger_totals.get("messages_dropped", 0)
        + ledger_totals.get("messages_in_flight", 0)
    )
    if not ledger_balanced:
        violations.append(f"fleet network ledger out of balance: {ledger_totals}")

    calls = totals["completed_calls"]
    result = {
        "spec": spec.canonical(),
        "domains": [list(d) for d in topology.domain_lists],
        "epochs": epoch,
        "sim_time_ms": sim_t,
        "timed_out": timed_out,
        "cross_shard_messages": cross_shard_messages,
        "totals": totals,
        "expected_hits": dict(sorted(expected_hits.items())),
        "actual_hits": dict(sorted(actual_hits.items())),
        "latency_ms": {
            "mean": round(latency_total_ms / calls, 6) if calls else 0.0,
            "p50": _latency_percentile(latency_counts, 0.50),
            "p95": _latency_percentile(latency_counts, 0.95),
            "p99": _latency_percentile(latency_counts, 0.99),
            "max": round(latency_max_ms, 6),
        },
        "ledger": ledger_totals,
        "recovery": recovery_events,
        "verdicts": {
            "completed": completed,
            "exactly_once": exactly_once,
            "ledger_balanced": ledger_balanced,
            "domains_isolated": not any(
                "domain boundary" in v for v in violations
            ),
            "clean": completed and exactly_once and ledger_balanced
            and not violations,
        },
        "violations": violations,
        "shards": shards,
        "timing": {
            "wall_s": wall_s,
            "jobs": jobs,
            "sim_req_per_s": (calls / (sim_t / 1000.0)) if sim_t else 0.0,
            "wall_req_per_s": (calls / wall_s) if wall_s > 0 else 0.0,
            # jobs=1: per-shard busy seconds and the per-epoch-max
            # critical path (see _SequentialExecutor); jobs>1: the
            # per-worker barrier-wait breakdown.
            "workers": worker_timing,
        },
    }
    return result


def canonical_result_bytes(result: dict) -> bytes:
    """The deterministic byte form: everything except wall-clock timing."""
    stable = {k: v for k, v in result.items() if k != "timing"}
    return json.dumps(stable, sort_keys=True, separators=(",", ":")).encode()


def fleet_fingerprint(result: dict) -> str:
    """SHA-256 over the canonical result bytes (the --jobs invariance
    check: equal fingerprints == byte-identical runs)."""
    return hashlib.sha256(canonical_result_bytes(result)).hexdigest()
