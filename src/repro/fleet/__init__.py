"""Sharded multi-MSP fleet simulation (DESIGN.md §17).

An N-MSP topology partitioned into service domains, driven by one
:class:`~repro.sim.Simulator` per shard with cross-shard messages
exchanged at deterministic epoch barriers.  ``run_fleet`` executes the
shards sequentially (``jobs=1``, the reference path) or on persistent
worker processes (``jobs>1``) — both produce byte-identical results.
"""

from repro.fleet.topology import FleetSpec, FleetTopology
from repro.fleet.traffic import SessionPlan, generate_session_plans
from repro.fleet.runner import canonical_result_bytes, fleet_fingerprint, run_fleet

__all__ = [
    "FleetSpec",
    "FleetTopology",
    "SessionPlan",
    "canonical_result_bytes",
    "generate_session_plans",
    "fleet_fingerprint",
    "run_fleet",
]
