"""A fleet topology as a fuzzable world (DESIGN.md §17, fuzz satellite).

The crash explorer (:mod:`repro.fuzz.explorer`) was built around the
paper's three-node workload; this wraps a **single-shard** fleet —
several service domains, inter-MSP request chains crossing domain
boundaries — behind the same surface, so the existing probe machinery
(TraceRecorder / CrashInjector per-owner ordinals) drives multi-domain
schedules unchanged: crash probes land mid-chain while a cross-domain
pessimistic flush is in flight, which no paper-workload schedule can
reach.

Sharding stays out of fuzzing on purpose: at ``shards=1`` every probe
site of every MSP lives in one simulator, so a schedule's per-owner
ordinals address the whole fleet, and the run is an ordinary
deterministic simulation the minimizer can replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.shard import FleetShard
from repro.fleet.topology import FleetSpec, FleetTopology

#: Check ``settled()`` only every this many kernel steps — it walks all
#: sessions, and fuzz worlds step a lot.
_SETTLE_CHECK_STRIDE = 256


@dataclass
class FleetRunResult:
    """Mirror of the paper workload's run result, for the explorer."""

    completed_requests: int
    elapsed_ms: float


class FleetFuzzWorld:
    """Explorer-compatible facade over a one-shard fleet."""

    def __init__(self, spec: FleetSpec, faults=None):
        if spec.shards != 1:
            raise ValueError("fuzzing drives the fleet at shards=1")
        self.spec = spec
        self.topology = FleetTopology(spec)
        self.shard = FleetShard(spec, 0)
        self.sim = self.shard.sim
        self.network = self.shard.network
        if faults is not None:
            self._apply_faults(faults)

    def _apply_faults(self, model) -> None:
        """Put the schedule's fault model on every inter-MSP link.

        Client links stay clean: the oracle counts a call as expected
        only once the client saw its reply, so MSP-side loss and
        duplication (resends, duplicate delivery, reordering across the
        domain boundary) is where the recovery machinery is actually
        exercised.
        """
        from repro.net.network import DEFAULT_LATENCY_MS

        names = self.topology.msp_names
        for source in names:
            d = self.topology.domain_index(source)
            for destination in names:
                if source == destination:
                    continue
                cross = self.topology.domain_index(destination) != d
                self.network.set_link(
                    source,
                    destination,
                    latency_ms=(
                        self.spec.cross_latency_ms if cross else DEFAULT_LATENCY_MS
                    ),
                    faults=model,
                    symmetric=False,
                )

    # -- explorer surface ---------------------------------------------------

    @property
    def fuzz_msps(self):
        """Every MSP in canonical name order (the battery's subjects)."""
        return [self.shard.msps[name] for name in self.shard.local_names]

    def msp_named(self, name: str):
        return self.shard.msps[name]

    def run(self, limit_ms: float = 36_000_000.0) -> FleetRunResult:
        """Run until every session completed (or the budget expires)."""
        sim = self.sim
        shard = self.shard
        while sim.now < limit_ms:
            if shard.completed_sessions == shard.expected_sessions:
                break
            advanced = False
            for _ in range(_SETTLE_CHECK_STRIDE):
                if not sim.step():
                    break
                advanced = True
            if not advanced:
                break
        return FleetRunResult(
            completed_requests=shard.completed_calls, elapsed_ms=sim.now
        )

    def fuzz_check(self) -> list[str]:
        """The full fleet battery (used instead of ``check_world``)."""
        from repro.fuzz.invariants import check_fleet

        return check_fleet(self)
