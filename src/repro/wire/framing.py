"""Record framing: length prefix + CRC32 checksum.

The physical log is a sequence of frames::

    [u32 payload_length][u32 crc32(payload)][payload bytes]

The frame reader used by the recovery scan stops cleanly at a torn or
truncated frame — the tail of the log beyond the last complete flush is
garbage by definition, so hitting it is normal, not an error (ARIES-style
end-of-log detection).
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Optional

_HEADER = struct.Struct("<II")


class CorruptRecordError(Exception):
    """A frame whose checksum does not match its contents."""


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + checksum frame."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def unframe(data: bytes, offset: int = 0) -> tuple[Optional[bytes], int]:
    """Parse one frame at ``offset``.

    Returns ``(payload, next_offset)``; ``(None, offset)`` when the data
    ends before a complete, checksum-valid frame (the normal end-of-log
    condition).
    """
    if offset + _HEADER.size > len(data):
        return None, offset
    length, crc = _HEADER.unpack_from(data, offset)
    start = offset + _HEADER.size
    end = start + length
    if end > len(data):
        return None, offset
    payload = data[start:end]
    if zlib.crc32(payload) != crc:
        return None, offset
    return payload, end


def framed_size(payload_length: int) -> int:
    """Total on-log size of a frame holding ``payload_length`` bytes."""
    return _HEADER.size + payload_length


class FrameReader:
    """Iterates complete frames over a byte string (the recovery scan)."""

    def __init__(self, data: bytes, start: int = 0):
        self._data = data
        self.offset = start

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        return self

    def __next__(self) -> tuple[int, bytes]:
        payload, next_offset = unframe(self._data, self.offset)
        if payload is None:
            raise StopIteration
        record_offset = self.offset
        self.offset = next_offset
        return record_offset, payload
