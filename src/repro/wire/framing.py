"""Record framing: length prefix + CRC32 checksum.

The physical log is a sequence of frames::

    [u32 payload_length][u32 crc32(payload)][payload bytes]

The frame reader used by the recovery scan stops cleanly at a torn or
truncated frame — the tail of the log beyond the last complete flush is
garbage by definition, so hitting it is normal, not an error (ARIES-style
end-of-log detection).  A *complete* frame whose checksum does not match
is a different animal: the durable prefix is supposed to be crash-proof,
so a bit flip there raises :class:`CorruptRecordError` instead of being
silently treated as end-of-log.

``unframe`` is zero-copy: handed a ``memoryview`` it returns a sub-view
of the payload (``bytes`` in → ``bytes`` out), so a whole-log scan can
parse every frame without materializing intermediate copies.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterator, Optional, Union

_HEADER = struct.Struct("<II")

_Data = Union[bytes, bytearray, memoryview]


class CorruptRecordError(Exception):
    """A frame whose checksum does not match its contents."""


def frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length + checksum frame."""
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def unframe(data: _Data, offset: int = 0) -> tuple[Optional[_Data], int]:
    """Parse one frame at ``offset``.

    Returns ``(payload, next_offset)``; ``(None, offset)`` when the data
    ends before a complete frame (the normal end-of-log condition).
    Raises :class:`CorruptRecordError` when a complete frame's checksum
    does not match its contents.  The payload is a slice of ``data`` —
    zero-copy when ``data`` is a ``memoryview``.
    """
    if offset + _HEADER.size > len(data):
        return None, offset
    length, crc = _HEADER.unpack_from(data, offset)
    start = offset + _HEADER.size
    end = start + length
    if end > len(data):
        return None, offset
    payload = data[start:end]
    if zlib.crc32(payload) != crc:
        raise CorruptRecordError(
            f"frame at offset {offset}: checksum mismatch over {length} payload bytes"
        )
    return payload, end


def framed_size(payload_length: int) -> int:
    """Total on-log size of a frame holding ``payload_length`` bytes."""
    return _HEADER.size + payload_length


class FrameReader:
    """Iterates complete frames over a byte string (the recovery scan)."""

    def __init__(self, data: bytes, start: int = 0):
        self._data = data
        self.offset = start

    def __iter__(self) -> Iterator[tuple[int, bytes]]:
        return self

    def __next__(self) -> tuple[int, bytes]:
        payload, next_offset = unframe(self._data, self.offset)
        if payload is None:
            raise StopIteration
        record_offset = self.offset
        self.offset = next_offset
        return record_offset, payload
