"""Binary encoding: codec primitives and checksummed record framing.

Log records and database pages are real byte strings in this
reproduction — recovery parses what it reads back from the stable store,
so serialization bugs surface as recovery failures rather than being
papered over by keeping Python objects alive across a "crash".
"""

from repro.wire.codec import Decoder, Encoder
from repro.wire.framing import CorruptRecordError, FrameReader, frame, unframe

__all__ = [
    "CorruptRecordError",
    "Decoder",
    "Encoder",
    "FrameReader",
    "frame",
    "unframe",
]
