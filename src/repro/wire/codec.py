"""Low-level binary encoder/decoder used by log records and DB pages.

A tiny, explicit format: unsigned varints (LEB128), zig-zag signed ints,
length-prefixed bytes/strings, fixed 8-byte floats, and homogeneous
sequences.  No reflection, no pickle — every record type spells out its
own fields, which keeps the on-log format stable and debuggable.

Two API layers share the same byte format:

- :class:`Encoder` / :class:`Decoder` — the general chained interface
  every record type supports;
- the module-level ``encode_uvarint`` / ``read_uvarint`` /
  ``read_bytes`` / ``read_text`` functions — the allocation-light fast
  path used by the compiled codecs of the high-frequency record kinds
  (see :mod:`repro.core.records`).  They operate on any buffer object
  (``bytes`` or ``memoryview``), which is what makes the zero-copy log
  scan possible.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Sequence, Union

Buffer = Union[bytes, bytearray, memoryview]


class CodecError(Exception):
    """Raised on malformed input during decoding."""


#: Precomputed single-byte varints — the overwhelmingly common case
#: (kinds, flags, lengths and seqs below 128).
_UVARINT_1BYTE = tuple(bytes((i,)) for i in range(0x80))

#: Corruption guard on varint length.  Most fields fit in 64 bits, but
#: recovery frontiers of a partitioned log pack one 48-bit end offset
#: per partition into a single uint (see :mod:`repro.core.plsn`), so the
#: bound must admit a frontier for the maximum partition count (1024)
#: plus tag/count overhead — anything longer is garbage, not data.
_UVARINT_MAX_SHIFT = 68 + 48 * 1024


def encode_uvarint(value: int) -> bytes:
    """Encode an unsigned LEB128 varint (fast path for values < 128)."""
    if 0 <= value < 0x80:
        return _UVARINT_1BYTE[value]
    if value < 0:
        raise ValueError(f"uint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def read_uvarint(buf: Buffer, pos: int) -> tuple[int, int]:
    """Parse an unsigned varint at ``pos``; returns ``(value, next_pos)``."""
    end = len(buf)
    if pos >= end:
        raise CodecError("truncated varint")
    byte = buf[pos]
    if byte < 0x80:
        return byte, pos + 1
    value = byte & 0x7F
    shift = 7
    pos += 1
    while True:
        if pos >= end:
            raise CodecError("truncated varint")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > _UVARINT_MAX_SHIFT:
            raise CodecError("varint too long")


def read_bytes(buf: Buffer, pos: int) -> tuple[bytes, int]:
    """Parse a length-prefixed bytes field; returns ``(data, next_pos)``."""
    length, pos = read_uvarint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise CodecError(f"truncated bytes field (need {length}, have {len(buf) - pos})")
    return bytes(buf[pos:end]), end


def read_text(buf: Buffer, pos: int) -> tuple[str, int]:
    """Parse a length-prefixed UTF-8 string; returns ``(text, next_pos)``."""
    length, pos = read_uvarint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise CodecError(f"truncated text field (need {length}, have {len(buf) - pos})")
    return str(buf[pos:end], "utf-8"), end


#: Bounded intern table for identifier-like text fields (session ids,
#: variable and MSP names repeat on nearly every record of a log).
_TEXT_INTERN: dict[bytes, str] = {}
_TEXT_INTERN_MAX = 8192


def read_text_interned(buf: Buffer, pos: int) -> tuple[str, int]:
    """Like :func:`read_text`, but memoizes the decoded string.

    Meant for identifier fields with heavy repetition; do not use for
    payload-like text.  The table is dropped wholesale when full —
    identifiers in a log cluster tightly, so eviction precision is not
    worth per-entry bookkeeping.
    """
    length, pos = read_uvarint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise CodecError(f"truncated text field (need {length}, have {len(buf) - pos})")
    key = bytes(buf[pos:end])
    cached = _TEXT_INTERN.get(key)
    if cached is None:
        if len(_TEXT_INTERN) >= _TEXT_INTERN_MAX:
            _TEXT_INTERN.clear()
        cached = _TEXT_INTERN[key] = key.decode("utf-8")
    return cached, end


class Encoder:
    """Builds a byte string field by field."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def uint(self, value: int) -> "Encoder":
        """Append an unsigned LEB128 varint."""
        self._parts.append(encode_uvarint(value))
        return self

    def sint(self, value: int) -> "Encoder":
        """Append a zig-zag encoded signed varint."""
        zigzag = (value << 1) ^ (value >> 63) if value < 0 else value << 1
        return self.uint(zigzag & ((1 << 64) - 1))

    def boolean(self, value: bool) -> "Encoder":
        return self.uint(1 if value else 0)

    def float64(self, value: float) -> "Encoder":
        self._parts.append(struct.pack("<d", value))
        return self

    def raw(self, data: bytes) -> "Encoder":
        """Append length-prefixed bytes."""
        self.uint(len(data))
        self._parts.append(bytes(data))
        return self

    def text(self, value: str) -> "Encoder":
        return self.raw(value.encode("utf-8"))

    def seq(self, items: Sequence, item_encoder: Callable[["Encoder", object], None]) -> "Encoder":
        """Append a count-prefixed homogeneous sequence."""
        self.uint(len(items))
        for item in items:
            item_encoder(self, item)
        return self

    def finish(self) -> bytes:
        return b"".join(self._parts)


class Decoder:
    """Consumes a byte string field by field (mirror of :class:`Encoder`).

    Accepts any buffer object (``bytes`` or ``memoryview``); when handed
    a view of a larger log region it never copies more than the leaf
    fields it returns.
    """

    __slots__ = ("_data", "_pos")

    def __init__(self, data: Buffer):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def uint(self) -> int:
        value, self._pos = read_uvarint(self._data, self._pos)
        return value

    def sint(self) -> int:
        zigzag = self.uint()
        value = zigzag >> 1
        if zigzag & 1:
            value = ~value
        return value

    def boolean(self) -> bool:
        flag = self.uint()
        if flag not in (0, 1):
            raise CodecError(f"bad boolean value {flag}")
        return flag == 1

    def float64(self) -> float:
        if self.remaining < 8:
            raise CodecError("truncated float64")
        (value,) = struct.unpack_from("<d", self._data, self._pos)
        self._pos += 8
        return value

    def raw(self) -> bytes:
        length = self.uint()
        if self.remaining < length:
            raise CodecError(f"truncated bytes field (need {length}, have {self.remaining})")
        data = self._data[self._pos : self._pos + length]
        self._pos += length
        return bytes(data)

    def text(self) -> str:
        return self.raw().decode("utf-8")

    def seq(self, item_decoder: Callable[["Decoder"], object]) -> list:
        count = self.uint()
        return [item_decoder(self) for _ in range(count)]

    def expect_end(self) -> None:
        """Assert the record was fully consumed (catches schema drift)."""
        if not self.exhausted:
            raise CodecError(f"{self.remaining} trailing bytes after decode")


def encode_all(*fields: Iterable) -> bytes:  # pragma: no cover - convenience
    """Convenience: encode a flat tuple of ints/bytes/strs."""
    enc = Encoder()
    for field in fields:
        if isinstance(field, bool):
            enc.boolean(field)
        elif isinstance(field, int):
            enc.sint(field)
        elif isinstance(field, bytes):
            enc.raw(field)
        elif isinstance(field, str):
            enc.text(field)
        elif isinstance(field, float):
            enc.float64(field)
        else:
            raise TypeError(f"cannot encode {type(field).__name__}")
    return enc.finish()
