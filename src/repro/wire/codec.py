"""Low-level binary encoder/decoder used by log records and DB pages.

A tiny, explicit format: unsigned varints (LEB128), zig-zag signed ints,
length-prefixed bytes/strings, fixed 8-byte floats, and homogeneous
sequences.  No reflection, no pickle — every record type spells out its
own fields, which keeps the on-log format stable and debuggable.
"""

from __future__ import annotations

import struct
from typing import Callable, Iterable, Sequence


class CodecError(Exception):
    """Raised on malformed input during decoding."""


class Encoder:
    """Builds a byte string field by field."""

    __slots__ = ("_parts",)

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def uint(self, value: int) -> "Encoder":
        """Append an unsigned LEB128 varint."""
        if value < 0:
            raise ValueError(f"uint cannot encode negative value {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))
        return self

    def sint(self, value: int) -> "Encoder":
        """Append a zig-zag encoded signed varint."""
        zigzag = (value << 1) ^ (value >> 63) if value < 0 else value << 1
        return self.uint(zigzag & ((1 << 64) - 1))

    def boolean(self, value: bool) -> "Encoder":
        return self.uint(1 if value else 0)

    def float64(self, value: float) -> "Encoder":
        self._parts.append(struct.pack("<d", value))
        return self

    def raw(self, data: bytes) -> "Encoder":
        """Append length-prefixed bytes."""
        self.uint(len(data))
        self._parts.append(bytes(data))
        return self

    def text(self, value: str) -> "Encoder":
        return self.raw(value.encode("utf-8"))

    def seq(self, items: Sequence, item_encoder: Callable[["Encoder", object], None]) -> "Encoder":
        """Append a count-prefixed homogeneous sequence."""
        self.uint(len(items))
        for item in items:
            item_encoder(self, item)
        return self

    def finish(self) -> bytes:
        return b"".join(self._parts)


class Decoder:
    """Consumes a byte string field by field (mirror of :class:`Encoder`)."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def uint(self) -> int:
        shift = 0
        value = 0
        while True:
            if self._pos >= len(self._data):
                raise CodecError("truncated varint")
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")

    def sint(self) -> int:
        zigzag = self.uint()
        value = zigzag >> 1
        if zigzag & 1:
            value = ~value
        return value

    def boolean(self) -> bool:
        flag = self.uint()
        if flag not in (0, 1):
            raise CodecError(f"bad boolean value {flag}")
        return flag == 1

    def float64(self) -> float:
        if self.remaining < 8:
            raise CodecError("truncated float64")
        (value,) = struct.unpack_from("<d", self._data, self._pos)
        self._pos += 8
        return value

    def raw(self) -> bytes:
        length = self.uint()
        if self.remaining < length:
            raise CodecError(f"truncated bytes field (need {length}, have {self.remaining})")
        data = self._data[self._pos : self._pos + length]
        self._pos += length
        return bytes(data)

    def text(self) -> str:
        return self.raw().decode("utf-8")

    def seq(self, item_decoder: Callable[["Decoder"], object]) -> list:
        count = self.uint()
        return [item_decoder(self) for _ in range(count)]

    def expect_end(self) -> None:
        """Assert the record was fully consumed (catches schema drift)."""
        if not self.exhausted:
            raise CodecError(f"{self.remaining} trailing bytes after decode")


def encode_all(*fields: Iterable) -> bytes:  # pragma: no cover - convenience
    """Convenience: encode a flat tuple of ints/bytes/strs."""
    enc = Encoder()
    for field in fields:
        if isinstance(field, bool):
            enc.boolean(field)
        elif isinstance(field, int):
            enc.sint(field)
        elif isinstance(field, bytes):
            enc.raw(field)
        elif isinstance(field, str):
            enc.text(field)
        elif isinstance(field, float):
            enc.float64(field)
        else:
            raise TypeError(f"cannot encode {type(field).__name__}")
    return enc.finish()
