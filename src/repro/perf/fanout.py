"""Sequential-vs-parallel fan-out report (``repro bench --fanout``).

The parallel runner's contract is *determinism*: fanning work across
worker processes must change wall-clock time and nothing else.  This
module measures both halves of that claim in one pass and emits the
``BENCH_PR3.json`` artifact:

- each section runs the same work twice, ``jobs=1`` (in-process
  reference) and ``jobs=N`` (spawn pool), and records both wall times
  plus the speedup;
- wherever the work has a deterministic verdict — fuzz reports,
  experiment rows and claims — the two runs are compared for *exact*
  equality and the result recorded as ``verdicts_identical``.

Sections: exhaustive single-crash fuzz, the bounded two-crash pair
product, seeded random fuzz, the benchmark cells, and one paper
experiment sweep.  Speedup on a single-core container is ~1.0 or below
(the pool only adds overhead there); ``meta.cpu_count`` records how many
cores the numbers were taken on.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Optional

from repro.parallel import resolve_jobs


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def _section(run, verdict, jobs: int) -> dict:
    """One seq-vs-par comparison; ``verdict`` digests a run for equality."""
    seq, seq_s = _timed(lambda: run(1))
    par, par_s = _timed(lambda: run(jobs))
    return {
        "sequential_s": seq_s,
        "parallel_s": par_s,
        "speedup": (seq_s / par_s) if par_s > 0 else None,
        "verdicts_identical": verdict(seq) == verdict(par),
        "verdict": verdict(seq),
    }


def _experiment_digest(result) -> dict:
    return {
        "rows": result.rows,
        "claims": [[text, ok] for text, ok in result.claims],
    }


def run_fanout_report(
    jobs: Optional[int] = None,
    fuzz_stride: int = 8,
    pair_schedules: int = 48,
    random_cases: int = 24,
    bench_scale: float = 0.01,
    sweep_scale: float = 0.02,
    seed: int = 0,
    progress=None,
) -> dict:
    """Measure the whole fan-out surface; returns the report dict.

    Defaults are sized for a minutes-not-hours run; CI smoke shrinks
    them further.  ``progress(done, total, label)`` ticks once per
    finished section.
    """
    from repro.fuzz.explorer import FuzzParams, explore_exhaustive, fuzz_random
    from repro.harness.experiments import fig14_response_table
    from repro.perf.bench import run_benchmarks

    effective_jobs = resolve_jobs(jobs)
    params = FuzzParams()

    sections: dict[str, dict] = {}
    plan = [
        (
            "fuzz_exhaustive",
            lambda j: explore_exhaustive(
                params, seed=seed, stride=fuzz_stride, jobs=j
            ),
            lambda report: report.to_dict(),
        ),
        (
            "fuzz_pairs",
            lambda j: explore_exhaustive(
                params,
                seed=seed,
                stride=fuzz_stride,
                max_schedules=pair_schedules,
                jobs=j,
                pairs=True,
            ),
            lambda report: report.to_dict(),
        ),
        (
            "fuzz_random",
            lambda j: fuzz_random(
                master_seed=seed, runs=random_cases, params=params, jobs=j
            ),
            lambda report: report.to_dict(),
        ),
        (
            "bench_cells",
            lambda j: run_benchmarks(scale=bench_scale, repeat=1, jobs=j),
            # Timings jitter run to run; the deterministic verdict is the
            # set of cells that completed.
            lambda report: sorted(report["benchmarks"]),
        ),
        (
            "experiment_sweep",
            lambda j: fig14_response_table(scale=sweep_scale, seed=seed, jobs=j),
            _experiment_digest,
        ),
    ]
    for i, (name, run, verdict) in enumerate(plan):
        sections[name] = _section(run, verdict, effective_jobs)
        if progress is not None:
            progress(i + 1, len(plan), name)

    return {
        "meta": {
            "kind": "fanout",
            "created_unix": time.time(),
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "jobs": effective_jobs,
            "seed": seed,
        },
        "sections": sections,
        "all_identical": all(
            section["verdicts_identical"] for section in sections.values()
        ),
    }


def format_fanout_report(report: dict) -> str:
    meta = report["meta"]
    lines = [
        f"fan-out report: jobs={meta['jobs']} on {meta['cpu_count']} cores "
        f"(python {meta['python']})"
    ]
    for name, section in report["sections"].items():
        mark = "ok " if section["verdicts_identical"] else "DIFF"
        lines.append(
            f"  {name:18s} seq {section['sequential_s']:7.2f}s  "
            f"par {section['parallel_s']:7.2f}s  "
            f"{section['speedup']:.2f}x  verdicts {mark}"
        )
    lines.append(
        "all verdicts identical"
        if report["all_identical"]
        else "VERDICT MISMATCH — parallel run diverged from sequential"
    )
    return "\n".join(lines)
