"""Microbenchmarks for the logging hot path (wall-clock, not simulated).

The benchmarks cover the pipeline stages the experiments are
bottlenecked on:

- ``codec_encode`` / ``codec_decode`` — records/s through the record
  codecs for the high-frequency kinds (request, reply, SV read/write);
- ``append_flush`` — records/s and MB/s through ``LogManager.append``
  plus grouped flushes under the simulator;
- ``scan`` — MB/s and records/s of ``scan_durable`` over a prebuilt
  durable log (the crash-recovery analysis scan);
- ``recovery_scan`` — per-record CPU of ``recover_msp``'s analysis
  pass (the type-dispatched loop of §4.3 step 2) against log length;
- ``fig14`` — end-to-end wall seconds for a scaled-down Fig. 14
  workload run (the paper's headline experiment);
- ``trace_overhead`` — the same workload with structured tracing off
  vs on (the DESIGN.md §13 cost contract).

``run_benchmarks`` returns a machine-readable dict; ``write_report``
emits it as JSON (``BENCH_PR1.json`` at the repo root by convention).
When a baseline report is supplied, per-metric speedups are computed so
a PR can quote before/after numbers directly.  With ``jobs > 1`` the
benchmark *cells* run as parallel worker processes (each cell's timing
loop still runs alone in its worker); quote single-core numbers from
``--jobs 1`` runs when cells would contend for cores.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time
from typing import Callable, Optional

from repro.core.dv import DependencyVector, StateId
from repro.core.log_manager import LogManager
from repro.core.records import (
    ReplyRecord,
    RequestRecord,
    SvReadRecord,
    SvWriteRecord,
    decode_record,
)
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, StableStore


def _sample_dv() -> DependencyVector:
    dv = DependencyVector()
    dv.observe("MSP1", StateId(0, 12345))
    dv.observe("MSP2", StateId(1, 987654))
    return dv


def _sample_records() -> list:
    """A representative mix of the high-frequency record kinds."""
    dv = _sample_dv()
    return [
        RequestRecord(
            session_id="client-7/session-41",
            seq=17,
            method="ServiceMethod1",
            argument=b"x" * 64,
            sender_dv=dv,
        ),
        ReplyRecord(
            session_id="client-7/session-41",
            outgoing_session_id="msp1/out-3",
            seq=9,
            payload=b"r" * 48,
            sender_dv=dv,
        ),
        SvReadRecord(
            session_id="client-7/session-41",
            variable="inventory",
            value=b"v" * 32,
            variable_dv=dv,
        ),
        SvWriteRecord(
            session_id="client-7/session-41",
            variable="inventory",
            value=b"w" * 32,
            writer_dv=dv,
            prev_write_lsn=4096,
        ),
    ]


def bench_codec_encode(scale: float = 1.0) -> dict:
    records = _sample_records()
    n = max(1, int(50_000 * scale))
    start = time.perf_counter()
    total_bytes = 0
    for i in range(n):
        total_bytes += len(records[i & 3].encode())
    elapsed = time.perf_counter() - start
    return {
        "records": n,
        "seconds": elapsed,
        "records_per_s": n / elapsed,
        "mb_per_s": total_bytes / elapsed / 1e6,
    }


def bench_codec_decode(scale: float = 1.0) -> dict:
    payloads = [r.encode() for r in _sample_records()]
    n = max(1, int(50_000 * scale))
    start = time.perf_counter()
    for i in range(n):
        decode_record(payloads[i & 3])
    elapsed = time.perf_counter() - start
    return {
        "records": n,
        "seconds": elapsed,
        "records_per_s": n / elapsed,
    }


def _make_log(batch_ms: float = 0.0) -> tuple[Simulator, LogManager]:
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(1234))
    log = LogManager(sim, store, disk, batch_flush_timeout_ms=batch_ms)
    log.start(group=ProcessGroup("bench"))
    return sim, log


def bench_append_flush(scale: float = 1.0) -> dict:
    """Append records and flush every 32 appends (group commit shape)."""
    sim, log = _make_log()
    records = _sample_records()
    n = max(1, int(20_000 * scale))

    def producer():
        for i in range(n):
            lsn, _size = log.append(records[i & 3])
            if i & 31 == 31:
                yield from log.flush(lsn)
        yield from log.flush()

    start = time.perf_counter()
    sim.run_process(producer())
    elapsed = time.perf_counter() - start
    return {
        "records": n,
        "seconds": elapsed,
        "records_per_s": n / elapsed,
        "mb_per_s": log.stats.appended_bytes / elapsed / 1e6,
        "flush_requests": log.stats.flush_requests,
        "physical_flushes": log.stats.physical_flushes,
        "coalesced_flushes": log.stats.coalesced_flushes,
    }


def bench_scan(scale: float = 1.0) -> dict:
    """Sequential analysis scan of a prebuilt durable log."""
    sim, log = _make_log()
    records = _sample_records()
    n = max(1, int(20_000 * scale))

    def builder():
        for i in range(n):
            log.append(records[i & 3])
        yield from log.flush()

    sim.run_process(builder())
    nbytes = log.store.durable_end

    def scanner():
        return (yield from log.scan_durable(0))

    start = time.perf_counter()
    scanned = sim.run_process(scanner())
    elapsed = time.perf_counter() - start
    return {
        "records": len(scanned),
        "bytes": nbytes,
        "seconds": elapsed,
        "records_per_s": len(scanned) / elapsed,
        "mb_per_s": nbytes / elapsed / 1e6,
        "decode_cache_hits": log.stats.decode_cache_hits,
        "decode_cache_misses": log.stats.decode_cache_misses,
    }


def _analysis_record_stream(n: int) -> list:
    """Synthetic ``(lsn, record)`` stream shaped like a real scan's input.

    Mostly position-stream kinds (request/reply/SV accesses), with
    session checkpoints sprinkled in at roughly the density the paper's
    1 MB threshold produces — the mix ``analyze_scan`` dispatches over.
    """
    from repro.core.records import SessionCheckpointRecord

    dv = _sample_dv()
    records: list = []
    lsn = 0
    for i in range(n):
        session_id = f"client-{i & 3}/session-{i % 7}"
        k = i & 7
        if k < 3:
            record = RequestRecord(session_id, i, "ServiceMethod1", b"x" * 64, dv)
        elif k < 5:
            record = ReplyRecord(session_id, f"{session_id}/out", i, b"r" * 48, dv)
        elif k == 5:
            record = SvReadRecord(session_id, "SV0", b"v" * 32, dv)
        elif k == 6:
            record = SvWriteRecord(session_id, "SV1", b"w" * 32, dv, prev_write_lsn=lsn)
        elif i % 512 == 7:
            record = SessionCheckpointRecord(
                session_id,
                variables={"state": b"s" * 128},
                buffered_reply=b"r" * 48,
                buffered_reply_seq=i,
                next_expected_seq=i + 1,
                outgoing_next_seq={f"{session_id}/out": i},
            )
        else:
            record = RequestRecord(session_id, i, "ServiceMethod2", b"y" * 64, dv)
        records.append((lsn, record))
        lsn += 96
    return records


def bench_recovery_scan(scale: float = 1.0) -> dict:
    """Per-record CPU of the recovery analysis pass, against log length.

    Drives :func:`repro.core.crash_recovery.analyze_scan` (the
    type-dispatched inner loop of §4.3 step 2) over synthetic scanned
    streams of increasing length on a real MSP (live shared variables,
    so SV roll-forward does its genuine work).  ``records_per_s`` /
    ``ns_per_record`` at the longest length are the headline; the
    per-length rows show the cost stays linear.
    """
    from repro.core.crash_recovery import analyze_scan
    from repro.workloads import PaperWorkload, WorkloadParams

    n_max = max(64, int(40_000 * scale))
    stream = _analysis_record_stream(n_max)
    lengths = sorted({max(1, n_max // 4), max(1, n_max // 2), n_max})
    rows = []
    for n in lengths:
        # A fresh world per length: SV undo chains would otherwise grow
        # across measurements and skew the per-record cost.
        msp = PaperWorkload(WorkloadParams(seed=0)).msp1
        start = time.perf_counter()
        analyze_scan(msp, stream[:n])
        elapsed = max(time.perf_counter() - start, 1e-9)
        rows.append(
            {
                "records": n,
                "seconds": elapsed,
                "records_per_s": n / elapsed,
                "ns_per_record": elapsed / n * 1e9,
            }
        )
    headline = rows[-1]
    return {
        "records": headline["records"],
        "seconds": headline["seconds"],
        "records_per_s": headline["records_per_s"],
        "ns_per_record": headline["ns_per_record"],
        "lengths": rows,
    }


def bench_fig14(scale: float = 1.0) -> dict:
    """End-to-end wall time for a scaled-down Fig. 14 workload run."""
    from repro.workloads import PaperWorkload, WorkloadParams

    requests = max(10, int(400 * scale))
    params = WorkloadParams(
        configuration="LoOptimistic",
        requests_per_client=requests,
        num_clients=1,
        calls_to_sm2=1,
        seed=0,
    )
    start = time.perf_counter()
    result = PaperWorkload(params).run()
    elapsed = time.perf_counter() - start
    return {
        "requests": result.completed_requests,
        "seconds": elapsed,
        "requests_per_wall_s": result.completed_requests / elapsed,
        "sim_mean_response_ms": result.mean_response_ms,
    }


def bench_trace_overhead(scale: float = 1.0) -> dict:
    """Wall-time cost of the structured tracer, on vs off.

    Runs the same seeded Fig. 14-shaped workload twice: once plain
    (``sim.tracer`` is ``None``, the guard branch every instrumentation
    site takes) and once with a :class:`repro.trace.Tracer` attached.
    ``overhead_ratio`` quotes traced/plain wall seconds — the
    disabled-cost contract (DESIGN.md §13) says the *plain* run must
    stay inside the existing fig14 perf band, and the gate additionally
    bounds the ratio so enabling tracing stays affordable.
    """
    from repro.trace import Tracer
    from repro.workloads import PaperWorkload, WorkloadParams

    requests = max(10, int(200 * scale))

    def build():
        return PaperWorkload(
            WorkloadParams(
                configuration="LoOptimistic",
                requests_per_client=requests,
                num_clients=1,
                calls_to_sm2=1,
                seed=0,
            )
        )

    start = time.perf_counter()
    plain = build().run()
    plain_seconds = time.perf_counter() - start

    workload = build()
    tracer = Tracer(workload.sim).attach()
    start = time.perf_counter()
    traced = workload.run()
    traced_seconds = time.perf_counter() - start
    tracer.finalize()

    if traced.completed_requests != plain.completed_requests:
        raise AssertionError(
            "tracing changed the workload outcome: "
            f"{traced.completed_requests} != {plain.completed_requests}"
        )
    return {
        "requests": plain.completed_requests,
        # Best-of-repeat keys off "seconds": keep the plain run there so
        # the disabled cost (the contract under test) is what stabilises.
        "seconds": plain_seconds,
        "plain_seconds": plain_seconds,
        "traced_seconds": traced_seconds,
        "overhead_ratio": traced_seconds / max(plain_seconds, 1e-9),
        "trace_events": len(tracer.events),
    }


def _log_space_run(
    n: int, truncation: bool, segment_bytes: int, ckpt_every: int
) -> dict:
    """Drive one long append run, checkpointing (and optionally
    truncating) every ``ckpt_every`` appends; sample live log bytes at
    n/4, n/2, n."""
    from repro.core.records import MspCheckpointRecord

    sim = Simulator()
    store = StableStore(segment_bytes=segment_bytes)
    disk = Disk(sim, rng=random.Random(1234))
    log = LogManager(sim, store, disk)
    log.start(group=ProcessGroup("bench"))
    records = _sample_records()
    ckpt = MspCheckpointRecord(
        recovered_snapshot={}, session_start_lsns={}, sv_start_lsns={}, epoch=0
    )
    marks = sorted({max(1, n // 4), max(1, n // 2), n})
    rows: list[dict] = []
    peak = 0

    def producer():
        nonlocal peak
        for i in range(n):
            lsn, _size = log.append(records[i & 3])
            if (i + 1) % ckpt_every == 0:
                clsn, _size = log.append(ckpt)
                yield from log.flush(clsn)
                yield from log.write_anchor(clsn)
                # Live bytes peak right before the recycle.
                if store.live_bytes > peak:
                    peak = store.live_bytes
                if truncation:
                    # Empty position maps: min_lsn is the checkpoint's
                    # own LSN, the most aggressive legal floor.
                    yield from log.truncate_to(ckpt.min_lsn(clsn))
            if i + 1 in marks:
                rows.append({"records": i + 1, "live_bytes": store.live_bytes})
        yield from log.flush()

    start = time.perf_counter()
    sim.run_process(producer())
    elapsed = time.perf_counter() - start
    if store.live_bytes > peak:
        peak = store.live_bytes
    return {
        "seconds": elapsed,
        "rows": rows,
        "peak_live_bytes": peak,
        "final_live_bytes": store.live_bytes,
        "appended_bytes": log.stats.appended_bytes,
        "truncated_bytes": log.stats.truncated_bytes,
        "recycled_segments": log.stats.recycled_segments,
        "truncations": log.stats.truncations,
    }


def bench_log_space(scale: float = 1.0) -> dict:
    """Long-run log space: checkpoint-driven truncation on vs off.

    With truncation on, live log bytes stay bounded by roughly the
    checkpoint interval (plus one segment of slack per recycle
    granularity); with it off they grow linearly with appended bytes.
    The headline is append throughput *with truncation enabled* — the
    recycle must not tax the hot path.  ``space_ratio`` quotes
    final-off / final-on live bytes (higher = more space reclaimed).
    """
    segment_bytes = 16 * 1024
    ckpt_every = 512
    n = max(256, int(20_000 * scale))
    on = _log_space_run(n, True, segment_bytes, ckpt_every)
    off = _log_space_run(n, False, segment_bytes, ckpt_every)
    return {
        "records": n,
        "segment_bytes": segment_bytes,
        "ckpt_every": ckpt_every,
        "seconds": on["seconds"],
        "records_per_s": n / on["seconds"],
        "truncation_on": on,
        "truncation_off": off,
        "space_ratio": off["final_live_bytes"] / max(1, on["final_live_bytes"]),
        "truncated_bytes": on["truncated_bytes"],
        "recycled_segments": on["recycled_segments"],
        "live_bytes": on["final_live_bytes"],
    }


def _partition_scaling_run(nparts: int, n: int, sessions: int = 8) -> dict:
    """One partition-count cell: concurrent session streams with group
    commit, on a log split across ``nparts`` stores/disks."""
    sim = Simulator()
    stores = [
        StableStore(name="log" if i == 0 else f"log.p{i}")
        for i in range(nparts)
    ]
    disks = [Disk(sim, rng=random.Random(1234 + i)) for i in range(nparts)]
    log = LogManager(sim, stores, disks)
    log.start(group=ProcessGroup("bench"))
    dv = _sample_dv()
    per_session = max(8, n // sessions)
    waits: list[float] = []

    def producer(session_id: str):
        # One record kind, one session id per producer: the stream is
        # partition-affine exactly like a real session's.  Values are
        # sized so a group-commit round is transfer-bound rather than
        # rotational-latency-bound — the regime where splitting the
        # write volume across disks pays (a latency-bound round is one
        # short write regardless of how many disks share it).
        record = SvWriteRecord(
            session_id=session_id,
            variable="inventory",
            value=b"w" * 1024,
            writer_dv=dv,
            prev_write_lsn=4096,
        )
        lsn = 0
        for i in range(per_session):
            lsn, _size = log.append(record)
            if i & 15 == 15:
                started = sim.now
                yield from log.flush(lsn)
                waits.append(sim.now - started)
        yield from log.flush(lsn)

    start = time.perf_counter()
    for s in range(sessions):
        # ``bench/session-0..7`` cover all residues of crc32 mod 8, so
        # the load is balanced at every P in {1, 2, 4, 8}.
        sim.spawn(producer(f"bench/session-{s}"))
    sim.run()
    wall = time.perf_counter() - start
    total = per_session * sessions
    sim_seconds = sim.now / 1000.0
    waits.sort()
    return {
        "partitions": nparts,
        "records": total,
        "seconds": wall,
        "records_per_s": total / wall,
        "mb_per_s": log.stats.appended_bytes / wall / 1e6,
        "sim_ms": sim.now,
        "sim_records_per_s": total / sim_seconds if sim_seconds else 0.0,
        "flush_wait_mean_ms": sum(waits) / len(waits) if waits else 0.0,
        "flush_wait_p99_ms": (
            waits[min(len(waits) - 1, int(0.99 * len(waits)))] if waits else 0.0
        ),
        "flush_requests": log.stats.flush_requests,
        "physical_flushes": log.stats.physical_flushes,
        "coalesced_flushes": log.stats.coalesced_flushes,
        "partition_appends": {
            str(unit.index): log.stats.partition(unit.index)["appends"]
            for unit in log.partitions
        },
    }


def bench_log_partitions(scale: float = 1.0) -> dict:
    """Partition scaling of the append + group-commit hot path.

    Eight concurrent session streams append and flush against a log
    split P ways (P in {1, 2, 4, 8}, each partition with its own disk
    and flusher).  The headline is *simulated* throughput scaling —
    ``speedup_p4_sim`` quotes sim-time records/s at P=4 over P=1, the
    quantity the per-partition group commit actually buys (flushes on
    different partitions overlap instead of serializing on one disk).
    Wall-clock records/s per cell is reported too; the perf gate holds
    the P=1 cell inside the historical append band.
    """
    n = max(64, int(8_000 * scale))
    cells = {P: _partition_scaling_run(P, n) for P in (1, 2, 4, 8)}
    p1 = cells[1]
    return {
        "records": p1["records"],
        "seconds": sum(run["seconds"] for run in cells.values()),
        "p1_records_per_s": p1["records_per_s"],
        "p1_sim_records_per_s": p1["sim_records_per_s"],
        "p4_sim_records_per_s": cells[4]["sim_records_per_s"],
        "speedup_p2_sim": cells[2]["sim_records_per_s"] / p1["sim_records_per_s"],
        "speedup_p4_sim": cells[4]["sim_records_per_s"] / p1["sim_records_per_s"],
        "speedup_p8_sim": cells[8]["sim_records_per_s"] / p1["sim_records_per_s"],
        "cells": {str(P): run for P, run in cells.items()},
    }


def _instant_restart_run(mode: str, nparts: int, n_sessions: int) -> dict:
    """One instant-restart cell: build a server with ``n_sessions`` live
    sessions, crash it, and measure sim-ms from the restart to the first
    served reply (TTFR) plus the time until every session is recovered.

    Eager mode replays every session before opening — TTFR grows with
    the session count.  Lazy mode opens after the analysis scan and
    replays only the probed session's chain inline; the pump drains the
    rest in the background (``full_recovery_ms`` shows that tail).
    """
    from repro.core import RecoveryConfig, ServiceDomainConfig
    from repro.core.client import EndClient
    from repro.core.msp import MiddlewareServer
    from repro.net import Network
    from repro.sim import RngRegistry

    sim = Simulator()
    rng = RngRegistry(7)
    net = Network(sim, rng=rng)
    config = RecoveryConfig(recovery_mode=mode, log_partitions=nparts)
    # A calm checkpoint cadence for a world this wide: the default 2 s
    # MSP checkpoint period plus 8-interval forced session checkpoints
    # would spend the whole build writing per-session checkpoints (the
    # build is longer than 16 s of sim time at 10k sessions).  One MSP
    # checkpoint still lands before the crash, bounding the analysis
    # scan, which is the shape a production restart sees.
    config.msp_ckpt_interval_ms = 10_000.0
    config.forced_ckpt_msp_count = 1_000_000
    msp = MiddlewareServer(
        sim, net, "msp1", ServiceDomainConfig(), config=config, rng=rng
    )

    def bump(ctx, argument):
        yield from ctx.compute(0.05)
        raw = yield from ctx.get_session_var("n")
        n = int.from_bytes(raw or b"\x00", "big") + 1
        yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
        return n.to_bytes(4, "big")

    msp.register_service("bump", bump)
    msp.start_process()
    # Spread the sessions over a few client machines so the client-side
    # CPU (capacity 1 per machine) does not serialize the build.  Only
    # the probe's client (client0, which owns exactly one session) uses
    # a fine resend period — it quantizes the TTFR measurement.  Build
    # clients must never resend at all: every session calls
    # concurrently, so the server's inbox is thousands deep and queue
    # latency dwarfs any human-scale resend period — each waiting
    # session re-sending per period is O(n) duplicates per genuine
    # request, a quadratic flood.  The build network is fault-free and
    # the builders finish before the crash, so resends buy nothing.
    probe_client = EndClient(
        sim, net, "client0", resend_timeout_ms=5.0, busy_sleep_ms=5.0
    )
    clients = [
        EndClient(
            sim, net, f"client{i}", resend_timeout_ms=600_000.0,
            busy_sleep_ms=600_000.0,
        )
        for i in range(1, 1 + min(32, n_sessions))
    ]
    sessions = [probe_client.open_session("msp1")] + [
        clients[i % len(clients)].open_session("msp1")
        for i in range(n_sessions - 1)
    ]

    def builder(idx):
        def process():
            # Stagger the openings so the inbox is a queue, not a spike.
            yield 0.2 * idx
            for _ in range(2):
                yield from sessions[idx].call("bump", b"")

        return process()

    start = time.perf_counter()
    procs = [sim.spawn(builder(i)) for i in range(n_sessions)]
    for proc in procs:
        sim.run_until_process(proc, limit=36_000_000)
    build_seconds = time.perf_counter() - start

    msp.crash()
    t0 = sim.now
    msp.restart_process()
    ttfr_box: list[float] = []

    def probe():
        result = yield from sessions[0].call("bump", b"")
        assert int.from_bytes(result.payload, "big") == 3
        ttfr_box.append(sim.now - t0)

    start = time.perf_counter()
    probe_proc = sim.spawn(probe())
    sim.run_until_process(probe_proc, limit=36_000_000)

    def drain():
        # Coarse poll: the pending scan is O(sessions), so a 10 ms poll
        # over a 10k-session drain is itself quadratic wall time.
        while any(
            s.lazy_pending or s.recovery_pending for s in msp.sessions.values()
        ) or not msp.running:
            yield 500.0

    drain_proc = sim.spawn(drain())
    sim.run_until_process(drain_proc, limit=36_000_000)
    recover_seconds = time.perf_counter() - start
    return {
        "mode": mode,
        "partitions": nparts,
        "sessions": n_sessions,
        "ttfr_ms": ttfr_box[0],
        "full_recovery_ms": sim.now - t0,
        "build_seconds": build_seconds,
        "seconds": build_seconds + recover_seconds,
        "lazy_recoveries": msp.stats.lazy_recoveries,
        "inline_recoveries": msp.stats.inline_recoveries,
        "pump_recoveries": msp.stats.pump_recoveries,
        "served_before_recovery": msp.stats.served_before_recovery,
    }


def bench_instant_restart(scale: float = 1.0) -> dict:
    """Time-to-first-reply after a crash: lazy vs eager restart.

    Four cells — mode in {eager, lazy} x partitions in {1, 4} — each
    with ``max(64, 10_000 * scale)`` live sessions.  The headline is
    ``ttfr_speedup_p1``: eager TTFR over lazy TTFR on the classical
    single log (higher = lazy opens that much sooner); the perf gate
    floors it at 5x for reports with >= 10k sessions (ISSUE 7).
    """
    n = max(64, int(10_000 * scale))
    cells = {
        f"{mode}_p{P}": _instant_restart_run(mode, P, n)
        for P in (1, 4)
        for mode in ("eager", "lazy")
    }
    for cell in cells.values():
        if cell["served_before_recovery"]:
            raise AssertionError(
                "instant_restart: a session was served before its chain "
                f"was replayed ({cell['mode']} P={cell['partitions']})"
            )
    return {
        "sessions": n,
        "seconds": sum(run["seconds"] for run in cells.values()),
        "ttfr_eager_p1_ms": cells["eager_p1"]["ttfr_ms"],
        "ttfr_lazy_p1_ms": cells["lazy_p1"]["ttfr_ms"],
        "ttfr_eager_p4_ms": cells["eager_p4"]["ttfr_ms"],
        "ttfr_lazy_p4_ms": cells["lazy_p4"]["ttfr_ms"],
        "ttfr_speedup_p1": (
            cells["eager_p1"]["ttfr_ms"] / max(cells["lazy_p1"]["ttfr_ms"], 1e-9)
        ),
        "ttfr_speedup_p4": (
            cells["eager_p4"]["ttfr_ms"] / max(cells["lazy_p4"]["ttfr_ms"], 1e-9)
        ),
        "modes": cells,
    }


def _log_volume_run(
    mode: str, nparts: int, recovery_mode: str, requests: int
) -> dict:
    """One §5.1 workload run under one (logging mode, P, recovery mode).

    The run is traced so the per-kind append counters and the recovery
    spans land in one MetricsRegistry; exactly-once is verified before
    any number is reported — a cell that loses an increment is a bug,
    not a fast configuration.
    """
    from repro.trace import Tracer
    from repro.workloads import PaperWorkload, WorkloadParams

    params = WorkloadParams(
        configuration="LoOptimistic",
        requests_per_client=requests,
        num_clients=2,
        calls_to_sm2=1,
        # Two mid-run msp2 crashes so the recovery-time axis of the
        # overhead-vs-recovery spectrum is measured, not extrapolated.
        crash_every_n=max(8, (requests * 2) // 3),
        # Commutative RMW counters — the access pattern command logging
        # elides (plain read+write pairs stay value-logged by contract).
        atomic_sv_updates=True,
        log_partitions=nparts,
        recovery_mode=recovery_mode,
        logging_mode=mode,
        seed=0,
    )
    workload = PaperWorkload(params)
    tracer = Tracer(workload.sim).attach()
    start = time.perf_counter()
    result = workload.run()
    elapsed = time.perf_counter() - start
    tracer.finalize()
    workload.verify_exactly_once()

    counters = tracer.metrics.counters
    kinds: dict[str, dict] = {}
    for name, counter in counters.items():
        if name.startswith("log.append.") and name.endswith(".bytes"):
            kind = name[len("log.append.") : -len(".bytes")]
            records = counters.get(f"log.append.{kind}.records")
            kinds[kind] = {
                "bytes": counter.value,
                "records": records.value if records is not None else 0,
            }
    appended_bytes = sum(k["bytes"] for k in kinds.values())
    histograms = tracer.metrics.histograms
    recovery = histograms.get("span.recovery_ms")
    session_replay = histograms.get("span.recovery.session_ms")
    stats = (workload.msp1.stats, workload.msp2.stats)
    return {
        "logging_mode": mode,
        "partitions": nparts,
        "recovery_mode": recovery_mode,
        "requests": result.completed_requests,
        "crashes": result.crashes,
        "seconds": elapsed,
        "sim_mean_response_ms": result.mean_response_ms,
        "appended_bytes": appended_bytes,
        # The satellite's one-number-per-cell: total log volume (both
        # MSPs, all kinds) over completed end-client requests.
        "log_bytes_per_request": appended_bytes
        / max(1, result.completed_requests),
        "record_kinds": kinds,
        # Crash recovery (restart to open-for-business) and session
        # replay sim-time.  Eager nests replay inside the recovery span;
        # lazy runs chains after it — the sum is the total repair work
        # either way, which is what the spectrum plots.
        "recovery_ms": recovery.total if recovery is not None else 0.0,
        "session_replay_ms": (
            session_replay.total if session_replay is not None else 0.0
        ),
        "replayed_requests": sum(s.replayed_requests for s in stats),
        "replayed_commands": sum(s.replayed_commands for s in stats),
        "command_requests": sum(s.command_requests for s in stats),
        "mode_switches": sum(s.mode_switches for s in stats),
    }


def bench_log_volume(scale: float = 1.0, modes: tuple = None) -> dict:
    """Runtime overhead vs recovery time: value → adaptive → command.

    The adaptive-logging trade (Yao et al.) on our substrate: twelve
    §5.1 workload cells — logging mode in {value, adaptive, command} x
    partitions in {1, 4} x recovery mode in {eager, lazy} — each with
    two mid-run crashes.  The headline ``volume_reduction_p1`` quotes
    value-mode log bytes/request over command-mode on the classical
    single log (eager); the perf gate floors it at 2x and holds
    value-mode bytes/request inside the PR 7 band.
    """
    modes = tuple(modes) if modes else ("value", "adaptive", "command")
    requests = max(16, int(100 * scale))
    cells = {
        f"{mode}_p{P}_{rmode}": _log_volume_run(mode, P, rmode, requests)
        for mode in modes
        for P in (1, 4)
        for rmode in ("eager", "lazy")
    }
    report = {
        "requests": requests,
        "seconds": sum(run["seconds"] for run in cells.values()),
        "volume_cells": cells,
    }
    for key, run in cells.items():
        report[f"bpr_{key}"] = run["log_bytes_per_request"]
    value = cells.get("value_p1_eager")
    command = cells.get("command_p1_eager")
    if value and command:
        report["volume_reduction_p1"] = value["log_bytes_per_request"] / max(
            command["log_bytes_per_request"], 1e-9
        )
    return report


def _fleet_bench_spec(shards: int, sessions: int):
    """The PR 9 scaling workload: 16 MSPs / 8 domains, mixed intra- and
    cross-domain chains, two mid-run crashes.  Only ``shards`` varies
    between cells; the traffic plan is identical, so busy-time ratios
    compare the cost of simulating the *same* fleet."""
    from repro.fleet import FleetSpec

    return FleetSpec(
        msps=16,
        domains=8,
        shards=shards,
        seed=11,
        sessions=sessions,
        duration_ms=8_000.0,
        chain_depth=1,
        cross_domain_fraction=0.5,
        think_ms=2.0,
        epoch_ms=40.0,
        cross_latency_ms=40.0,
        crash_plan=((1_500.0, "m001"), (4_500.0, "m004")),
    )


def _fleet_cell(spec, jobs: int) -> dict:
    """One fleet run; wall seconds, throughput, and the fingerprint."""
    from repro.fleet import fleet_fingerprint, run_fleet

    start = time.perf_counter()
    result = run_fleet(spec, jobs=jobs)
    seconds = time.perf_counter() - start
    totals = result["totals"]
    live_bytes = 0
    recycled = 0
    for shard in result["shards"]:
        for stats in shard["log"].values():
            live_bytes += stats["live_bytes"]
            recycled += stats["recycled_segments"]
    cell = {
        "seconds": seconds,
        "shards": spec.shards,
        "jobs": jobs,
        "sessions": totals["completed_sessions"],
        "calls": totals["completed_calls"],
        "cross_domain_calls": totals["cross_domain_calls"],
        "epochs": result["epochs"],
        "sim_time_ms": result["sim_time_ms"],
        "cross_shard_messages": result["cross_shard_messages"],
        "wall_req_per_s": result["timing"]["wall_req_per_s"],
        "sim_req_per_s": result["timing"]["sim_req_per_s"],
        "latency_p95_ms": result["latency_ms"]["p95"],
        "live_bytes": live_bytes,
        "recycled_segments": recycled,
        "clean": result["verdicts"]["clean"],
        "fingerprint": fleet_fingerprint(result),
    }
    if jobs == 1:
        workers = result["timing"]["workers"]
        cell["busy_s"] = workers["busy_s"]
        cell["critical_s"] = workers["critical_s"]
        cell["shard_busy_s"] = workers["shard_busy_s"]
    return cell


def bench_fleet(scale: float = 1.0) -> dict:
    """Shard scaling of the fleet simulation (the PR 9 tentpole).

    The same 16-MSP / 8-domain open-loop workload is simulated split
    into S in {1, 2, 4} shards on the jobs=1 reference path, which
    times every shard's stepping per epoch.  The headline ``speedup_s4``
    is the *critical-path* speedup: total busy seconds of the unsharded
    S=1 run over the per-epoch-max busy seconds of the S=4 run — the
    wall-clock factor a host with one core per shard achieves, measured
    host-independently (this is the fleet analogue of the partition
    bench's sim-time headline; a single-core CI box can neither show
    nor fake wall parallelism).  The perf gate floors it at 1.8x.  Each
    cell's real ``wall_req_per_s`` is reported alongside, and the S=4
    spec is rerun at ``jobs=4`` on the worker pool to assert the
    fingerprint is byte-identical (``deterministic_s4``).  At ``scale
    >= 1`` an open-loop cell with ``>= 100k`` sessions runs on the
    sharded path and reports the bounded-memory truncation counters
    (recycled segments, final live bytes).
    """
    from repro.fleet import FleetSpec

    sessions = max(24, int(1_200 * scale))
    cells = {
        S: _fleet_cell(_fleet_bench_spec(S, sessions), jobs=1) for S in (1, 2, 4)
    }
    pool_s4 = _fleet_cell(_fleet_bench_spec(4, sessions), jobs=4)
    s1, s2, s4 = cells[1], cells[2], cells[4]
    report = {
        "sessions": sessions,
        "requests": s1["calls"],
        "host_cores": os.cpu_count(),
        "seconds": sum(run["seconds"] for run in cells.values())
        + pool_s4["seconds"],
        "s1_busy_s": s1["busy_s"],
        "s4_critical_s": s4["critical_s"],
        "s1_wall_req_per_s": s1["wall_req_per_s"],
        "s4_wall_req_per_s": pool_s4["wall_req_per_s"],
        "speedup_s2": s1["busy_s"] / max(s2["critical_s"], 1e-9),
        "speedup_s4": s1["busy_s"] / max(s4["critical_s"], 1e-9),
        "deterministic_s4": pool_s4["fingerprint"] == s4["fingerprint"],
        "clean": all(run["clean"] for run in cells.values()) and pool_s4["clean"],
        "cells": {str(S): run for S, run in cells.items()},
        "pool_s4": pool_s4,
    }
    if scale >= 1.0:
        # The million-session-scale open-loop cell: bounded-memory
        # truncation must hold over a long run — segments get recycled
        # and the live log stays far below the total bytes appended.
        big_spec = FleetSpec(
            msps=16,
            domains=8,
            shards=4,
            seed=23,
            sessions=int(100_000 * scale),
            duration_ms=600_000.0,
            chain_depth=1,
            cross_domain_fraction=0.25,
            max_requests_per_session=3,
            think_ms=2.0,
            epoch_ms=40.0,
            cross_latency_ms=40.0,
        )
        big = _fleet_cell(big_spec, jobs=1)
        report["open_loop"] = big
        report["open_loop_truncation_ok"] = (
            big["recycled_segments"] > 0
            and big["live_bytes"] < big["calls"] * 1024
        )
        report["seconds"] += big["seconds"]
    return report


BENCHMARKS: dict[str, Callable[[float], dict]] = {
    "codec_encode": bench_codec_encode,
    "codec_decode": bench_codec_decode,
    "append_flush": bench_append_flush,
    "scan": bench_scan,
    "recovery_scan": bench_recovery_scan,
    "fig14": bench_fig14,
    "log_space": bench_log_space,
    "log_partitions": bench_log_partitions,
    "log_volume": bench_log_volume,
    "instant_restart": bench_instant_restart,
    "trace_overhead": bench_trace_overhead,
    "fleet": bench_fleet,
}

#: The headline metric of each benchmark, used for speedup reporting.
_HEADLINE = {
    "codec_encode": "records_per_s",
    "codec_decode": "records_per_s",
    "append_flush": "records_per_s",
    "scan": "mb_per_s",
    "recovery_scan": "records_per_s",
    "fig14": "requests_per_wall_s",
    "log_space": "records_per_s",
    "log_partitions": "speedup_p4_sim",
    "log_volume": "volume_reduction_p1",
    "instant_restart": "ttfr_speedup_p1",
    "trace_overhead": "overhead_ratio",
    "fleet": "speedup_s4",
}


def run_benchmark_cell(
    name: str,
    scale: float = 1.0,
    repeat: int = 3,
    logging_mode: Optional[str] = None,
) -> dict:
    """Warm up, then run one benchmark cell; the best repeat is kept.

    This is the unit of work a pool worker executes for a parallel
    ``repro bench`` run.  ``logging_mode`` restricts the ``log_volume``
    spectrum to one mode (local iteration); other cells ignore it.
    """
    fn = BENCHMARKS[name]
    if logging_mode is not None and name == "log_volume":
        fn = lambda s: bench_log_volume(s, modes=(logging_mode,))  # noqa: E731
    fn(min(scale, 0.01))  # warmup: import, allocate, JIT-warm caches
    best: Optional[dict] = None
    for _ in range(max(1, repeat)):
        run = fn(scale)
        if best is None or run["seconds"] < best["seconds"]:
            best = run
    return best


def run_benchmarks(
    scale: float = 1.0,
    repeat: int = 3,
    only: Optional[list[str]] = None,
    jobs: Optional[int] = None,
    progress=None,
    logging_mode: Optional[str] = None,
) -> dict:
    """Run the benchmark suite; the best of ``repeat`` runs is reported.

    ``scale`` shrinks iteration counts (smoke mode uses a tiny scale and
    ``repeat=1`` and only asserts completion).  ``jobs`` fans the cells
    across worker processes (``1`` keeps today's in-process loop);
    results are merged in benchmark-name order either way.
    ``progress(done, total, name)`` reports cell completions.
    """
    from repro.parallel import resolve_jobs, run_tasks
    from repro.parallel.tasks import BenchCellSpec, run_bench_cell

    names = only if only is not None else list(BENCHMARKS)
    effective_jobs = resolve_jobs(jobs)
    results: dict[str, dict] = {}
    if effective_jobs == 1 or len(names) <= 1:
        for i, name in enumerate(names):
            results[name] = run_benchmark_cell(
                name, scale=scale, repeat=repeat, logging_mode=logging_mode
            )
            if progress is not None:
                progress(i + 1, len(names), name)
    else:
        specs = [
            BenchCellSpec(name, scale=scale, repeat=repeat, logging_mode=logging_mode)
            for name in names
        ]
        outcomes = run_tasks(
            run_bench_cell,
            specs,
            jobs=effective_jobs,
            progress=(
                None
                if progress is None
                else lambda done, total, outcome: progress(
                    done, total, outcome.spec.name
                )
            ),
        )
        for outcome in outcomes:
            results[outcome.spec.name] = outcome.unwrap()
    return {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "scale": scale,
            "repeat": repeat,
            "jobs": effective_jobs,
            "cpu_count": os.cpu_count(),
        },
        "benchmarks": results,
    }


def attach_baseline(report: dict, baseline: dict) -> None:
    """Embed ``baseline`` and per-metric speedups into ``report``."""
    report["baseline"] = baseline.get("benchmarks", baseline)
    speedups: dict[str, float] = {}
    for name, run in report["benchmarks"].items():
        base = report["baseline"].get(name)
        metric = _HEADLINE.get(name)
        if not base or metric not in base or metric not in run:
            continue
        if base[metric] > 0:
            speedups[name] = run[metric] / base[metric]
    report["speedup"] = speedups


def write_report(report: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


#: Pipeline counters surfaced under each benchmark's headline line:
#: the PR 1 flush-coalescing / decode-cache instrumentation and the
#: PR 4 truncation accounting.
_COUNTER_KEYS = (
    "flush_requests",
    "physical_flushes",
    "coalesced_flushes",
    "decode_cache_hits",
    "decode_cache_misses",
    "truncated_bytes",
    "recycled_segments",
    "live_bytes",
    "trace_events",
)


def format_report(report: dict) -> str:
    lines = []
    for name, run in report["benchmarks"].items():
        metric = _HEADLINE.get(name, "seconds")
        value = run.get(metric, run["seconds"])
        line = f"{name:14s} {metric:18s} {value:14,.1f}"
        speedup = report.get("speedup", {}).get(name)
        if speedup is not None:
            line += f"   ({speedup:.2f}x vs baseline)"
        lines.append(line)
        counters = [f"{key}={run[key]}" for key in _COUNTER_KEYS if key in run]
        if counters:
            lines.append(f"{'':14s} counters: {' '.join(counters)}")
        modes = run.get("modes")
        if modes:
            # The instant-restart cell: one sub-line per (mode, P) run.
            for key, cell in sorted(modes.items()):
                lines.append(
                    f"{'':14s} {key}: ttfr {cell.get('ttfr_ms', 0.0):10,.1f} ms"
                    f"  full {cell.get('full_recovery_ms', 0.0):10,.1f} ms"
                    f"  sessions={cell.get('sessions', 0)}"
                    f"  lazy={cell.get('lazy_recoveries', 0)}"
                    f" (inline={cell.get('inline_recoveries', 0)}"
                    f" pump={cell.get('pump_recoveries', 0)})"
                )
        cells = run.get("cells")
        if cells and name == "fleet":
            # The fleet-scaling cell: one sub-line per shard count,
            # then the determinism probe and the open-loop long run.
            for S, cell in sorted(cells.items(), key=lambda kv: int(kv[0])):
                lines.append(
                    f"{'':14s} S={S}: busy {cell.get('busy_s', 0.0):7.2f} s"
                    f"  critical {cell.get('critical_s', 0.0):7.2f} s"
                    f"  {cell.get('wall_req_per_s', 0.0):10,.0f} req/wall-s"
                    f"  epochs={cell.get('epochs', 0)}"
                    f"  xshard={cell.get('cross_shard_messages', 0)}"
                    f"  clean={cell.get('clean', False)}"
                )
            pool = run.get("pool_s4")
            if pool:
                lines.append(
                    f"{'':14s} pool S=4 jobs=4: wall {pool.get('seconds', 0.0):7.2f} s"
                    f"  {pool.get('wall_req_per_s', 0.0):10,.0f} req/wall-s"
                    f"  deterministic_s4={run.get('deterministic_s4', False)}"
                    f"  (host_cores={run.get('host_cores', 0)})"
                )
            open_loop = run.get("open_loop")
            if open_loop:
                lines.append(
                    f"{'':14s} open_loop: sessions={open_loop.get('sessions', 0):,}"
                    f"  calls={open_loop.get('calls', 0):,}"
                    f"  {open_loop.get('wall_req_per_s', 0.0):10,.0f} req/wall-s"
                    f"  recycled={open_loop.get('recycled_segments', 0)}"
                    f"  live={open_loop.get('live_bytes', 0):,} B"
                    f"  trunc_ok={run.get('open_loop_truncation_ok', False)}"
                )
        elif cells:
            # The partition-scaling cell: one sub-line per partition
            # count, with the per-partition flush counters folded in.
            for P, cell in sorted(cells.items(), key=lambda kv: int(kv[0])):
                lines.append(
                    f"{'':14s} P={P}: sim {cell.get('sim_records_per_s', 0.0):10,.0f} rec/s"
                    f"  flush wait mean {cell.get('flush_wait_mean_ms', 0.0):6.2f} ms"
                    f"  p99 {cell.get('flush_wait_p99_ms', 0.0):6.2f} ms"
                    f"  physical_flushes={cell.get('physical_flushes', 0)}"
                    f"  coalesced={cell.get('coalesced_flushes', 0)}"
                )
        vcells = run.get("volume_cells")
        if vcells:
            # The log-volume spectrum: one sub-line per (mode, P,
            # recovery-mode) cell — bytes/request is the satellite's
            # one-number win — plus the per-kind breakdown underneath.
            for key, cell in sorted(vcells.items()):
                repair = cell.get("recovery_ms", 0.0) + cell.get(
                    "session_replay_ms", 0.0
                )
                lines.append(
                    f"{'':14s} {key}: {cell.get('log_bytes_per_request', 0.0):8,.1f}"
                    f" B/req  repair {repair:9,.1f} sim-ms"
                    f"  replayed={cell.get('replayed_requests', 0)}"
                    f" (cmd={cell.get('replayed_commands', 0)})"
                    f"  switches={cell.get('mode_switches', 0)}"
                )
                kinds = cell.get("record_kinds", {})
                if kinds:
                    breakdown = " ".join(
                        f"{kind}={counts['bytes']}"
                        for kind, counts in sorted(
                            kinds.items(),
                            key=lambda kv: -kv[1]["bytes"],
                        )
                    )
                    lines.append(f"{'':18s} kinds: {breakdown}")
    return "\n".join(lines)
