"""Wall-clock performance benchmarks for the log pipeline.

Unlike :mod:`repro.harness` (which measures *simulated* milliseconds),
these benchmarks measure *real* seconds: how fast the reproduction
itself encodes, frames, appends, flushes, scans and decodes log
records.  They exist so hot-path changes ship with numbers — see
``python -m repro bench`` and ``BENCH_*.json``.
"""

from repro.perf.bench import (
    BENCHMARKS,
    run_benchmark_cell,
    run_benchmarks,
    write_report,
)

__all__ = ["BENCHMARKS", "run_benchmark_cell", "run_benchmarks", "write_report"]
