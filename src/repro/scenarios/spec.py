"""The scenario-matrix grammar: fault family × topology × seed.

A matrix is a small declarative document (YAML or a plain dict):

.. code-block:: yaml

    name: default
    base:              # FleetSpec overrides shared by every cell
      sessions: 40
      duration_ms: 3000.0
    seeds: [7, 8]      # every cell runs once per seed
    topologies:
      - {name: single, msps: 1, domains: 1, shards: 1, chain_depth: 0}
      - {name: fleet,  msps: 4, domains: 2, shards: 2, chain_depth: 1}
    faults:
      - {name: calm,       family: none}
      - {name: crash,      family: crash, at_ms: 1200.0, targets: [0]}
      - {name: rack-loss,  family: correlated, at_ms: 1200.0, targets: [0, 1]}
      - {name: net-split,  family: partition, start_ms: 900.0, end_ms: 1500.0}
      - {name: site-loss,  family: disaster, at_ms: 1100.0, domain: 0}

Expansion is a pure function: each (topology, fault, seed) triple
becomes one :class:`ScenarioCell` whose :class:`~repro.fleet.FleetSpec`
is the complete seed of that cell's simulation.  Fault parameters adapt
to the topology deterministically:

- ``crash`` / ``correlated`` targets are MSP *indices*, reduced modulo
  the topology's MSP count (duplicates collapse — a one-MSP topology
  turns a rack loss into a single crash).
- ``partition`` splits the fleet between even- and odd-indexed domains,
  each side taking its MSPs *and their client machines*; a one-domain
  topology degenerates to clients-vs-servers (the resend protocol's
  blackout case).
- ``disaster`` picks ``domain % domains`` and forces
  ``warm_standby=True`` on the cell.  It also emits a paired
  *cold-baseline* cell — the same MSPs crashed at the same instant with
  no standby — so the report can show what the failover bought.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet import FleetSpec

FAMILIES = ("none", "crash", "correlated", "partition", "disaster")

#: Matrix-level keys that are not FleetSpec overrides.
_MATRIX_KEYS = {"name", "base", "seeds", "topologies", "faults"}

#: Topology keys consumed by the grammar itself (not FleetSpec fields).
_TOPOLOGY_ONLY = {"name"}

#: The committed fallback matrix (used when no YAML file is given);
#: spans all four fault families over both topology shapes.
DEFAULT_MATRIX = {
    "name": "default",
    "base": {
        "sessions": 40,
        "duration_ms": 3000.0,
        "settle_ms": 30000.0,
    },
    "seeds": [7],
    "topologies": [
        {"name": "single", "msps": 1, "domains": 1, "shards": 1,
         "chain_depth": 0},
        {"name": "fleet", "msps": 4, "domains": 2, "shards": 2,
         "chain_depth": 1},
    ],
    "faults": [
        {"name": "calm", "family": "none"},
        {"name": "crash", "family": "crash", "at_ms": 1200.0,
         "targets": [0]},
        {"name": "rack-loss", "family": "correlated", "at_ms": 1200.0,
         "targets": [0, 2]},
        {"name": "net-split", "family": "partition", "start_ms": 900.0,
         "end_ms": 1500.0},
        {"name": "site-loss", "family": "disaster", "at_ms": 1100.0,
         "domain": 1},
    ],
}


@dataclass(frozen=True)
class ScenarioCell:
    """One runnable cell of the expanded matrix."""

    cell_id: str
    family: str
    topology: str
    seed: int
    fleet: FleetSpec
    #: Cell id of the disaster cell this cold-restart baseline pairs
    #: with (None for ordinary cells).
    baseline_of: str | None = None


@dataclass(frozen=True)
class ScenarioSpec:
    """A validated scenario matrix, ready to expand."""

    name: str
    base: tuple = ()  # sorted ((key, value), ...) FleetSpec overrides
    seeds: tuple = (0,)
    topologies: tuple = ()
    faults: tuple = ()

    @classmethod
    def from_dict(cls, doc: dict) -> "ScenarioSpec":
        unknown = sorted(set(doc) - _MATRIX_KEYS)
        if unknown:
            raise ValueError(f"unknown matrix keys: {', '.join(unknown)}")
        name = doc.get("name", "matrix")
        base = doc.get("base", {}) or {}
        fleet_fields = set(FleetSpec.__dataclass_fields__)
        bad = sorted(set(base) - fleet_fields)
        if bad:
            raise ValueError(f"base overrides unknown FleetSpec fields: {bad}")
        topologies = tuple(
            tuple(sorted(t.items())) for t in doc.get("topologies", [])
        )
        if not topologies:
            raise ValueError("matrix needs at least one topology")
        for topo in topologies:
            keys = {k for k, _v in topo}
            if "name" not in keys:
                raise ValueError("every topology needs a name")
            bad = sorted(keys - _TOPOLOGY_ONLY - fleet_fields)
            if bad:
                raise ValueError(
                    f"topology sets unknown FleetSpec fields: {bad}"
                )
        faults = tuple(tuple(sorted(f.items())) for f in doc.get("faults", []))
        if not faults:
            raise ValueError("matrix needs at least one fault entry")
        for entry in faults:
            fdict = dict(entry)
            if fdict.get("family") not in FAMILIES:
                raise ValueError(
                    f"unknown fault family {fdict.get('family')!r} "
                    f"(have {', '.join(FAMILIES)})"
                )
            if "name" not in fdict:
                raise ValueError("every fault entry needs a name")
        seeds = tuple(doc.get("seeds", [0]))
        if not seeds:
            raise ValueError("seeds must be non-empty")
        return cls(
            name=name,
            base=tuple(sorted(base.items())),
            seeds=seeds,
            topologies=topologies,
            faults=faults,
        )

    @classmethod
    def load(cls, path: str) -> "ScenarioSpec":
        import yaml

        with open(path) as fh:
            doc = yaml.safe_load(fh)
        if not isinstance(doc, dict):
            raise ValueError(f"{path}: a scenario matrix must be a mapping")
        return cls.from_dict(doc)

    # -- expansion ---------------------------------------------------------

    def expand(self) -> list[ScenarioCell]:
        """The full cell list, in canonical (topology, fault, seed)
        order; disaster cells are followed by their cold baselines."""
        cells: list[ScenarioCell] = []
        for topo_items in self.topologies:
            topo = dict(topo_items)
            for fault_items in self.faults:
                fault = dict(fault_items)
                for seed in self.seeds:
                    cells.extend(self._cells_for(topo, fault, seed))
        ids = [c.cell_id for c in cells]
        if len(ids) != len(set(ids)):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate cell ids: {', '.join(dupes)}")
        return cells

    def _cells_for(self, topo: dict, fault: dict, seed: int):
        overrides = dict(self.base)
        overrides.update(
            {k: v for k, v in topo.items() if k not in _TOPOLOGY_ONLY}
        )
        overrides["seed"] = seed
        probe = FleetSpec(**overrides)  # shape before fault application
        cell_id = f"{topo['name']}/{fault['name']}/s{seed}"
        family = fault["family"]

        if family == "none":
            yield ScenarioCell(cell_id, family, topo["name"], seed,
                               FleetSpec(**overrides))
            return

        if family in ("crash", "correlated"):
            at = float(fault["at_ms"])
            victims = sorted(
                {f"m{int(i) % probe.msps:03d}" for i in fault["targets"]}
            )
            overrides["crash_plan"] = tuple((at, v) for v in victims)
            yield ScenarioCell(cell_id, family, topo["name"], seed,
                               FleetSpec(**overrides))
            return

        if family == "partition":
            side_a, side_b = _partition_sides(probe)
            overrides["partition_plan"] = (
                (float(fault["start_ms"]), float(fault["end_ms"]),
                 side_a, side_b),
            )
            yield ScenarioCell(cell_id, family, topo["name"], seed,
                               FleetSpec(**overrides))
            return

        # disaster: warm-standby failover plus a paired cold baseline.
        at = float(fault["at_ms"])
        domain = int(fault.get("domain", 0)) % probe.domains
        warm = dict(overrides)
        warm["warm_standby"] = True
        warm["disaster_plan"] = ((at, domain),)
        yield ScenarioCell(cell_id, family, topo["name"], seed,
                           FleetSpec(**warm))
        members = tuple(
            f"m{i:03d}" for i in range(probe.msps)
            if i % probe.domains == domain
        )
        cold = dict(overrides)
        cold["crash_plan"] = tuple((at, m) for m in members)
        yield ScenarioCell(f"{cell_id}-coldbase", "disaster-baseline",
                           topo["name"], seed, FleetSpec(**cold),
                           baseline_of=cell_id)


def _partition_sides(spec: FleetSpec) -> tuple[tuple, tuple]:
    """Deterministic side split for a topology.

    Multi-domain fleets split between even- and odd-indexed domains
    (round-robin placement: ``domain_of(m_i) = i % domains``); a
    one-domain world splits servers from their clients instead, which
    exercises the same blackout machinery through the resend protocol.
    """
    names = [f"m{i:03d}" for i in range(spec.msps)]
    if spec.domains >= 2:
        even = [m for i, m in enumerate(names) if (i % spec.domains) % 2 == 0]
        odd = [m for i, m in enumerate(names) if (i % spec.domains) % 2 == 1]
        side_a = tuple(even + [f"c.{m}" for m in even])
        side_b = tuple(odd + [f"c.{m}" for m in odd])
    else:
        side_a = tuple(names)
        side_b = tuple(f"c.{m}" for m in names)
    return side_a, side_b
