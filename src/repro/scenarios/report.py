"""Render a scenario-matrix report as markdown or standalone HTML.

Both renderers are pure functions of the report dict (which itself
contains no wall-clock data), so the emitted bytes are identical at any
``--jobs`` value — CI diffs the artifacts directly.
"""

from __future__ import annotations

import html as _html

from repro.harness.report import render_table


def _fmt_ms(value) -> str:
    if value is None:
        return "-"
    return f"{value:.3f}"


def _cell_rows(report: dict) -> list[dict]:
    rows = []
    for cell in report["cells"]:
        recovery = cell["recovery"]
        rows.append(
            {
                "cell": cell["cell"],
                "family": cell["family"],
                "topology": cell["topology"],
                "seed": cell["seed"],
                "calls": cell["totals"]["completed_calls"],
                "errors": cell["totals"]["call_errors"],
                "p95_ms": cell["latency_ms"]["p95"],
                "recoveries": recovery.get("n", 0),
                "recovery_p50_ms": recovery.get("p50_ms"),
                "recovery_max_ms": recovery.get("max_ms"),
                "part_drops": cell["dropped_partition"],
                "clean": cell["verdicts"]["clean"],
            }
        )
    return rows


def _family_rows(report: dict) -> list[dict]:
    rows = []
    for family in report["families"]:
        dist = report["family_recovery_ms"][family]
        rows.append(
            {
                "family": family,
                "samples": dist.get("n", 0),
                "min_ms": dist.get("min_ms"),
                "p50_ms": dist.get("p50_ms"),
                "max_ms": dist.get("max_ms"),
            }
        )
    return rows


def _failover_rows(report: dict) -> list[dict]:
    return [
        {
            "cell": check["cell"],
            "msp": check["msp"],
            "failover_ms": check["failover_ms"],
            "cold_restart_ms": check["cold_restart_ms"],
            "faster": check["faster"],
        }
        for check in report["failover_vs_cold"]
    ]


def _invariant_rows(report: dict) -> list[dict]:
    return [
        {
            "invariant": name,
            "checked": slot["checked"],
            "passed": slot["passed"],
            "coverage": f"{slot['passed']}/{slot['checked']}",
        }
        for name, slot in sorted(report["invariants"].items())
    ]


def _code_block(rows: list[dict]) -> list[str]:
    if not rows:
        return ["(no rows)"]
    return ["```", *render_table(rows), "```"]


def render_markdown(report: dict) -> str:
    """The full matrix report as GitHub-flavored markdown."""
    verdicts = report["verdicts"]
    lines = [
        f"# Scenario matrix: {report['matrix']}",
        "",
        f"- cells: {len(report['cells'])}",
        f"- fault families: {', '.join(report['families'])}",
        f"- all cells clean: {'yes' if verdicts['all_clean'] else 'NO'}",
        "- failover beats cold restart: "
        + ("yes" if verdicts["failover_beats_cold"] else "NO"),
        f"- fingerprint: `{report['fingerprint']}`",
        "",
        "## Cells",
        "",
        *_code_block(_cell_rows(report)),
        "",
        "## Recovery-time distribution by fault family (ms)",
        "",
        *_code_block(_family_rows(report)),
    ]
    if report["failover_vs_cold"]:
        lines += [
            "",
            "## Warm-standby failover vs cold restart",
            "",
            *_code_block(_failover_rows(report)),
        ]
    lines += [
        "",
        "## Invariant coverage",
        "",
        *_code_block(_invariant_rows(report)),
    ]
    if report["failing_cells"]:
        lines += ["", "## Failing cells", ""]
        for cell_id in report["failing_cells"]:
            lines.append(f"- `{cell_id}`")
            cell = next(c for c in report["cells"] if c["cell"] == cell_id)
            for violation in cell["violations"]:
                lines.append(f"  - {violation}")
    lines.append("")
    return "\n".join(lines)


def render_html(report: dict) -> str:
    """A standalone HTML page wrapping the same tables."""

    def table(rows: list[dict]) -> str:
        if not rows:
            return "<p>(no rows)</p>"
        cols = list(rows[0].keys())
        for row in rows[1:]:
            for key in row:
                if key not in cols:
                    cols.append(key)
        head = "".join(f"<th>{_html.escape(str(c))}</th>" for c in cols)
        body = []
        for row in rows:
            cells = []
            for col in cols:
                value = row.get(col)
                if isinstance(value, bool):
                    value = "yes" if value else "no"
                elif isinstance(value, float):
                    value = f"{value:.3f}"
                elif value is None:
                    value = "-"
                cells.append(f"<td>{_html.escape(str(value))}</td>")
            body.append("<tr>" + "".join(cells) + "</tr>")
        return (
            "<table><thead><tr>" + head + "</tr></thead><tbody>"
            + "".join(body) + "</tbody></table>"
        )

    verdicts = report["verdicts"]
    status = "PASS" if verdicts["all_clean"] else "FAIL"
    status_class = "pass" if verdicts["all_clean"] else "fail"
    parts = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>Scenario matrix: {_html.escape(report['matrix'])}</title>",
        "<style>",
        "body{font-family:sans-serif;margin:2em;max-width:72em}",
        "table{border-collapse:collapse;margin:1em 0}",
        "th,td{border:1px solid #999;padding:0.25em 0.6em;"
        "text-align:right;font-variant-numeric:tabular-nums}",
        "th{background:#eee}td:first-child,th:first-child{text-align:left}",
        ".pass{color:#070}.fail{color:#b00}",
        "</style></head><body>",
        f"<h1>Scenario matrix: {_html.escape(report['matrix'])} "
        f'<span class="{status_class}">[{status}]</span></h1>',
        f"<p>{len(report['cells'])} cells over families "
        f"{_html.escape(', '.join(report['families']))}; fingerprint "
        f"<code>{report['fingerprint']}</code></p>",
        "<h2>Cells</h2>",
        table(_cell_rows(report)),
        "<h2>Recovery-time distribution by fault family (ms)</h2>",
        table(_family_rows(report)),
    ]
    if report["failover_vs_cold"]:
        parts += [
            "<h2>Warm-standby failover vs cold restart</h2>",
            table(_failover_rows(report)),
        ]
    parts += ["<h2>Invariant coverage</h2>", table(_invariant_rows(report))]
    if report["failing_cells"]:
        parts.append("<h2>Failing cells</h2><ul>")
        for cell_id in report["failing_cells"]:
            cell = next(c for c in report["cells"] if c["cell"] == cell_id)
            issues = "".join(
                f"<li>{_html.escape(v)}</li>" for v in cell["violations"]
            )
            parts.append(
                f"<li><code>{_html.escape(cell_id)}</code>"
                f"<ul>{issues}</ul></li>"
            )
        parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)
