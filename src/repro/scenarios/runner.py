"""Run an expanded scenario matrix under the process pool.

Each cell is one complete fleet run; cells execute concurrently via
``repro.parallel.run_tasks`` (cell order in the report is spec order,
so the report bytes are identical at any ``--jobs`` value).  The cell
record keeps only deterministic fields — wall-clock timing never enters
it — and the matrix fingerprint is a SHA-256 over the canonical JSON of
all cell records, the ``--jobs`` invariance check for the whole matrix.
"""

from __future__ import annotations

import hashlib
import json
from typing import Callable, Optional

from repro.fleet.runner import fleet_fingerprint, run_fleet
from repro.parallel import run_tasks
from repro.parallel.tasks import ScenarioCellSpec, run_scenario_cell
from repro.scenarios.spec import ScenarioCell, ScenarioSpec


def _quantiles(samples: list[float]) -> dict:
    """min/p50/max over a small sample list (nearest-rank p50)."""
    if not samples:
        return {"n": 0}
    ordered = sorted(samples)
    return {
        "n": len(ordered),
        "min_ms": ordered[0],
        "p50_ms": ordered[(len(ordered) - 1) // 2],
        "max_ms": ordered[-1],
    }


def execute_cell(spec: ScenarioCellSpec) -> dict:
    """Run one cell's fleet (jobs=1) and trim the result down to the
    deterministic record the report consumes."""
    result = run_fleet(spec.fleet, jobs=1)
    recovery = result["recovery"]
    standby = {
        name: stats
        for shard in result["shards"]
        for name, stats in sorted(shard.get("standby", {}).items())
    }
    return {
        "cell": spec.cell_id,
        "family": spec.family,
        "topology": spec.topology,
        "seed": spec.seed,
        "baseline_of": spec.baseline_of,
        "verdicts": result["verdicts"],
        "violations": result["violations"],
        "totals": result["totals"],
        "latency_ms": result["latency_ms"],
        "dropped_partition": result["ledger"].get("dropped_partition", 0),
        "recovery_events": recovery,
        "recovery": _quantiles([e["duration_ms"] for e in recovery]),
        "standby": standby,
        "fingerprint": fleet_fingerprint(result),
    }


def run_matrix(
    spec: ScenarioSpec,
    jobs: int = 1,
    progress: Optional[Callable] = None,
    task_timeout_s: Optional[float] = None,
) -> dict:
    """Run every cell; returns the deterministic matrix report dict."""
    cells = spec.expand()
    specs = [
        ScenarioCellSpec(
            cell_id=c.cell_id,
            family=c.family,
            topology=c.topology,
            seed=c.seed,
            fleet=c.fleet,
            baseline_of=c.baseline_of,
        )
        for c in cells
    ]
    outcomes = run_tasks(
        run_scenario_cell,
        specs,
        jobs=jobs,
        task_timeout_s=task_timeout_s,
        progress=progress,
    )
    records = [outcome.unwrap() for outcome in outcomes]
    return build_report(spec, records)


def build_report(spec: ScenarioSpec, records: list[dict]) -> dict:
    """Aggregate cell records into the matrix report (pure function)."""
    by_id = {r["cell"]: r for r in records}

    failover_checks = []
    for record in records:
        target = record.get("baseline_of")
        if not target or target not in by_id:
            continue
        warm = by_id[target]
        warm_events = {e["msp"]: e for e in warm["recovery_events"]}
        cold_events = {e["msp"]: e for e in record["recovery_events"]}
        for msp in sorted(warm_events):
            cold = cold_events.get(msp)
            warm_ms = warm_events[msp]["duration_ms"]
            failover_checks.append(
                {
                    "cell": target,
                    "msp": msp,
                    "failover_ms": warm_ms,
                    "cold_restart_ms": cold["duration_ms"] if cold else None,
                    "faster": bool(cold) and warm_ms < cold["duration_ms"],
                }
            )

    families = sorted({r["family"] for r in records})
    family_recovery = {
        fam: _quantiles(
            [
                e["duration_ms"]
                for r in records
                if r["family"] == fam
                for e in r["recovery_events"]
            ]
        )
        for fam in families
    }

    # Invariant coverage: how many cells exercised and passed each
    # fleet verdict — the report's "coverage trend" row.
    invariants: dict[str, dict] = {}
    for record in records:
        for name, ok in record["verdicts"].items():
            slot = invariants.setdefault(name, {"checked": 0, "passed": 0})
            slot["checked"] += 1
            slot["passed"] += int(bool(ok))

    failing = [r["cell"] for r in records if not r["verdicts"]["clean"]]
    regressions = [
        check for check in failover_checks
        if check["cold_restart_ms"] is not None and not check["faster"]
    ]
    report = {
        "matrix": spec.name,
        "cells": records,
        "families": families,
        "family_recovery_ms": family_recovery,
        "failover_vs_cold": failover_checks,
        "invariants": invariants,
        "verdicts": {
            "all_clean": not failing,
            "failover_beats_cold": not regressions,
        },
        "failing_cells": failing,
    }
    report["fingerprint"] = matrix_fingerprint(report)
    return report


def canonical_report_bytes(report: dict) -> bytes:
    stable = {k: v for k, v in report.items() if k != "fingerprint"}
    return json.dumps(stable, sort_keys=True, separators=(",", ":")).encode()


def matrix_fingerprint(report: dict) -> str:
    return hashlib.sha256(canonical_report_bytes(report)).hexdigest()
