"""Declarative scenario matrices: fault family × topology × workload.

The package turns a small YAML/dict document into a matrix of complete
fleet runs (crash, correlated multi-node crash, network partition,
whole-domain disaster with warm-standby failover — each over several
topologies and seeds), executes the cells under the deterministic
process pool, and renders a fuzzbench-style report with per-cell
invariant verdicts and recovery-time distributions.

- :mod:`repro.scenarios.spec` — the grammar and its expansion rules;
- :mod:`repro.scenarios.runner` — pool execution, aggregation and the
  matrix fingerprint (the ``--jobs`` byte-identity check);
- :mod:`repro.scenarios.report` — markdown / HTML renderers.

Entry point: ``python -m repro scenarios`` (DESIGN.md §18).
"""

from repro.scenarios.report import render_html, render_markdown
from repro.scenarios.runner import (
    build_report,
    canonical_report_bytes,
    matrix_fingerprint,
    run_matrix,
)
from repro.scenarios.spec import (
    DEFAULT_MATRIX,
    FAMILIES,
    ScenarioCell,
    ScenarioSpec,
)

__all__ = [
    "DEFAULT_MATRIX",
    "FAMILIES",
    "ScenarioCell",
    "ScenarioSpec",
    "build_report",
    "canonical_report_bytes",
    "matrix_fingerprint",
    "render_html",
    "render_markdown",
    "run_matrix",
]
