"""Partitioned log sequence numbers (``Plsn``).

The partitioned log addresses records with a ``(partition, offset)``
pair packed into a single int::

    plsn = (partition << OFFSET_BITS) | offset

Partition 0 plsns are numerically identical to raw byte offsets, which
is what keeps a ``--partitions 1`` run bit-identical to the historical
single-log format: every lsn the codec ever wrote was a partition-0
plsn all along.  ``NO_LSN`` (``2**48 - 1``) decodes as partition 0 and
stays a safe sentinel — all code checks for it before treating an lsn
as an address.

Recovered-state *frontiers* generalise the scalar ``recovered_lsn`` of
the single-log design to a per-partition vector of end offsets.  The
encoding is self-describing and backward compatible on the wire:

* a single-partition frontier is the raw offset int (offsets are far
  below ``2**59``), so partitions=1 announcements are byte-identical
  to the historical scalar;
* a multi-partition frontier packs the per-partition ends into one
  int above a tag bit at ``2**59`` so old scalars and new vectors
  never collide.
"""

from __future__ import annotations

from typing import Sequence

#: Bits reserved for the byte offset within one partition's store.
OFFSET_BITS = 48
OFFSET_MASK = (1 << OFFSET_BITS) - 1

#: Frontier values below this are plain single-partition offsets.
_FRONTIER_TAG = 1 << 59


def make_plsn(partition: int, offset: int) -> int:
    """Pack ``(partition, offset)`` into a plsn int."""
    if partition == 0:
        return offset
    return (partition << OFFSET_BITS) | offset


def plsn_partition(plsn: int) -> int:
    """The partition index a plsn addresses."""
    return plsn >> OFFSET_BITS


def plsn_offset(plsn: int) -> int:
    """The byte offset within the partition's store."""
    return plsn & OFFSET_MASK


def encode_frontier(ends: Sequence[int]) -> int:
    """Pack per-partition end offsets into one wire int.

    Single-partition frontiers stay raw scalars for backward
    compatibility; vectors are tagged above ``2**59``.
    """
    if len(ends) == 1:
        return ends[0]
    packed = 0
    for i, end in enumerate(ends):
        packed |= end << (OFFSET_BITS * i)
    payload = (packed << 8) | len(ends)
    return _FRONTIER_TAG | (payload << 60)


def is_frontier(value: int) -> bool:
    """True when ``value`` is a tagged multi-partition frontier (as
    opposed to a scalar offset or plsn, which stay below the tag)."""
    return value >= _FRONTIER_TAG


def decode_frontier(value: int) -> tuple[int, ...]:
    """Inverse of :func:`encode_frontier`."""
    if value < _FRONTIER_TAG:
        return (value,)
    payload = value >> 60
    count = payload & 0xFF
    packed = payload >> 8
    return tuple(
        (packed >> (OFFSET_BITS * i)) & OFFSET_MASK for i in range(count)
    )
