"""Service method execution contexts.

A service method is a generator function ``method(ctx, argument)``; it
touches the world only through its context.  Two implementations share
the interface:

- :class:`NormalContext` — live execution: shared-variable access with
  locks and value logging (paper Fig. 8), outgoing calls with the
  resend-until-reply protocol and the Fig. 7 message actions.
- :class:`ReplayContext` — logged-request replay (paper §4.1): session
  variables behave normally, shared-variable reads come from the log,
  writes are skipped, outgoing requests are not sent and their replies
  come from the log.  When the log runs out — or an orphan log record is
  found (EOS is written) — the context *switches to normal execution
  mid-method* and the remaining operations run live, exactly the
  paper's "continues the action occurring at recovery end".

Because both contexts present the same API, the business code cannot
tell whether it is being replayed — the recovery infrastructure is
transparent to middleware programs, one of the paper's headline claims.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.log_manager import LogWindowReader
from repro.core.errors import OrphanDetected, SessionProtocolError
from repro.core.messages import Reply, Request
from repro.core.records import (
    CommandRecord,
    EosRecord,
    ReplyRecord,
    RequestRecord,
    SvOrderRecord,
    SvReadRecord,
    SvUpdateRecord,
    SvWriteRecord,
)
from repro.core.dv import StateId
from repro.sim import SimTimeoutError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.msp import MiddlewareServer
    from repro.core.session import Session

#: How long a client/session sleeps after a busy reply (paper §5.4).
BUSY_RETRY_SLEEP_MS = 100.0


class NormalContext:
    """Live execution context (paper Figs. 7 and 8)."""

    is_replay = False

    def __init__(self, msp: "MiddlewareServer", session: "Session"):
        self.msp = msp
        self.session = session
        #: Command logging (DESIGN.md §16): fixed at construction, i.e.
        #: per request — the adaptive policy only flips the session's
        #: mode between requests, so one request never mixes regimes.
        self.command_request = msp.recoverable and session.logging_mode == "command"
        #: Per-variable count of this command's RMW applies — the
        #: ordinal half of the frontier pair.
        self._command_ordinals: dict[str, int] = {}

    @property
    def session_id(self) -> str:
        return self.session.id

    # -- CPU -----------------------------------------------------------------

    def compute(self, ms: float):
        """Consume ``ms`` of business-logic CPU (generator)."""
        yield from self.msp.cpu(ms)

    # -- session variables (private, never logged) ------------------------------

    def get_session_var(self, name: str):
        """Read a session variable (generator; returns bytes or None)."""
        yield from self.msp.cpu(self.msp.config.costs.session_var_ms)
        return self.session.variables.get(name)

    def set_session_var(self, name: str, value: bytes):
        """Write a session variable (generator)."""
        yield from self.msp.cpu(self.msp.config.costs.session_var_ms)
        self.session.variables[name] = bytes(value)

    # -- shared variables (paper Fig. 8) ------------------------------------------

    def read_shared(self, name: str):
        """Read a shared variable (generator; returns its bytes)."""
        msp, session = self.msp, self.session
        sv = msp.shared_variable(name)
        if not msp.recoverable:
            yield from sv.lock.acquire_read()
            try:
                yield from msp.cpu(msp.config.costs.session_var_ms)
                return sv.value
            finally:
                sv.lock.release_read()

        if msp.config.sv_logging == "access-order":
            value = yield from self._read_shared_access_order(sv)
            return value

        yield from sv.lock.acquire_read()
        write_locked = False
        try:
            if sv.is_orphan(msp.table):
                # Roll the variable back ourselves (value logging makes
                # this possible without waiting on other sessions —
                # the §3.3 deadlock-avoidance argument).  Upgrade to an
                # exclusive lock first.
                sv.lock.release_read()
                yield from sv.lock.acquire_write()
                write_locked = True
                if sv.is_orphan(msp.table):
                    msp.stats.sv_rollbacks += 1
                    yield from sv.roll_back(msp.log, msp.table)
            record = SvReadRecord(
                session_id=session.id,
                variable=name,
                value=sv.value,
                variable_dv=sv.dv.copy(),
            )
            yield from msp.append_session_record(session, record)
            yield from msp.cpu(msp.config.costs.dv_track_ms)
            session.dv.merge(sv.dv)
            value = sv.value
        finally:
            if write_locked:
                sv.lock.release_write()
            else:
                sv.lock.release_read()
        msp.check_session_orphan(session)
        return value

    def write_shared(self, name: str, value: bytes):
        """Write a shared variable (generator)."""
        msp, session = self.msp, self.session
        sv = msp.shared_variable(name)
        if msp.recoverable and msp.config.sv_logging == "access-order":
            yield from self._write_shared_access_order(sv, value)
            return
        yield from self._acquire_sealed(sv)
        try:
            if not msp.recoverable:
                yield from msp.cpu(msp.config.costs.session_var_ms)
                sv.value = bytes(value)
                return
            # No orphan check of the existing value: it is being
            # replaced (paper §3.3).
            record = SvWriteRecord(
                session_id=session.id,
                variable=name,
                value=bytes(value),
                writer_dv=session.dv.copy(),
                prev_write_lsn=sv.last_write_lsn,
            )
            lsn, _size = yield from msp.append_write_record(session, record)
            yield from msp.cpu(msp.config.costs.dv_track_ms)
            sv.apply_write(lsn, value, session.dv)
        finally:
            sv.lock.release_write()
        if (
            msp.recoverable
            and sv.writes_since_ckpt >= msp.config.sv_ckpt_write_threshold
        ):
            from repro.core.checkpoint import sv_checkpoint

            yield from sv_checkpoint(msp, sv)
        msp.check_session_orphan(session)

    def _acquire_sealed(self, sv):
        """Acquire the write lock with the regime barrier (DESIGN.md
        §16): a value-logged write on a variable carrying unlogged
        command effects must checkpoint it first.  The logged record's
        value would embed those effects, and the recovery scan installs
        logged values *before* commands re-execute — the checkpoint's
        frontier is what makes the re-apply a no-op instead of a double
        application.  Checked under the lock (only lock holders set the
        flag), released and retried around the checkpoint."""
        msp = self.msp
        while True:
            yield from sv.lock.acquire_write()
            if not (msp.recoverable and sv.uncaptured_commands):
                return
            sv.lock.release_write()
            from repro.core.checkpoint import sv_checkpoint

            yield from sv_checkpoint(msp, sv)

    def _await_variable_recovered(self, sv):
        """Access-order mode: block while the variable is still being
        reconstructed by replaying sessions (paper §3.3's coupling)."""
        while sv.reconstructing:
            yield 0.5

    def _read_shared_access_order(self, sv):
        """Log only the write version observed; concurrent reads of the
        same version commute, so the shared read lock suffices."""
        msp, session = self.msp, self.session
        yield from self._await_variable_recovered(sv)
        yield from sv.lock.acquire_read()
        try:
            record = SvOrderRecord(
                session_id=session.id, variable=sv.name,
                version=sv.write_seq, is_write=False,
            )
            yield from msp.append_session_record(session, record)
            return sv.value
        finally:
            sv.lock.release_read()

    def _write_shared_access_order(self, sv, value: bytes):
        msp, session = self.msp, self.session
        yield from self._await_variable_recovered(sv)
        yield from sv.lock.acquire_write()
        try:
            record = SvOrderRecord(
                session_id=session.id, variable=sv.name,
                version=sv.write_seq + 1, is_write=True,
            )
            yield from msp.append_write_record(session, record)
            sv.write_seq += 1
            sv.value = bytes(value)
        finally:
            sv.lock.release_write()

    def _update_shared_access_order(self, sv, update):
        msp, session = self.msp, self.session
        yield from self._await_variable_recovered(sv)
        yield from sv.lock.acquire_write()
        try:
            record = SvOrderRecord(
                session_id=session.id, variable=sv.name,
                version=sv.write_seq + 1, is_write=True,
            )
            yield from msp.append_session_record(session, record)
            sv.write_seq += 1
            sv.value = bytes(update(sv.value))
            return sv.value
        finally:
            sv.lock.release_write()

    def update_shared(self, name: str, update):
        """Atomic read-modify-write of a shared variable (generator).

        A small extension over the paper's per-access locks: the read
        and the write happen under one write-lock span, so concurrent
        sessions cannot lose updates.  ``update`` must be a pure
        function ``bytes -> bytes``.  The RMW is captured as a single
        :class:`SvUpdateRecord` so replay consumes it atomically (a lost
        record re-executes the whole RMW live).  Returns the new value.
        """
        msp, session = self.msp, self.session
        sv = msp.shared_variable(name)
        if msp.recoverable and msp.config.sv_logging == "access-order":
            value = yield from self._update_shared_access_order(sv, update)
            return value
        if self.command_request:
            value = yield from self._update_shared_command(sv, update)
            return value
        yield from self._acquire_sealed(sv)
        try:
            if not msp.recoverable:
                yield from msp.cpu(msp.config.costs.session_var_ms)
                sv.value = bytes(update(sv.value))
                return sv.value
            if sv.is_orphan(msp.table):
                msp.stats.sv_rollbacks += 1
                yield from sv.roll_back(msp.log, msp.table)
            old_value = sv.value
            variable_dv = sv.dv.copy()
            new_value = bytes(update(old_value))
            # One combined record: the read part (old value + the
            # variable's DV, the RMW's nondeterministic input) and the
            # write part (new value, chain link).  The writer DV stored
            # is the session DV *after* merging the variable's — exactly
            # the dependency set the new value carries.
            merged_dv = session.dv.copy()
            merged_dv.merge(variable_dv)
            record = SvUpdateRecord(
                session_id=session.id,
                variable=name,
                old_value=old_value,
                new_value=new_value,
                variable_dv=variable_dv,
                writer_dv=merged_dv,
                prev_write_lsn=sv.last_write_lsn,
            )
            lsn, size = yield from msp.append_session_record(session, record)
            if msp.adaptive_mode:
                # What command logging would have elided — the policy's
                # log-volume upside for this session.
                session.elidable_bytes_since_eval += size
            yield from msp.cpu(2 * msp.config.costs.dv_track_ms)
            session.dv.merge(variable_dv)
            sv.apply_write(lsn, new_value, session.dv)
        finally:
            sv.lock.release_write()
        if (
            msp.recoverable
            and sv.writes_since_ckpt >= msp.config.sv_ckpt_write_threshold
        ):
            from repro.core.checkpoint import sv_checkpoint

            yield from sv_checkpoint(msp, sv)
        msp.check_session_orphan(session)
        return new_value

    def _update_shared_command(self, sv, update):
        """Command-mode RMW (DESIGN.md §16): apply without logging.

        The command record already logged the request; recovery
        re-executes the handler, so this RMW needs no record of its own
        — the whole log-volume win.  The contract: ``update`` must be
        deterministic, commutative across sessions, and its return value
        must not feed state the client can observe exactly-once (replay
        may re-compute it against a later value).
        """
        msp, session = self.msp, self.session
        ordinal = self._command_ordinals.get(sv.name, 0)
        self._command_ordinals[sv.name] = ordinal + 1
        # The session checkpoint must seal this variable before it
        # truncates the stream holding our command record.
        session.command_touched.add(sv.name)
        yield from sv.lock.acquire_write()
        try:
            if sv.is_orphan(msp.table):
                msp.stats.sv_rollbacks += 1
                yield from sv.roll_back(msp.log, msp.table)
            new_value = bytes(update(sv.value))
            yield from msp.cpu(2 * msp.config.costs.dv_track_ms)
            session.dv.merge(sv.dv)
            sv.apply_command_write(
                session.command_lsn, ordinal, new_value, session.dv, session.id
            )
        finally:
            sv.lock.release_write()
        if sv.writes_since_ckpt >= msp.config.sv_ckpt_write_threshold:
            from repro.core.checkpoint import sv_checkpoint

            yield from sv_checkpoint(msp, sv)
        msp.check_session_orphan(session)
        return new_value

    # -- outgoing calls (paper Fig. 7) ----------------------------------------------

    def call(self, target_msp: str, method: str, argument: bytes):
        """Synchronous RPC to another MSP (generator; returns reply bytes).

        Retries with the same sequence number until a reply arrives —
        the server deduplicates, so the call executes exactly once.
        """
        msp, session = self.msp, self.session
        call_started = msp.sim.now
        out = session.outgoing_to(target_msp)
        seq = out.next_seq
        reply_port = f"reply:{out.session_id}"
        inbox = msp.node.bind(reply_port)
        request = Request(
            session_id=out.session_id,
            seq=seq,
            method=method,
            argument=bytes(argument),
            reply_to=msp.name,
            reply_port=reply_port,
        )
        while True:
            msp.check_session_orphan(session)
            # Fig. 7 "before send".
            if msp.recoverable:
                if msp.domains.same_domain(msp.name, target_msp):
                    yield from msp.cpu(msp.config.costs.dv_track_ms)
                    request.sender_dv = session.dv.copy()
                else:
                    yield from msp.distributed_flush(session.dv, f"session {session.id}")
                    request.sender_dv = None
            yield from msp.cpu(msp.config.costs.message_stack_ms)
            msp.send(target_msp, "request", request)
            reply = yield from _await_reply(msp, inbox, seq)
            if reply is None:
                continue  # lost request/reply or crashed server: resend
            yield from msp.cpu(msp.config.costs.message_stack_ms)
            if reply.busy:
                yield BUSY_RETRY_SLEEP_MS
                continue
            # Fig. 7 "after receive".
            if msp.recoverable:
                if reply.sender_dv is not None:
                    reply.sender_dv.prune_resolved(msp.table)
                    if msp.table.is_orphan(reply.sender_dv):
                        # Orphan message: discard and stop; the sender's
                        # MSP will recover it, and our resend will fetch
                        # a consistent reply.
                        msp.stats.orphan_messages_discarded += 1
                        yield BUSY_RETRY_SLEEP_MS
                        continue
                record = ReplyRecord(
                    session_id=session.id,
                    outgoing_session_id=out.session_id,
                    seq=seq,
                    payload=reply.payload,
                    sender_dv=reply.sender_dv,
                )
                yield from msp.append_session_record(session, record)
                if reply.sender_dv is not None:
                    yield from msp.cpu(msp.config.costs.dv_track_ms)
                    session.dv.merge(reply.sender_dv)
                msp.check_session_orphan(session)
            out.next_seq = seq + 1
            if msp.adaptive_mode:
                # The round trip vanishes at replay (replies come from
                # the log); keep it out of the replay-cost estimate.
                session.call_ms_accum += msp.sim.now - call_started
            return reply.payload


def _await_reply(msp: "MiddlewareServer", inbox, seq: int):
    """Wait one resend-timeout window for the reply to ``seq``,
    draining stale duplicate replies; returns the reply or None."""
    deadline = msp.sim.now + msp.config.call_resend_timeout_ms
    while True:
        remaining = deadline - msp.sim.now
        if remaining <= 0:
            return None
        try:
            envelope = yield from inbox.get_with_timeout(remaining)
        except SimTimeoutError:
            return None
        reply: Reply = envelope.payload
        if reply.seq != seq:
            continue  # stale duplicate of an earlier reply
        return reply


class OrphanRecordFound(Exception):
    """Internal: replay hit the orphan log record (paper §4.1)."""

    def __init__(self, lsn: int):
        self.lsn = lsn
        super().__init__(f"orphan log record at LSN {lsn}")


class ReplayCursor:
    """Walks a session's position stream through a 64 KB read window."""

    def __init__(self, msp: "MiddlewareServer", positions: list[int]):
        self.msp = msp
        self.positions = positions
        self.index = 0
        self._reader = LogWindowReader(msp.log, durable_only=False)

    def has_next(self) -> bool:
        return self.index < len(self.positions)

    def fetch_next(self):
        """Read the next record (generator; returns ``(lsn, record)``).

        Checks the record's logged DV against current recovery knowledge
        and raises :class:`OrphanRecordFound` when the record turns out
        to be the orphan log record.
        """
        lsn = self.positions[self.index]
        record = yield from self._reader.fetch(lsn)
        dv = None
        if isinstance(record, (RequestRecord, CommandRecord, ReplyRecord)):
            dv = record.sender_dv
        elif isinstance(record, (SvReadRecord, SvUpdateRecord)):
            dv = record.variable_dv
        # SvWriteRecords carry the writer's own DV for the *variable's*
        # recovery; they never orphan the session (paper §4.1 lists only
        # requests, replies and shared-variable reads).
        if dv is not None:
            dv.prune_resolved(self.msp.table)
            if self.msp.table.is_orphan(dv):
                raise OrphanRecordFound(lsn)
        self.index += 1
        return lsn, record


class ReplayContext:
    """Replay-mode context; transparently switches to normal mid-method."""

    def __init__(self, msp: "MiddlewareServer", session: "Session", cursor: ReplayCursor):
        self.msp = msp
        self.session = session
        self.cursor = cursor
        self._normal: Optional[NormalContext] = None
        #: Per-request command state (DESIGN.md §16), reset by the
        #: replay driver for each logged request: True while replaying a
        #: CommandRecord (RMWs re-execute against the variable instead
        #: of consuming SvUpdate records), plus the per-variable apply
        #: ordinals for the frontier pairs.
        self.command_request = False
        self._command_ordinals: dict[str, int] = {}

    @property
    def is_replay(self) -> bool:
        return self._normal is None

    @property
    def switched(self) -> bool:
        return self._normal is not None

    @property
    def session_id(self) -> str:
        return self.session.id

    def _switch_to_normal(self) -> NormalContext:
        if self._normal is None:
            self._normal = NormalContext(self.msp, self.session)
            # A mid-method switch continues the *replayed* request: its
            # logging regime and apply ordinals carry over, whatever
            # mode the session will use for its next fresh request.
            self._normal.command_request = self.command_request
            self._normal._command_ordinals = self._command_ordinals
        return self._normal

    def _next_logged(self):
        """Fetch the next logged record, or None if replay must end.

        Ending happens when the stream is exhausted or when the orphan
        log record is found — in the latter case the EOS record is
        written and the skipped positions dropped, right here.
        """
        if not self.cursor.has_next():
            self._switch_to_normal()
            return None
        try:
            lsn, record = yield from self.cursor.fetch_next()
        except OrphanRecordFound as found:
            yield from write_eos(self.msp, self.session, found.lsn)
            self._switch_to_normal()
            return None
        return lsn, record

    # -- the ServiceContext interface -----------------------------------------

    def compute(self, ms: float):
        yield from self.msp.cpu(ms)

    def get_session_var(self, name: str):
        if self._normal is not None:
            return (yield from self._normal.get_session_var(name))
        yield from self.msp.cpu(self.msp.config.costs.session_var_ms)
        return self.session.variables.get(name)

    def set_session_var(self, name: str, value: bytes):
        if self._normal is not None:
            yield from self._normal.set_session_var(name, value)
            return
        yield from self.msp.cpu(self.msp.config.costs.session_var_ms)
        self.session.variables[name] = bytes(value)

    def _await_write_turn(self, sv, version: int):
        """Access-order replay: a write of ``version`` may re-execute
        once the variable reached ``version - 1`` AND every logged read
        of ``version - 1`` has replayed (read/write conflict order).
        This cross-session waiting is the recovery coupling the paper
        rejects access-order logging for (§3.3)."""
        while sv.write_seq < version - 1 or sv.expected_reads.get(version - 1, 0) > 0:
            yield 0.2
        if sv.write_seq != version - 1:
            raise SessionProtocolError(
                f"access-order divergence on {sv.name!r}: variable at "
                f"write {sv.write_seq}, record expects write {version}"
            )

    def _await_read_turn(self, sv, version: int):
        """A replayed read waits until the variable reaches the version
        it observed during normal execution."""
        while sv.write_seq < version:
            yield 0.2
        if sv.write_seq != version:
            raise SessionProtocolError(
                f"access-order divergence on {sv.name!r}: variable at "
                f"write {sv.write_seq}, read expects {version}"
            )

    def _expect_order_record(self, name: str, is_write: bool):
        nxt = yield from self._next_logged()
        if nxt is None:
            return None
        lsn, record = nxt
        if (
            not isinstance(record, SvOrderRecord)
            or record.variable != name
            or record.is_write is not is_write
        ):
            raise SessionProtocolError(
                f"replay divergence: expected order record for {name!r} "
                f"(write={is_write}), log has {record!r}"
            )
        self.session.state_lsn = lsn
        self.session.dv.observe(self.msp.name, StateId(self.msp.epoch, lsn))
        return record

    def _read_shared_access_order(self, name: str):
        record = yield from self._expect_order_record(name, is_write=False)
        if record is None:
            return (yield from self._normal.read_shared(name))
        sv = self.msp.shared_variable(name)
        yield from self._await_read_turn(sv, record.version)
        value = sv.value
        remaining = sv.expected_reads.get(record.version, 0)
        if remaining > 0:
            sv.expected_reads[record.version] = remaining - 1
        return value

    def _write_shared_access_order(self, name: str, value: bytes):
        record = yield from self._expect_order_record(name, is_write=True)
        if record is None:
            yield from self._normal.write_shared(name, value)
            return
        sv = self.msp.shared_variable(name)
        yield from self._await_write_turn(sv, record.version)
        # Unlike value logging, the replayed write must be APPLIED: the
        # variable is reconstructed by re-execution, not from the log.
        sv.value = bytes(value)
        sv.write_seq = record.version

    def _update_shared_access_order(self, name: str, update):
        record = yield from self._expect_order_record(name, is_write=True)
        if record is None:
            return (yield from self._normal.update_shared(name, update))
        sv = self.msp.shared_variable(name)
        yield from self._await_write_turn(sv, record.version)
        sv.value = bytes(update(sv.value))
        sv.write_seq = record.version
        return sv.value

    def read_shared(self, name: str):
        if self._normal is not None:
            return (yield from self._normal.read_shared(name))
        if self.msp.config.sv_logging == "access-order":
            return (yield from self._read_shared_access_order(name))
        nxt = yield from self._next_logged()
        if nxt is None:
            return (yield from self._normal.read_shared(name))
        lsn, record = nxt
        if not isinstance(record, SvReadRecord) or record.variable != name:
            raise SessionProtocolError(
                f"replay divergence: expected read of {name!r}, log has {record!r}"
            )
        # "Reading a shared variable gets its value from the log" —
        # without touching the live variable or other sessions.
        yield from self.msp.cpu(self.msp.config.costs.dv_track_ms)
        self.session.state_lsn = lsn
        self.session.dv.observe(self.msp.name, StateId(self.msp.epoch, lsn))
        self.session.dv.merge(record.variable_dv)
        return record.value

    def write_shared(self, name: str, value: bytes):
        if self._normal is not None:
            yield from self._normal.write_shared(name, value)
            return
        if self.msp.config.sv_logging == "access-order":
            yield from self._write_shared_access_order(name, value)
            return
        nxt = yield from self._next_logged()
        if nxt is None:
            yield from self._normal.write_shared(name, value)
            return
        _lsn, record = nxt
        if not isinstance(record, SvWriteRecord) or record.variable != name:
            raise SessionProtocolError(
                f"replay divergence: expected write of {name!r}, log has {record!r}"
            )
        # "Writing a shared variable is skipped due to the variable's
        # own separate recovery."

    def update_shared(self, name: str, update):
        """Replay of an atomic read-modify-write.

        Consumes exactly one :class:`SvUpdateRecord`: the read part
        (old value, variable DV) feeds the session's DV exactly as in
        normal execution; the write part is skipped — the variable
        recovers separately.  If the record is missing or orphan, the
        whole RMW re-executes live, atomically.
        """
        if self._normal is not None:
            return (yield from self._normal.update_shared(name, update))
        if self.msp.config.sv_logging == "access-order":
            return (yield from self._update_shared_access_order(name, update))
        if self.command_request:
            return (yield from self._update_shared_command(name, update))
        nxt = yield from self._next_logged()
        if nxt is None:
            return (yield from self._normal.update_shared(name, update))
        lsn, record = nxt
        if not isinstance(record, SvUpdateRecord) or record.variable != name:
            raise SessionProtocolError(
                f"replay divergence: expected update of {name!r}, log has {record!r}"
            )
        yield from self.msp.cpu(2 * self.msp.config.costs.dv_track_ms)
        self.session.state_lsn = lsn
        self.session.dv.observe(self.msp.name, StateId(self.msp.epoch, lsn))
        self.session.dv.merge(record.variable_dv)
        return bytes(update(record.old_value))

    def _update_shared_command(self, name: str, update):
        """Replay of a command-mode RMW (DESIGN.md §16): re-execute.

        No record was logged, so nothing is consumed from the stream;
        the effect is re-derived against the recovered variable.  The
        frontier guard makes the re-execution idempotent: an apply whose
        ``(command lsn, ordinal)`` the variable's recovered frontier
        already covers was captured by a checkpointed or logged value
        and must not be applied twice.
        """
        msp, session = self.msp, self.session
        sv = msp.shared_variable(name)
        ordinal = self._command_ordinals.get(name, 0)
        self._command_ordinals[name] = ordinal + 1
        # Replayed applies count too: the rebuilt session's next
        # checkpoint truncates the stream just the same.
        session.command_touched.add(name)
        yield from sv.lock.acquire_write()
        try:
            if sv.is_orphan(msp.table):
                msp.stats.sv_rollbacks += 1
                yield from sv.roll_back(msp.log, msp.table)
            yield from msp.cpu(2 * msp.config.costs.dv_track_ms)
            session.dv.merge(sv.dv)
            lsn = session.command_lsn
            if (lsn, ordinal) <= sv.command_frontier.get(session.id, (-1, -1)):
                # Captured: the recovered value already includes this
                # apply.  The return value is the current value — the
                # contract forbids feeding it into exactly-once state.
                return bytes(sv.value)
            new_value = bytes(update(sv.value))
            sv.apply_command_write(lsn, ordinal, new_value, session.dv, session.id)
            return new_value
        finally:
            sv.lock.release_write()

    def call(self, target_msp: str, method: str, argument: bytes):
        if self._normal is not None:
            return (yield from self._normal.call(target_msp, method, argument))
        out = self.session.outgoing_to(target_msp)
        nxt = yield from self._next_logged()
        if nxt is None:
            return (yield from self._normal.call(target_msp, method, argument))
        lsn, record = nxt
        if (
            not isinstance(record, ReplyRecord)
            or record.outgoing_session_id != out.session_id
            or record.seq != out.next_seq
        ):
            raise SessionProtocolError(
                f"replay divergence: expected reply seq {out.next_seq} from "
                f"{out.session_id!r}, log has {record!r}"
            )
        # "Requests to other MSPs are not sent, and their reply is read
        # from the log."  Sequence numbers advance exactly as live.
        yield from self.msp.cpu(self.msp.config.costs.dv_track_ms)
        self.session.state_lsn = lsn
        self.session.dv.observe(self.msp.name, StateId(self.msp.epoch, lsn))
        if record.sender_dv is not None:
            self.session.dv.merge(record.sender_dv)
        out.next_seq += 1
        return record.payload


def write_eos(msp: "MiddlewareServer", session: "Session", orphan_lsn: int):
    """Terminate skipping: truncate the stream, write the EOS record.

    Paper §4.1: the EOS points back at the orphan log record; it does
    not need to be flushed — if it is lost, recovery simply skips from
    the orphan record to the log end, which is equally correct.
    """
    session.position_stream.remove_from(orphan_lsn)
    if msp.lazy_mode:
        # Splice the backward chain past the skipped records: the next
        # chained record links to the last *kept* position, so a lazy
        # chain walk never visits the orphaned suffix (DESIGN.md §15).
        from repro.core.records import NO_LSN

        kept = session.position_stream.positions()
        session.chain_lsn = kept[-1] if kept else NO_LSN
    record = EosRecord(session_id=session.id, orphan_lsn=orphan_lsn)
    yield from msp.cpu(msp.config.costs.log_append_ms)
    _lsn, size = msp.log.append(record)
    session.bytes_since_ckpt += size
