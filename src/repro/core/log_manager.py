"""The MSP's shared physical log (paper §1.3, §3.1, §5.5; DESIGN.md §14).

All sessions of an MSP write to one logical log, which lowers amortized
flush overhead but requires position streams for per-session extraction
(see :mod:`repro.core.position_stream`).  The log manager owns:

- appending framed, byte-encoded records (LSN = a plsn: the partition
  index packed above the logical byte offset of the record's frame —
  see :mod:`repro.core.plsn`);
- the flush pipeline — one flusher daemon per partition serializes that
  partition's disk writes; with *batch flushing* enabled (paper §5.5),
  a flush request waits a timeout window so several requests are served
  with a single write;
- the log anchor (paper §3.4), a dedicated block on the control
  partition holding the LSN of the most recent MSP checkpoint;
- timed reads for recovery (64 KB chunks, paper §5.4) and for normal-
  execution rollbacks.

With ``partitions > 1`` the log is split across N segmented stores,
each with its own disk and group-commit flusher: session streams hash
to a partition by session id, control records (checkpoints, recovery
announcements) go to partition 0, and appends on different partitions
never serialize against each other.  At ``partitions=1`` every plsn is
a raw offset and the behaviour (bytes, probes, counters) is identical
to the historical single-log manager.

Sector accounting follows §5.2: each flush writes whole sectors and the
next flush starts at a fresh sector boundary, wasting on average half a
sector per flush — fewer flushes therefore also waste less log space.
"""

from __future__ import annotations

import math
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.core.plsn import make_plsn, plsn_offset, plsn_partition
from repro.core.records import KIND_FILLER, FillerRecord, LogRecord, decode_record
from repro.sim import ProcessGroup, Simulator, Store
from repro.storage import Disk, LogTruncatedError, StableStore
from repro.storage.disk import SECTOR_BYTES
from repro.wire import frame, unframe
from repro.wire.framing import _HEADER

#: The per-partition counter names tracked in ``LogStats.partitions``.
PARTITION_STAT_FIELDS = (
    "appends",
    "appended_bytes",
    "flush_requests",
    "physical_flushes",
    "flushed_bytes",
    "truncations",
    "truncated_bytes",
    "live_bytes",
)


@dataclass
class LogStats:
    """Counters for the experiment reports."""

    appended_records: int = 0
    appended_bytes: int = 0
    flush_requests: int = 0
    physical_flushes: int = 0
    flushed_bytes: int = 0
    flushed_sectors: int = 0
    wasted_bytes: int = 0
    read_chunks: int = 0
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0
    #: Log-space reclamation (checkpoint-driven truncation).
    truncations: int = 0
    truncated_bytes: int = 0
    recycled_segments: int = 0
    #: Bytes held in retained segments at the last truncation point —
    #: the quantity the ``log_space`` benchmark shows stays
    #: O(checkpoint interval) instead of O(run length).
    live_bytes: int = 0
    #: Per-partition counter breakdown, ``partition -> {field -> n}``.
    partitions: dict = field(default_factory=dict)

    def snapshot(self) -> "LogStats":
        data = dict(vars(self))
        data["partitions"] = {
            index: dict(counters) for index, counters in self.partitions.items()
        }
        return LogStats(**data)

    def partition(self, index: int) -> dict:
        """The (lazily created) counter dict for one partition."""
        counters = self.partitions.get(index)
        if counters is None:
            counters = self.partitions[index] = {
                name: 0 for name in PARTITION_STAT_FIELDS
            }
        return counters

    @property
    def coalesced_flushes(self) -> int:
        """Flush requests served by another request's physical write."""
        return max(0, self.flush_requests - self.physical_flushes)


class _LogPartition:
    """One partition's store, disk, flush queue and decode-cache shard."""

    __slots__ = ("index", "store", "disk", "queue", "cache", "cache_crash_count")

    def __init__(self, index: int, store: StableStore, disk: Disk, queue: Store):
        self.index = index
        self.store = store
        self.disk = disk
        self.queue = queue
        #: Bounded LRU shard of decoded records: ``plsn -> (record,
        #: next_plsn)``.  Shards are per partition so one hot
        #: partition's scan cannot evict another partition's entries.
        self.cache: OrderedDict[int, tuple[LogRecord, int]] = OrderedDict()
        self.cache_crash_count = store.crash_count


class LogManager:
    """Append, flush and read the shared physical log of one MSP."""

    def __init__(
        self,
        sim: Simulator,
        store: Union[StableStore, Sequence[StableStore]],
        disk: Union[Disk, Sequence[Disk]],
        name: str = "log",
        batch_flush_timeout_ms: float = 0.0,
        max_block_sectors: int = 128,
        read_chunk_sectors: int = 128,
        cpu=None,
        flush_cpu_ms: float = 0.0,
        record_overhead_bytes: int = 0,
        decode_cache_records: int = 4096,
        owner: Optional[str] = None,
    ):
        self.sim = sim
        stores = [store] if isinstance(store, StableStore) else list(store)
        disks = [disk] if isinstance(disk, Disk) else list(disk)
        if len(stores) != len(disks):
            raise ValueError(
                f"{name}: {len(stores)} stores but {len(disks)} disks"
            )
        self.name = name
        #: Crash-site probe attribution: the name of the MSP whose log
        #: this is (``repro.fuzz`` kills that MSP at probe firings).
        self.owner = owner
        self.batch_flush_timeout_ms = batch_flush_timeout_ms
        self.max_block_sectors = max_block_sectors
        self.read_chunk_sectors = read_chunk_sectors
        #: Optional CPU-charging hook ``cpu(ms) -> generator`` and the
        #: CPU cost of formatting/issuing one physical log write.  With
        #: batch flushing, several flush requests share one write and
        #: therefore one CPU charge — this is why the paper observes
        #: batching "can reduce both CPU and disk utilization
        #: simultaneously" (§5.5).
        self._cpu = cpu
        self.flush_cpu_ms = flush_cpu_ms
        self.record_overhead_bytes = record_overhead_bytes
        self.stats = LogStats()
        self.partitions = [
            _LogPartition(
                i,
                stores[i],
                disks[i],
                Store(sim, name=f"{name}.flush" if i == 0 else f"{name}.flush.p{i}"),
            )
            for i in range(len(stores))
        ]
        self.nparts = len(self.partitions)
        # Aliases for the control partition — the historical
        # single-store surface most callers and tests use.
        self.store = stores[0]
        self.disk = disks[0]
        self._flushers: list = []
        #: Total decode-cache budget, split evenly across the shards.
        self.decode_cache_records = decode_cache_records

    def start(self, group: Optional[ProcessGroup] = None) -> None:
        """Spawn the flusher daemons (kill them via ``group`` on crash)."""
        self._flushers = [
            self.sim.spawn(
                self._flusher_loop(unit),
                name=(
                    f"{self.name}.flusher"
                    if unit.index == 0
                    else f"{self.name}.flusher.p{unit.index}"
                ),
                group=group,
            )
            for unit in self.partitions
        ]

    # -- routing -------------------------------------------------------------

    def partition_of_session(self, session_id: str) -> int:
        """The partition a session's stream records hash to."""
        if self.nparts == 1:
            return 0
        return zlib.crc32(session_id.encode("utf-8")) % self.nparts

    def route(self, record: LogRecord) -> int:
        """The partition ``record`` is appended to.

        Session-stream records hash by session id (a session's whole
        stream shares one partition, so position-stream offsets stay
        comparable); everything else — MSP/SV checkpoints, recovery
        announcements — is control state on partition 0.
        """
        if self.nparts == 1:
            return 0
        session_id = getattr(record, "session_id", None)
        if session_id is None:
            return 0
        return zlib.crc32(session_id.encode("utf-8")) % self.nparts

    # -- appending -----------------------------------------------------------

    def append(self, record: LogRecord) -> tuple[int, int]:
        """Encode, frame and buffer ``record``.

        Returns ``(lsn, framed_size)``; the record is volatile until a
        flush covers it.
        """
        self.sim.probe("log.append", owner=self.owner)
        unit = self.partitions[self.route(record)]
        payload = record.encode()
        framed = frame(payload)
        offset = unit.store.append(framed)
        size = len(framed)
        if self.record_overhead_bytes > 0 and not isinstance(record, FillerRecord):
            filler = frame(FillerRecord(self.record_overhead_bytes).encode())
            unit.store.append(filler)
            size += len(filler)
        self.stats.appended_records += 1
        self.stats.appended_bytes += size
        pstats = self.stats.partition(unit.index)
        pstats["appends"] += 1
        pstats["appended_bytes"] += size
        tracer = self.sim.tracer
        if tracer is not None:
            # Per-kind log-record volume (the §5.5 space accounting).
            kind = record.__class__.__name__
            tracer.metrics.inc(f"log.append.{kind}.records")
            tracer.metrics.inc(f"log.append.{kind}.bytes", size)
        return make_plsn(unit.index, offset), size

    @property
    def end_lsn(self) -> int:
        """Offset just past the last appended control-partition byte."""
        return self.store.end

    @property
    def durable_lsn(self) -> int:
        return self.store.durable_end

    def partition_end(self, index: int) -> int:
        """Offset just past the last appended byte of one partition."""
        return self.partitions[index].store.end

    def partition_ends(self) -> tuple[int, ...]:
        """Every partition's current end offset."""
        return tuple(unit.store.end for unit in self.partitions)

    def is_durable(self, lsn: int) -> bool:
        """Is the *whole record* at ``lsn`` on disk?"""
        unit = self.partitions[plsn_partition(lsn)]
        return self._frame_end_off(unit, plsn_offset(lsn)) <= unit.store.durable_end

    def _frame_end_off(self, unit: _LogPartition, offset: int) -> int:
        (length, _crc) = _HEADER.unpack_from(unit.store.view(offset, _HEADER.size))
        return offset + _HEADER.size + length

    def _frame_end(self, lsn: int) -> int:
        unit = self.partitions[plsn_partition(lsn)]
        return make_plsn(
            unit.index, self._frame_end_off(unit, plsn_offset(lsn))
        )

    # -- the decode cache ------------------------------------------------------

    @property
    def _decode_cache(self) -> OrderedDict:
        """The control partition's cache shard (single-partition compat)."""
        return self.partitions[0].cache

    @property
    def _cache_shard_records(self) -> int:
        """Per-shard LRU capacity: the total budget split evenly."""
        if self.nparts == 1:
            return self.decode_cache_records
        return max(1, self.decode_cache_records // self.nparts)

    def _cache_sync(self, unit: _LogPartition) -> None:
        if unit.cache_crash_count != unit.store.crash_count:
            unit.cache.clear()
            unit.cache_crash_count = unit.store.crash_count

    def _cache_get(self, unit: _LogPartition, lsn: int) -> Optional[tuple[LogRecord, int]]:
        self._cache_sync(unit)
        entry = unit.cache.get(lsn)
        if entry is not None:
            unit.cache.move_to_end(lsn)
        return entry

    def _cache_put(
        self, unit: _LogPartition, lsn: int, record: LogRecord, next_lsn: int
    ) -> None:
        self._cache_sync(unit)
        cache = unit.cache
        cache[lsn] = (record, next_lsn)
        cache.move_to_end(lsn)
        while len(cache) > self._cache_shard_records:
            cache.popitem(last=False)

    # -- flushing --------------------------------------------------------------

    def _flush_target(self, unit: _LogPartition, offset: int) -> int:
        """The durable boundary a flush of the record at ``offset`` must reach.

        With per-record overhead modeled, every non-filler record is
        immediately followed by its filler frame; flushing through the
        filler keeps ``append``'s reported size and the durable boundary
        in agreement (sector accounting would otherwise undercount the
        final record's footprint).
        """
        target = self._frame_end_off(unit, offset)
        if self.record_overhead_bytes > 0 and target + _HEADER.size <= unit.store.end:
            view = unit.store.view(target, _HEADER.size + 1)
            length, _crc = _HEADER.unpack_from(view)
            filler_end = target + _HEADER.size + length
            if length > 0 and view[_HEADER.size] == KIND_FILLER and filler_end <= unit.store.end:
                target = filler_end
        return target

    def flush(self, upto_lsn: Optional[int] = None):
        """Make the log durable at least through ``upto_lsn`` (generator).

        ``None`` flushes everything appended so far on *every*
        partition; an lsn flushes its own partition through the record.
        Returns once the target is durable; several callers may be
        satisfied by a single physical write (group commit), and with
        batch flushing enabled the flusher waits a timeout window first.
        """
        self.stats.flush_requests += 1
        if upto_lsn is None:
            for unit in self.partitions:
                yield from self._flush_unit(unit, unit.store.end)
            return
        unit = self.partitions[plsn_partition(upto_lsn)]
        target = self._flush_target(unit, plsn_offset(upto_lsn))
        yield from self._flush_unit(unit, target)

    def flush_partition(self, index: int):
        """Make one partition durable through its current end (generator).

        This is the distributed-flush leg primitive: a leg needs only
        the partition its DV entry names, not the whole log.
        """
        self.stats.flush_requests += 1
        unit = self.partitions[index]
        yield from self._flush_unit(unit, unit.store.end)

    def _flush_unit(self, unit: _LogPartition, target: int):
        pstats = self.stats.partition(unit.index)
        pstats["flush_requests"] += 1
        if target <= unit.store.durable_end:
            return
        tracer = self.sim.tracer
        started_at = self.sim.now
        done = self.sim.event(name=f"{self.name}.flushed")
        unit.queue.put((target, done))
        yield done
        if tracer is not None:
            # Request-to-durable latency, including batch-window and
            # group-commit queueing — the flush-latency histogram.
            tracer.metrics.observe("log.flush.wait_ms", self.sim.now - started_at)

    def _flusher_loop(self, unit: _LogPartition):
        while True:
            target, done = yield from unit.queue.get()
            waiters = [(target, done)]
            if self.batch_flush_timeout_ms > 0:
                # Batch flushing (paper §5.5): "a request to flush the
                # log is not executed immediately, but rather after a
                # specified timeout, providing a possibility to process
                # several flush requests with a single write."
                yield self.batch_flush_timeout_ms
            # Coalescing fast path: drain everything queued *now* and
            # serve the whole burst with one physical write (group
            # commit).  Without batching this still helps whenever
            # requests arrive while an earlier write holds the disk —
            # the contention the paper's Fig. 17 measures — without
            # delaying a lone request the way the timeout window does.
            while True:
                available, extra = unit.queue.try_get()
                if not available:
                    break
                waiters.append(extra)
            goal = max(t for t, _ in waiters)
            if goal > unit.store.durable_end:
                yield from self._write_out(unit, goal)
            for _t, event in waiters:
                event.trigger(None)

    def _write_out(self, unit: _LogPartition, goal: int):
        """Physically write [durable_end, goal) in <=128-sector blocks."""
        start = unit.store.durable_end
        if goal <= start:
            return
        self.sim.probe("log.flush.begin", owner=self.owner)
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            span = tracer.span(
                "log.write",
                owner=self.owner,
                bytes=goal - start,
                partition=unit.index,
            )
        if self._cpu is not None and self.flush_cpu_ms > 0:
            yield from self._cpu(self.flush_cpu_ms)
        nbytes = goal - start
        sectors = max(1, math.ceil(nbytes / SECTOR_BYTES))
        self.stats.physical_flushes += 1
        self.stats.flushed_bytes += nbytes
        self.stats.flushed_sectors += sectors
        self.stats.wasted_bytes += sectors * SECTOR_BYTES - nbytes
        pstats = self.stats.partition(unit.index)
        pstats["physical_flushes"] += 1
        pstats["flushed_bytes"] += nbytes
        remaining = sectors
        while remaining > 0:
            block = min(remaining, self.max_block_sectors)
            yield from unit.disk.write(block)
            self.sim.probe("log.flush.block", owner=self.owner)
            remaining -= block
        unit.store.mark_durable(goal)
        if span is not None:
            span.end(sectors=sectors)
        self.sim.probe("log.flush.end", owner=self.owner)

    # -- the log anchor ----------------------------------------------------------

    def write_anchor(self, msp_checkpoint_lsn: int):
        """Durably record the most recent MSP checkpoint LSN (generator).

        The anchor lives on the control partition's store — checkpoint
        records are control records, so the anchored lsn is always a
        partition-0 plsn.
        """
        self.store.write_anchor(msp_checkpoint_lsn.to_bytes(8, "big"))
        # Crash between staging and the disk write completing must leave
        # the previous durable anchor in effect (never a torn anchor).
        self.sim.probe("log.anchor.staged", owner=self.owner)
        yield from self.disk.write(1)
        self.store.flush_anchor()
        self.sim.probe("log.anchor.end", owner=self.owner)

    def read_anchor(self) -> Optional[int]:
        """The durable MSP checkpoint LSN, or None if never written."""
        data = self.store.read_anchor()
        if data is None:
            return None
        return int.from_bytes(data, "big")

    # -- reading -----------------------------------------------------------------

    def record_at(
        self, lsn: int, frame_end: Optional[int] = None
    ) -> tuple[LogRecord, int]:
        """Parse the record at ``lsn`` from store bytes (no timing).

        Returns ``(record, next_lsn)``.  Timing is charged separately by
        the read helpers below, which model the 64 KB chunked I/O.
        Decoded records come from the bounded LRU cache when the LSN was
        already parsed this crash epoch (e.g. by the analysis scan).
        Callers that already parsed the frame header (the window reader
        does, for its window check) pass ``frame_end`` — the *offset*
        just past the frame within the lsn's partition — so the header
        is unpacked once per fetch, not twice.
        """
        unit = self.partitions[plsn_partition(lsn)]
        cached = self._cache_get(unit, lsn)
        if cached is not None:
            self.stats.decode_cache_hits += 1
            return cached
        self.stats.decode_cache_misses += 1
        offset = plsn_offset(lsn)
        end = frame_end if frame_end is not None else self._frame_end_off(unit, offset)
        payload, consumed = unframe(unit.store.view(offset, end - offset), 0)
        if payload is None:
            raise ValueError(f"{self.name}: no complete record at LSN {lsn}")
        record = decode_record(payload)
        next_lsn = make_plsn(unit.index, offset + consumed)
        self._cache_put(unit, lsn, record, next_lsn)
        return record, next_lsn

    def scan_durable(self, start: int):
        """Timed sequential scan of one partition's durable log (generator).

        Reads [start, durable_end) of the partition ``start`` addresses
        in ``read_chunk_sectors`` chunks, charging disk time, then
        returns the parsed ``(lsn, record)`` list.  This is the
        single-threaded analysis scan of §4.3; partitioned recovery
        calls it once per partition and merges by dependency order.

        Parsing is zero-copy per segment: one view over each contiguous
        span of the segmented store, frames and payloads sliced out of
        it without intermediate ``bytes`` materialization.  A frame that
        straddles a segment boundary is stitched individually — the only
        copies the scan ever makes.  Decoded records are entered into
        the decode cache so the per-session replay fetches that follow
        the scan do not decode them again.

        A ``start`` below the truncation floor raises
        :class:`LogTruncatedError`: recovery computes its scan start
        from the anchored checkpoint's minimal LSN, which is exactly the
        value the floor advances to, so the scan can never legitimately
        begin in recycled space.
        """
        unit = self.partitions[plsn_partition(start)]
        store = unit.store
        start_off = plsn_offset(start)
        floor = store.truncate_lsn
        if start_off < floor:
            raise LogTruncatedError(
                f"{self.name}: scan start {start_off} below the truncation "
                f"floor {floor}"
            )
        end = store.durable_end
        chunk_bytes = self.read_chunk_sectors * SECTOR_BYTES
        position = start_off
        while position < end:
            size = min(chunk_bytes, end - position)
            yield from unit.disk.read_bytes(size, sequential=True)
            self.stats.read_chunks += 1
            position += size
        records: list[tuple[int, LogRecord]] = []
        # No simulation yields below this point: the views must not be
        # held across an append (see StableStore.view).
        position = start_off
        while position < end:
            span_end = min(end, store.contiguous_end(position))
            view = store.view(position, span_end - position)
            span = span_end - position
            offset = 0
            while offset < span:
                payload, next_offset = unframe(view, offset)
                if payload is None:
                    break
                self._scan_emit(records, unit, position + offset, payload)
                offset = next_offset
            position += offset
            del view
            if position >= end:
                break
            # The next frame straddles the span's end: either it crosses
            # a segment boundary (stitch exactly that frame) or the
            # durable prefix ends mid-frame (the torn tail — stop).
            if position + _HEADER.size > end:
                break
            (length, _crc) = _HEADER.unpack_from(store.view(position, _HEADER.size))
            frame_end = position + _HEADER.size + length
            if frame_end > end:
                break
            payload, _next = unframe(store.view(position, frame_end - position), 0)
            self._scan_emit(records, unit, position, payload)
            position = frame_end
        return records

    def _scan_emit(
        self, records: list, unit: _LogPartition, offset: int, payload
    ) -> None:
        """Decode (or cache-hit) one scanned frame payload into ``records``."""
        lsn = make_plsn(unit.index, offset)
        cached = self._cache_get(unit, lsn)
        if cached is not None:
            self.stats.decode_cache_hits += 1
            record = cached[0]
        else:
            self.stats.decode_cache_misses += 1
            record = decode_record(payload)
            self._cache_put(
                unit, lsn, record,
                make_plsn(unit.index, offset + _HEADER.size + len(payload)),
            )
        records.append((lsn, record))

    # -- truncation ---------------------------------------------------------

    @property
    def truncate_lsn(self) -> int:
        return self.store.truncate_lsn

    def rewind(self, cuts: Sequence[int]) -> None:
        """Discard per-partition suffixes beyond recovery's consistent cut.

        Only partitioned recovery calls this: a durable record whose
        cross-partition dependency was lost is excluded from the
        recovered state, and its bytes must go with it — left on disk,
        a later recovery would rediscover the record after the offsets
        its dependencies named have been reused by new appends.
        """
        for unit, cut in zip(self.partitions, cuts):
            store = unit.store
            if cut < store.end:
                store.rewind(cut)
                self._cache_sync(unit)
                cache = unit.cache
                for lsn in [k for k in cache if plsn_offset(k) >= cut]:
                    del cache[lsn]
        self.stats.live_bytes = sum(u.store.live_bytes for u in self.partitions)
        for unit in self.partitions:
            self.stats.partition(unit.index)["live_bytes"] = unit.store.live_bytes

    def truncate_to(self, floor_lsn: Union[int, Sequence[int]]):
        """Advance the log's truncation floor(s) (generator).

        Called by the MSP checkpoint daemon once the log anchor is
        durable, with the anchored checkpoint's minimal LSN — or, for a
        partitioned log, the per-partition floor vector from
        ``MspCheckpointRecord.partition_floors``.  Safety: the floors
        lower-bound every LSN recovery can touch — session scan starts,
        shared-variable scan starts (backward write chains break at sv
        checkpoints at or above them), EOS back-pointers are only
        compared, never read — so no read below a new floor can ever be
        issued by correct code.

        The yield between the probes is a real crash window: a crash
        after the anchor is durable but before segments are recycled
        must recover exactly like one after recycling (the floor is not
        recovery state — the next checkpoint simply re-truncates).
        """
        if isinstance(floor_lsn, int):
            floors = [(plsn_partition(floor_lsn), plsn_offset(floor_lsn))]
        else:
            floors = list(enumerate(floor_lsn))
        recycled_total = 0
        for index, floor_off in floors:
            recycled_total += yield from self._truncate_unit(
                self.partitions[index], floor_off
            )
        return recycled_total

    def _truncate_unit(self, unit: _LogPartition, floor_off: int):
        store = unit.store
        target = min(floor_off, store.durable_end)
        self.sim.probe("log.truncate.begin", owner=self.owner)
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            span = tracer.span(
                "log.truncate", owner=self.owner, floor=target,
                partition=unit.index,
            )
        # Crash window: anchor durable, segments not yet recycled.
        yield 0.0
        before = store.truncate_lsn
        recycled = store.truncate(target)
        if recycled:
            unit.disk.trim(recycled * store.segment_bytes)
        floor = store.truncate_lsn
        if floor > before:
            # Evict truncated entries: a cached decode below the floor
            # must not outlive the bytes it was decoded from.
            self._cache_sync(unit)
            cache = unit.cache
            for lsn in [k for k in cache if plsn_offset(k) < floor]:
                del cache[lsn]
        self.stats.truncations += 1
        self.stats.truncated_bytes = sum(
            u.store.truncated_bytes for u in self.partitions
        )
        self.stats.recycled_segments = sum(
            u.store.recycled_segments for u in self.partitions
        )
        self.stats.live_bytes = sum(u.store.live_bytes for u in self.partitions)
        pstats = self.stats.partition(unit.index)
        pstats["truncations"] += 1
        pstats["truncated_bytes"] = store.truncated_bytes
        pstats["live_bytes"] = store.live_bytes
        if span is not None:
            span.end(recycled_segments=recycled, live_bytes=store.live_bytes)
        self.sim.probe("log.truncate.end", owner=self.owner)
        return recycled


class LogWindowReader:
    """Chunked reader for replaying a session's scattered log records.

    Session recovery follows the position stream; records are pulled
    through a 64 KB window so "log reads during recovery are larger and
    more efficient than log flushes" (paper §5.4).  A fetch outside the
    current window costs one sequential chunk read.  The window tracks
    one partition at a time — a session's stream lives entirely in its
    own partition, so session replay never thrashes between partitions.
    """

    def __init__(self, log: LogManager, durable_only: bool = True):
        self.log = log
        self.durable_only = durable_only
        self._window_partition = -1
        self._window_start = -1
        self._window_end = -1

    def fetch(self, lsn: int):
        """Return the record at ``lsn`` (generator, charges disk time)."""
        unit = self.log.partitions[plsn_partition(lsn)]
        offset = plsn_offset(lsn)
        limit = unit.store.durable_end if self.durable_only else unit.store.end
        if offset >= limit:
            raise ValueError(f"fetch at {lsn} beyond readable end {limit}")
        floor = unit.store.truncate_lsn
        if offset < floor:
            raise LogTruncatedError(
                f"{self.log.name}: fetch at {lsn} below the truncation "
                f"floor {floor}"
            )
        if self._window_partition != unit.index:
            self._window_partition = unit.index
            self._window_start = self._window_end = -1
        if -1 < self._window_start < floor:
            # The window's low end was recycled by a truncation; its
            # accounting must not pretend those bytes are still readable.
            self._window_start = self._window_end = -1
        frame_end = self.log._frame_end_off(unit, offset)
        # The window is invalid if the record *starts* outside it, or if
        # it starts inside but its frame straddles the window's end — a
        # window capped at an earlier durable limit does not magically
        # cover bytes appended since, so re-read at the current limit
        # rather than parse from a short read.
        if not (self._window_start <= offset and frame_end <= self._window_end):
            chunk = self.log.read_chunk_sectors * SECTOR_BYTES
            size = min(chunk, limit - offset)
            yield from unit.disk.read_bytes(size, sequential=True)
            self.log.stats.read_chunks += 1
            self._window_start = offset
            self._window_end = offset + size
        # The frame end is already known from the window check above;
        # threading it through saves the second header unpack per fetch.
        record, _next = self.log.record_at(lsn, frame_end=frame_end)
        return record
