"""The MSP's single shared physical log (paper §1.3, §3.1, §5.5).

All sessions of an MSP write to one physical log, which lowers amortized
flush overhead but requires position streams for per-session extraction
(see :mod:`repro.core.position_stream`).  The log manager owns:

- appending framed, byte-encoded records (LSN = logical byte offset of
  the record's frame);
- the flush pipeline — a single flusher daemon serializes disk writes;
  with *batch flushing* enabled (paper §5.5), a flush request waits a
  timeout window so several requests are served with a single write;
- the log anchor (paper §3.4), a dedicated block holding the LSN of the
  most recent MSP checkpoint;
- timed reads for recovery (64 KB chunks, paper §5.4) and for normal-
  execution rollbacks.

Sector accounting follows §5.2: each flush writes whole sectors and the
next flush starts at a fresh sector boundary, wasting on average half a
sector per flush — fewer flushes therefore also waste less log space.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from repro.core.records import KIND_FILLER, FillerRecord, LogRecord, decode_record
from repro.sim import ProcessGroup, Simulator, Store
from repro.storage import Disk, LogTruncatedError, StableStore
from repro.storage.disk import SECTOR_BYTES
from repro.wire import frame, unframe
from repro.wire.framing import _HEADER


@dataclass
class LogStats:
    """Counters for the experiment reports."""

    appended_records: int = 0
    appended_bytes: int = 0
    flush_requests: int = 0
    physical_flushes: int = 0
    flushed_bytes: int = 0
    flushed_sectors: int = 0
    wasted_bytes: int = 0
    read_chunks: int = 0
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0
    #: Log-space reclamation (checkpoint-driven truncation).
    truncations: int = 0
    truncated_bytes: int = 0
    recycled_segments: int = 0
    #: Bytes held in retained segments at the last truncation point —
    #: the quantity the ``log_space`` benchmark shows stays
    #: O(checkpoint interval) instead of O(run length).
    live_bytes: int = 0

    def snapshot(self) -> "LogStats":
        return LogStats(**vars(self))

    @property
    def coalesced_flushes(self) -> int:
        """Flush requests served by another request's physical write."""
        return max(0, self.flush_requests - self.physical_flushes)


class LogManager:
    """Append, flush and read the shared physical log of one MSP."""

    def __init__(
        self,
        sim: Simulator,
        store: StableStore,
        disk: Disk,
        name: str = "log",
        batch_flush_timeout_ms: float = 0.0,
        max_block_sectors: int = 128,
        read_chunk_sectors: int = 128,
        cpu=None,
        flush_cpu_ms: float = 0.0,
        record_overhead_bytes: int = 0,
        decode_cache_records: int = 4096,
        owner: Optional[str] = None,
    ):
        self.sim = sim
        self.store = store
        self.disk = disk
        self.name = name
        #: Crash-site probe attribution: the name of the MSP whose log
        #: this is (``repro.fuzz`` kills that MSP at probe firings).
        self.owner = owner
        self.batch_flush_timeout_ms = batch_flush_timeout_ms
        self.max_block_sectors = max_block_sectors
        self.read_chunk_sectors = read_chunk_sectors
        #: Optional CPU-charging hook ``cpu(ms) -> generator`` and the
        #: CPU cost of formatting/issuing one physical log write.  With
        #: batch flushing, several flush requests share one write and
        #: therefore one CPU charge — this is why the paper observes
        #: batching "can reduce both CPU and disk utilization
        #: simultaneously" (§5.5).
        self._cpu = cpu
        self.flush_cpu_ms = flush_cpu_ms
        self.record_overhead_bytes = record_overhead_bytes
        self.stats = LogStats()
        self._flush_queue: Store = Store(sim, name=f"{name}.flush")
        self._flusher: Optional[object] = None
        #: Bounded LRU of decoded records: ``lsn -> (record, next_lsn)``.
        #: The log is append-only and immutable below the durable
        #: boundary, so entries never go stale within a crash epoch; a
        #: crash truncates the volatile tail (new bytes may reuse those
        #: LSNs), so the cache is dropped whenever ``store.crash_count``
        #: moves.  Populated by the analysis scan and ``record_at``, hit
        #: by per-session replay fetches — recovery decodes each record
        #: once instead of twice.
        self.decode_cache_records = decode_cache_records
        self._decode_cache: OrderedDict[int, tuple[LogRecord, int]] = OrderedDict()
        self._cache_crash_count = store.crash_count

    def start(self, group: Optional[ProcessGroup] = None) -> None:
        """Spawn the flusher daemon (kill it via ``group`` on crash)."""
        self._flusher = self.sim.spawn(
            self._flusher_loop(), name=f"{self.name}.flusher", group=group
        )

    # -- appending -----------------------------------------------------------

    def append(self, record: LogRecord) -> tuple[int, int]:
        """Encode, frame and buffer ``record``.

        Returns ``(lsn, framed_size)``; the record is volatile until a
        flush covers it.
        """
        self.sim.probe("log.append", owner=self.owner)
        payload = record.encode()
        framed = frame(payload)
        lsn = self.store.append(framed)
        size = len(framed)
        if self.record_overhead_bytes > 0 and not isinstance(record, FillerRecord):
            filler = frame(FillerRecord(self.record_overhead_bytes).encode())
            self.store.append(filler)
            size += len(filler)
        self.stats.appended_records += 1
        self.stats.appended_bytes += size
        tracer = self.sim.tracer
        if tracer is not None:
            # Per-kind log-record volume (the §5.5 space accounting).
            kind = record.__class__.__name__
            tracer.metrics.inc(f"log.append.{kind}.records")
            tracer.metrics.inc(f"log.append.{kind}.bytes", size)
        return lsn, size

    @property
    def end_lsn(self) -> int:
        """Offset just past the last appended byte."""
        return self.store.end

    @property
    def durable_lsn(self) -> int:
        return self.store.durable_end

    def is_durable(self, lsn: int) -> bool:
        """Is the *whole record* at ``lsn`` on disk?"""
        return self._frame_end(lsn) <= self.store.durable_end

    def _frame_end(self, lsn: int) -> int:
        (length, _crc) = _HEADER.unpack_from(self.store.view(lsn, _HEADER.size))
        return lsn + _HEADER.size + length

    # -- the decode cache ------------------------------------------------------

    def _cache_sync(self) -> None:
        if self._cache_crash_count != self.store.crash_count:
            self._decode_cache.clear()
            self._cache_crash_count = self.store.crash_count

    def _cache_get(self, lsn: int) -> Optional[tuple[LogRecord, int]]:
        self._cache_sync()
        entry = self._decode_cache.get(lsn)
        if entry is not None:
            self._decode_cache.move_to_end(lsn)
        return entry

    def _cache_put(self, lsn: int, record: LogRecord, next_lsn: int) -> None:
        self._cache_sync()
        cache = self._decode_cache
        cache[lsn] = (record, next_lsn)
        cache.move_to_end(lsn)
        while len(cache) > self.decode_cache_records:
            cache.popitem(last=False)

    # -- flushing --------------------------------------------------------------

    def _flush_target(self, upto_lsn: int) -> int:
        """The durable boundary a flush of ``upto_lsn`` must reach.

        With per-record overhead modeled, every non-filler record is
        immediately followed by its filler frame; flushing through the
        filler keeps ``append``'s reported size and the durable boundary
        in agreement (sector accounting would otherwise undercount the
        final record's footprint).
        """
        target = self._frame_end(upto_lsn)
        if self.record_overhead_bytes > 0 and target + _HEADER.size <= self.store.end:
            view = self.store.view(target, _HEADER.size + 1)
            length, _crc = _HEADER.unpack_from(view)
            filler_end = target + _HEADER.size + length
            if length > 0 and view[_HEADER.size] == KIND_FILLER and filler_end <= self.store.end:
                target = filler_end
        return target

    def flush(self, upto_lsn: Optional[int] = None):
        """Make the log durable at least through ``upto_lsn`` (generator).

        ``None`` flushes everything appended so far.  Returns once the
        target is durable; several callers may be satisfied by a single
        physical write (group commit), and with batch flushing enabled
        the flusher waits a timeout window first.
        """
        target = self.store.end if upto_lsn is None else self._flush_target(upto_lsn)
        self.stats.flush_requests += 1
        if target <= self.store.durable_end:
            return
        tracer = self.sim.tracer
        started_at = self.sim.now
        done = self.sim.event(name=f"{self.name}.flushed")
        self._flush_queue.put((target, done))
        yield done
        if tracer is not None:
            # Request-to-durable latency, including batch-window and
            # group-commit queueing — the flush-latency histogram.
            tracer.metrics.observe("log.flush.wait_ms", self.sim.now - started_at)

    def _flusher_loop(self):
        while True:
            target, done = yield from self._flush_queue.get()
            waiters = [(target, done)]
            if self.batch_flush_timeout_ms > 0:
                # Batch flushing (paper §5.5): "a request to flush the
                # log is not executed immediately, but rather after a
                # specified timeout, providing a possibility to process
                # several flush requests with a single write."
                yield self.batch_flush_timeout_ms
            # Coalescing fast path: drain everything queued *now* and
            # serve the whole burst with one physical write (group
            # commit).  Without batching this still helps whenever
            # requests arrive while an earlier write holds the disk —
            # the contention the paper's Fig. 17 measures — without
            # delaying a lone request the way the timeout window does.
            while True:
                available, extra = self._flush_queue.try_get()
                if not available:
                    break
                waiters.append(extra)
            goal = max(t for t, _ in waiters)
            if goal > self.store.durable_end:
                yield from self._write_out(goal)
            for _t, event in waiters:
                event.trigger(None)

    def _write_out(self, goal: int):
        """Physically write [durable_end, goal) in <=128-sector blocks."""
        start = self.store.durable_end
        if goal <= start:
            return
        self.sim.probe("log.flush.begin", owner=self.owner)
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            span = tracer.span("log.write", owner=self.owner, bytes=goal - start)
        if self._cpu is not None and self.flush_cpu_ms > 0:
            yield from self._cpu(self.flush_cpu_ms)
        nbytes = goal - start
        sectors = max(1, math.ceil(nbytes / SECTOR_BYTES))
        self.stats.physical_flushes += 1
        self.stats.flushed_bytes += nbytes
        self.stats.flushed_sectors += sectors
        self.stats.wasted_bytes += sectors * SECTOR_BYTES - nbytes
        remaining = sectors
        while remaining > 0:
            block = min(remaining, self.max_block_sectors)
            yield from self.disk.write(block)
            self.sim.probe("log.flush.block", owner=self.owner)
            remaining -= block
        self.store.mark_durable(goal)
        if span is not None:
            span.end(sectors=sectors)
        self.sim.probe("log.flush.end", owner=self.owner)

    # -- the log anchor ----------------------------------------------------------

    def write_anchor(self, msp_checkpoint_lsn: int):
        """Durably record the most recent MSP checkpoint LSN (generator)."""
        self.store.write_anchor(msp_checkpoint_lsn.to_bytes(8, "big"))
        # Crash between staging and the disk write completing must leave
        # the previous durable anchor in effect (never a torn anchor).
        self.sim.probe("log.anchor.staged", owner=self.owner)
        yield from self.disk.write(1)
        self.store.flush_anchor()
        self.sim.probe("log.anchor.end", owner=self.owner)

    def read_anchor(self) -> Optional[int]:
        """The durable MSP checkpoint LSN, or None if never written."""
        data = self.store.read_anchor()
        if data is None:
            return None
        return int.from_bytes(data, "big")

    # -- reading -----------------------------------------------------------------

    def record_at(
        self, lsn: int, frame_end: Optional[int] = None
    ) -> tuple[LogRecord, int]:
        """Parse the record at ``lsn`` from store bytes (no timing).

        Returns ``(record, next_lsn)``.  Timing is charged separately by
        the read helpers below, which model the 64 KB chunked I/O.
        Decoded records come from the bounded LRU cache when the LSN was
        already parsed this crash epoch (e.g. by the analysis scan).
        Callers that already parsed the frame header (the window reader
        does, for its window check) pass ``frame_end`` so the header is
        unpacked once per fetch, not twice.
        """
        cached = self._cache_get(lsn)
        if cached is not None:
            self.stats.decode_cache_hits += 1
            return cached
        self.stats.decode_cache_misses += 1
        end = frame_end if frame_end is not None else self._frame_end(lsn)
        payload, consumed = unframe(self.store.view(lsn, end - lsn), 0)
        if payload is None:
            raise ValueError(f"{self.name}: no complete record at LSN {lsn}")
        record = decode_record(payload)
        next_lsn = lsn + consumed
        self._cache_put(lsn, record, next_lsn)
        return record, next_lsn

    def scan_durable(self, start: int):
        """Timed sequential scan of the durable log (generator).

        Reads [start, durable_end) in ``read_chunk_sectors`` chunks,
        charging disk time, then returns the parsed ``(lsn, record)``
        list.  This is the single-threaded analysis scan of §4.3.

        Parsing is zero-copy per segment: one view over each contiguous
        span of the segmented store, frames and payloads sliced out of
        it without intermediate ``bytes`` materialization.  A frame that
        straddles a segment boundary is stitched individually — the only
        copies the scan ever makes.  Decoded records are entered into
        the decode cache so the per-session replay fetches that follow
        the scan do not decode them again.

        A ``start`` below the truncation floor raises
        :class:`LogTruncatedError`: recovery computes its scan start
        from the anchored checkpoint's minimal LSN, which is exactly the
        value the floor advances to, so the scan can never legitimately
        begin in recycled space.
        """
        floor = self.store.truncate_lsn
        if start < floor:
            raise LogTruncatedError(
                f"{self.name}: scan start {start} below the truncation "
                f"floor {floor}"
            )
        end = self.store.durable_end
        chunk_bytes = self.read_chunk_sectors * SECTOR_BYTES
        position = start
        while position < end:
            size = min(chunk_bytes, end - position)
            yield from self.disk.read_bytes(size, sequential=True)
            self.stats.read_chunks += 1
            position += size
        records: list[tuple[int, LogRecord]] = []
        # No simulation yields below this point: the views must not be
        # held across an append (see StableStore.view).
        position = start
        while position < end:
            span_end = min(end, self.store.contiguous_end(position))
            view = self.store.view(position, span_end - position)
            span = span_end - position
            offset = 0
            while offset < span:
                payload, next_offset = unframe(view, offset)
                if payload is None:
                    break
                self._scan_emit(records, position + offset, payload)
                offset = next_offset
            position += offset
            del view
            if position >= end:
                break
            # The next frame straddles the span's end: either it crosses
            # a segment boundary (stitch exactly that frame) or the
            # durable prefix ends mid-frame (the torn tail — stop).
            if position + _HEADER.size > end:
                break
            (length, _crc) = _HEADER.unpack_from(self.store.view(position, _HEADER.size))
            frame_end = position + _HEADER.size + length
            if frame_end > end:
                break
            payload, _next = unframe(self.store.view(position, frame_end - position), 0)
            self._scan_emit(records, position, payload)
            position = frame_end
        return records

    def _scan_emit(self, records: list, lsn: int, payload) -> None:
        """Decode (or cache-hit) one scanned frame payload into ``records``."""
        cached = self._cache_get(lsn)
        if cached is not None:
            self.stats.decode_cache_hits += 1
            record = cached[0]
        else:
            self.stats.decode_cache_misses += 1
            record = decode_record(payload)
            self._cache_put(lsn, record, lsn + _HEADER.size + len(payload))
        records.append((lsn, record))

    # -- truncation ---------------------------------------------------------

    @property
    def truncate_lsn(self) -> int:
        return self.store.truncate_lsn

    def truncate_to(self, floor_lsn: int):
        """Advance the log's truncation floor to ``floor_lsn`` (generator).

        Called by the MSP checkpoint daemon once the log anchor is
        durable, with the anchored checkpoint's minimal LSN.  Safety:
        ``min_lsn`` lower-bounds every LSN recovery can touch — session
        scan starts, shared-variable scan starts (backward write chains
        break at sv checkpoints at or above them), EOS back-pointers are
        only compared, never read — so no read below the new floor can
        ever be issued by correct code.

        The yield between the probes is a real crash window: a crash
        after the anchor is durable but before segments are recycled
        must recover exactly like one after recycling (the floor is not
        recovery state — the next checkpoint simply re-truncates).
        """
        target = min(floor_lsn, self.store.durable_end)
        self.sim.probe("log.truncate.begin", owner=self.owner)
        tracer = self.sim.tracer
        span = None
        if tracer is not None:
            span = tracer.span("log.truncate", owner=self.owner, floor=target)
        # Crash window: anchor durable, segments not yet recycled.
        yield 0.0
        before = self.store.truncate_lsn
        recycled = self.store.truncate(target)
        if recycled:
            self.disk.trim(recycled * self.store.segment_bytes)
        floor = self.store.truncate_lsn
        if floor > before:
            # Evict truncated entries: a cached decode below the floor
            # must not outlive the bytes it was decoded from.
            self._cache_sync()
            for lsn in [k for k in self._decode_cache if k < floor]:
                del self._decode_cache[lsn]
        self.stats.truncations += 1
        self.stats.truncated_bytes = self.store.truncated_bytes
        self.stats.recycled_segments = self.store.recycled_segments
        self.stats.live_bytes = self.store.live_bytes
        if span is not None:
            span.end(recycled_segments=recycled, live_bytes=self.store.live_bytes)
        self.sim.probe("log.truncate.end", owner=self.owner)
        return recycled


class LogWindowReader:
    """Chunked reader for replaying a session's scattered log records.

    Session recovery follows the position stream; records are pulled
    through a 64 KB window so "log reads during recovery are larger and
    more efficient than log flushes" (paper §5.4).  A fetch outside the
    current window costs one sequential chunk read.
    """

    def __init__(self, log: LogManager, durable_only: bool = True):
        self.log = log
        self.durable_only = durable_only
        self._window_start = -1
        self._window_end = -1

    def fetch(self, lsn: int):
        """Return the record at ``lsn`` (generator, charges disk time)."""
        limit = self.log.store.durable_end if self.durable_only else self.log.store.end
        if lsn >= limit:
            raise ValueError(f"fetch at {lsn} beyond readable end {limit}")
        floor = self.log.store.truncate_lsn
        if lsn < floor:
            raise LogTruncatedError(
                f"{self.log.name}: fetch at {lsn} below the truncation "
                f"floor {floor}"
            )
        if -1 < self._window_start < floor:
            # The window's low end was recycled by a truncation; its
            # accounting must not pretend those bytes are still readable.
            self._window_start = self._window_end = -1
        frame_end = self.log._frame_end(lsn)
        # The window is invalid if the record *starts* outside it, or if
        # it starts inside but its frame straddles the window's end — a
        # window capped at an earlier durable limit does not magically
        # cover bytes appended since, so re-read at the current limit
        # rather than parse from a short read.
        if not (self._window_start <= lsn and frame_end <= self._window_end):
            chunk = self.log.read_chunk_sectors * SECTOR_BYTES
            size = min(chunk, limit - lsn)
            yield from self.log.disk.read_bytes(size, sequential=True)
            self.log.stats.read_chunks += 1
            self._window_start = lsn
            self._window_end = lsn + size
        # The frame end is already known from the window check above;
        # threading it through saves the second header unpack per fetch.
        record, _next = self.log.record_at(lsn, frame_end=frame_end)
        return record
