"""Exception hierarchy for the recovery infrastructure."""

from __future__ import annotations

# Re-exported here so recovery code can catch it alongside the rest of
# the hierarchy without reaching into the storage layer: a read below
# the log's truncation floor.  Raising it is always a bookkeeping bug —
# the floor only advances to an anchored MSP checkpoint's minimal LSN,
# which lower-bounds every LSN recovery can touch.
from repro.storage.stable import LogTruncatedError

__all__ = [
    "RecoveryError",
    "OrphanDetected",
    "ServiceBusy",
    "SessionProtocolError",
    "FlushFailed",
    "LogTruncatedError",
    "RecoveryMergeError",
]


class RecoveryError(Exception):
    """Base class for recovery-infrastructure errors."""


class OrphanDetected(RecoveryError):
    """A session (or shared variable) was found to depend on lost state.

    Raised at interception points — message send/receive, shared-variable
    access, distributed log flush — to abort the current service method
    execution and hand control to orphan recovery (paper §4.1).
    """

    def __init__(self, subject: str, detail: str = ""):
        self.subject = subject
        self.detail = detail
        super().__init__(f"orphan detected: {subject}" + (f" ({detail})" if detail else ""))


class ServiceBusy(RecoveryError):
    """The server is checkpointing or recovering this session.

    Clients react by sleeping 100 ms and resending (paper §5.4).
    """


class SessionProtocolError(RecoveryError):
    """A violation of the request/reply session protocol."""


class FlushFailed(RecoveryError):
    """A distributed log flush could not cover a dependency — the
    requesting state is an orphan."""


class RecoveryMergeError(RecoveryError):
    """The DV-ordered merge of per-partition recovery scans could not
    order a record after all of its intra-MSP dependencies.

    Raised by the partitioned analysis pass (DESIGN.md §14) when either
    no scanned record has all dependencies applied (a cycle — impossible
    for logs written by correct code) or the post-merge assertion finds
    a record ordered before one of its dependencies."""
