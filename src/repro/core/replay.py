"""Session recovery: logged-request replay (paper §4.1).

The same engine drives both *session orphan recovery* (the session's MSP
is alive but the session depends on lost remote state) and *session
recovery after the crash-recovery scan* (§4.3): re-initialize from the
most recent session checkpoint, then re-execute the logged requests by
following the position stream, feeding each nondeterministic event from
the log through a :class:`~repro.core.context.ReplayContext`.

Multiple concurrent crashes are handled by restarting the pass: if new
recovery knowledge arrives mid-replay and invalidates already-replayed
state, the pass is restarted from the checkpoint and this time stops at
the (now detectable) orphan log record, writes the EOS record and
switches to normal execution — one EOS per crash at most, the invariant
behind the paper's Fig. 11 pair combinations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.context import (
    OrphanRecordFound,
    ReplayContext,
    ReplayCursor,
    write_eos,
)
from repro.core.dv import StateId
from repro.core.errors import SessionProtocolError
from repro.core.log_manager import LogWindowReader
from repro.core.records import CommandRecord, RequestRecord, SessionCheckpointRecord
from repro.core.session import Session, SessionStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.msp import MiddlewareServer


class _RestartReplay(Exception):
    """Internal: fresh recovery knowledge invalidated replayed state."""


def run_session_recovery(msp: "MiddlewareServer", session: Session, orphan: bool):
    """Recover one session to its most recent non-orphan state (generator).

    New requests for the session are bounced with busy replies while it
    runs (status RECOVERING); other sessions keep executing normally —
    the recovery-independence property.
    """
    session.status = SessionStatus.RECOVERING
    tracer = msp.sim.tracer
    span = None
    if tracer is not None:
        span = tracer.span(
            "recovery.session", owner=msp.name, session=session.id, orphan=orphan
        )
    passes = 0
    try:
        while True:
            passes += 1
            try:
                yield from _replay_pass(msp, session)
                break
            except _RestartReplay:
                continue
    finally:
        if span is not None:
            span.end(passes=passes)
        session.status = SessionStatus.NORMAL
        session.recovery_pending = False
    if orphan:
        msp.stats.orphan_recoveries += 1


def _replay_pass(msp: "MiddlewareServer", session: Session):
    # 1. Re-initialize from the most recent session checkpoint.
    if session.last_ckpt_lsn is not None:
        reader = LogWindowReader(msp.log, durable_only=False)
        record = yield from reader.fetch(session.last_ckpt_lsn)
        if not isinstance(record, SessionCheckpointRecord) or record.session_id != session.id:
            raise SessionProtocolError(
                f"bad session checkpoint for {session.id} at {session.last_ckpt_lsn}: {record!r}"
            )
        session.restore_checkpoint(record)
    else:
        session.reset_fresh()

    # 2. Redo recovery: replay logged requests along the position stream.
    cursor = ReplayCursor(msp, list(session.position_stream.positions()))
    ctx = ReplayContext(msp, session, cursor)
    while cursor.has_next() and not ctx.switched:
        try:
            lsn, record = yield from cursor.fetch_next()
        except OrphanRecordFound as found:
            # The orphan log record is a request: skip it and everything
            # after, write EOS, go back to waiting for new requests.
            yield from write_eos(msp, session, found.lsn)
            return
        if not isinstance(record, (RequestRecord, CommandRecord)):
            raise SessionProtocolError(
                f"replay of {session.id}: expected a request record at "
                f"{lsn}, found {record!r}"
            )
        yield from _replay_request(msp, session, ctx, lsn, record)
        # Interception between requests: knowledge that arrived while we
        # replayed may have orphaned what we just rebuilt.
        if not ctx.switched and session.is_orphan(msp.table):
            raise _RestartReplay
    # Stream exhausted (or completed live after a mid-method switch):
    # back to normal execution.


def _replay_request(
    msp: "MiddlewareServer",
    session: Session,
    ctx: ReplayContext,
    lsn: int,
    record: "RequestRecord | CommandRecord",
):
    """Re-execute one logged request (paper §4.1 replay rules)."""
    costs = msp.config.costs
    yield from msp.cpu(costs.replay_dispatch_ms)
    # Command logging (DESIGN.md §16): dispatch per record kind, so a
    # mixed-mode suffix (the adaptive policy switching between requests)
    # replays each request under the regime it was logged with.  The
    # session's live mode tracks along, so post-recovery requests
    # continue in the pre-crash mode.
    is_command = isinstance(record, CommandRecord)
    ctx.command_request = is_command
    ctx._command_ordinals = {}
    session.command_lsn = lsn if is_command else None
    session.logging_mode = "command" if is_command else "value"
    # Receive effects, replayed: state number and DV move exactly as
    # they did in normal execution.
    session.state_lsn = lsn
    session.dv.observe(msp.name, StateId(msp.epoch, lsn))
    if record.sender_dv is not None:
        yield from msp.cpu(costs.dv_track_ms)
        session.dv.merge(record.sender_dv)

    if record.method not in msp._services:
        # The original execution rejected this unknown method; replay
        # reproduces the same permanent-error outcome.
        session.buffered_reply = b"unknown method"
        session.buffered_reply_seq = record.seq
        session.buffered_reply_error = True
        session.next_expected_seq = record.seq + 1
        return

    method = msp.service(record.method)
    result = yield from method(ctx, record.argument)
    if not isinstance(result, bytes):
        raise SessionProtocolError(
            f"{msp.name}.{record.method} returned {type(result).__name__} during replay"
        )
    # The reply is buffered, not sent: if the client never received the
    # original reply it will resend the request, and the duplicate
    # detection path serves the buffered copy — exactly-once execution.
    session.buffered_reply = result
    session.buffered_reply_seq = record.seq
    session.buffered_reply_error = False
    session.next_expected_seq = record.seq + 1
    msp.stats.replayed_requests += 1
    if is_command:
        msp.stats.replayed_commands += 1
