"""Shared variables: value logging, dependency tracking, undo rollback.

Paper §3.3.  A shared variable is a passive recovery unit accessed by
sessions under short read/write locks.  Reads and writes are *value
logged* (the value itself goes to the log), which buys recovery
independence between sessions: a recovering reader takes values straight
from the log, and an orphan variable is rolled back by whoever trips
over it, by walking the backward chain of write records — no other
session has to roll back, and no thread-pool deadlock can arise.

Dependency tracking is the paper's refined, asymmetric rule:

- a **read** merges the variable's DV into the reader session's DV (the
  reader now depends on whatever produced the value) — the variable
  does *not* pick up the reader's dependencies;
- a **write** *replaces* the variable's DV with the writer session's DV
  (the old value, and its dependencies, are gone).
"""

from __future__ import annotations

from typing import Optional

from repro.core.dv import DependencyVector, RecoveryTable
from repro.core.log_manager import LogManager, LogWindowReader
from repro.core.plsn import (
    OFFSET_MASK,
    encode_frontier,
    plsn_offset,
    plsn_partition,
)
from repro.core.records import NO_LSN, SvCheckpointRecord, SvUpdateRecord, SvWriteRecord
from repro.sim import RWLock, Simulator


class SharedVariable:
    """In-memory state and recovery bookkeeping of one shared variable."""

    def __init__(self, sim: Simulator, name: str, initial_value: bytes):
        self.name = name
        #: The value registered at MSP startup — deterministic, so it
        #: needs no log record and is never an orphan.
        self.initial_value = bytes(initial_value)
        self.value = bytes(initial_value)
        self.dv = DependencyVector()
        #: LSN of the most recent write (or checkpoint) record, i.e. the
        #: variable's state number (paper §3.3); None before any write.
        self.state_lsn: Optional[int] = None
        #: Head of the backward chain of write records; NO_LSN when the
        #: current value comes from a checkpoint or is the initial value.
        self.last_write_lsn: int = NO_LSN
        self.lock = RWLock(sim, name=f"sv:{name}")
        self.writes_since_ckpt = 0
        #: LSN of the most recent checkpoint record (None if never).
        self.last_ckpt_lsn: Optional[int] = None
        #: LSN of the first write ever (scan start when no checkpoint).
        self.first_write_lsn: Optional[int] = None
        #: Partitioned logs: the lowest live chain offset per partition.
        #: A single log orders the chain by LSN, so "everything at or
        #: above the scan start" covers it; split across partitions, the
        #: chain hops between the writers' session partitions and the
        #: checkpoints' control partition, and truncation must keep each
        #: partition's piece of it.  Offsets only grow within one
        #: partition, so the first chain record per partition since the
        #: last checkpoint is that partition's floor.
        self.live_chain_floors: dict[int, int] = {}
        #: Checkpoint-staleness counter for forced checkpoints (§3.4).
        self.msp_ckpts_since_own_ckpt = 0
        #: Access-order ablation state (paper §3.3's rejected
        #: alternative [16]).  ``write_seq`` counts committed writes;
        #: reads log the write version they observed (concurrent reads
        #: of one version commute).  During recovery, ``expected_reads``
        #: holds how many logged reads of each version must replay
        #: before the next write may, and ``recovery_target_write`` is
        #: the final version re-execution must reach; live accesses
        #: block until both are satisfied — the coupling the paper
        #: rejects access-order logging for.
        self.write_seq = 0
        self.expected_reads: dict[int, int] = {}
        self.recovery_target_write = 0
        #: Command/value adaptive logging (DESIGN.md §16).  A command-
        #: mode RMW applies its effect *without* a log record; the
        #: variable's recovery then rests on three pieces of state:
        #:
        #: - ``command_frontier``: per command-session, the ``(lsn,
        #:   ordinal)`` of the most recent command RMW whose effect is
        #:   included in the current value — lsn of the command record,
        #:   ordinal of the apply within that command (one request may
        #:   update a variable more than once, and a checkpoint can
        #:   land between the applies).  Captured by shared-variable
        #:   checkpoints so a replayed command knows whether to
        #:   re-apply (pair beyond the recovered frontier) or skip
        #:   (captured).  Lsns of one session are totally ordered (one
        #:   partition) and ordinals order applies within a command, so
        #:   the pairs totally order per session.
        #: - ``uncaptured_commands``: True while command effects exist
        #:   that no checkpoint or value record has captured yet.  A
        #:   value-logged write to such a variable must checkpoint it
        #:   first (the regime barrier): the logged record's value would
        #:   embed the unlogged effects, and the recovery scan would
        #:   install them *before* the commands re-apply — double
        #:   application.  The barrier seals them under a checkpoint
        #:   whose frontier makes the re-apply a no-op.
        #: - ``history``: an in-memory undo stack (one snapshot per
        #:   write while ``track_history``).  Orphan rollback cannot
        #:   walk a backward chain through unlogged updates, so it pops
        #:   orphan snapshots here first and only falls back to the
        #:   logged chain when the whole history is orphan.  Volatile by
        #:   design: rollback is a live-execution action; after a crash
        #:   the scan + command re-execution rebuild the value instead.
        self.track_history = False
        self.command_frontier: dict[str, tuple[int, int]] = {}
        self.uncaptured_commands = False
        self.history: list[tuple] = []
        #: Frontier as of the last checkpoint/scan — what the frontier
        #: reverts to when rollback exhausts the in-memory history.
        self._frontier_floor: dict[str, int] = {}

    # -- bookkeeping helpers used by the MSP ------------------------------

    def apply_write(self, lsn: int, value: bytes, writer_dv: DependencyVector) -> None:
        """Install a new value (paper Fig. 8 write actions)."""
        self.dv.replace_with(writer_dv)
        self.state_lsn = lsn
        self.value = bytes(value)
        self.last_write_lsn = lsn
        self.writes_since_ckpt += 1
        if self.first_write_lsn is None:
            self.first_write_lsn = lsn
        self.live_chain_floors.setdefault(plsn_partition(lsn), plsn_offset(lsn))
        # A value record captures the current value wholesale, command
        # effects included — from here on the log recovers them.
        self.uncaptured_commands = False
        if self.track_history:
            self._push_history()

    def apply_command_write(
        self,
        lsn: int,
        ordinal: int,
        value: bytes,
        writer_dv: DependencyVector,
        session_id: str,
    ) -> None:
        """Install a command-mode RMW effect (DESIGN.md §16): no log
        record backs it, so the backward chain and the chain floors are
        left untouched; recovery re-derives the effect by re-executing
        the command at ``lsn`` (``ordinal`` numbers the applies within
        one command), gated by the frontier."""
        self.dv.replace_with(writer_dv)
        self.state_lsn = lsn
        self.value = bytes(value)
        self.writes_since_ckpt += 1
        self.command_frontier[session_id] = (lsn, ordinal)
        self.uncaptured_commands = True
        if self.track_history:
            self._push_history()

    def _push_history(self) -> None:
        self.history.append(
            (
                self.value,
                self.dv.copy(),
                self.state_lsn,
                self.last_write_lsn,
                dict(self.command_frontier),
                self.uncaptured_commands,
            )
        )

    def apply_checkpoint(self, lsn: int) -> None:
        """Account a just-logged checkpoint of the current value."""
        self.dv.clear()
        self.state_lsn = lsn
        self.last_write_lsn = lsn  # next write chains back to the ckpt
        self.writes_since_ckpt = 0
        self.last_ckpt_lsn = lsn
        self.msp_ckpts_since_own_ckpt = 0
        # The checkpoint seals the chain: it is the only record below
        # the new head that rollback or a recovery scan can still need.
        self.live_chain_floors = {plsn_partition(lsn): plsn_offset(lsn)}
        # Every command effect is now captured under the checkpoint (the
        # frontier rode along in the record), and nothing below it can
        # ever be rolled back to.
        self.uncaptured_commands = False
        self._frontier_floor = dict(self.command_frontier)
        self.history.clear()

    def scan_start_lsn(self) -> Optional[int]:
        """Where the crash-recovery scan must start for this variable."""
        if self.last_ckpt_lsn is not None:
            return self.last_ckpt_lsn
        return self.first_write_lsn

    def scan_start_frontier(self, nparts: int) -> Optional[int]:
        """The scan start as recorded in MSP checkpoints.

        Single log: the scalar LSN (byte-identical to the classical
        format).  Partitioned: the per-partition chain floors packed as
        a frontier, with unconstrained partitions pinned at the offset
        maximum so they do not hold truncation back.
        """
        if nparts == 1:
            return self.scan_start_lsn()
        if not self.live_chain_floors:
            return None
        starts = [OFFSET_MASK] * nparts
        for partition, offset in self.live_chain_floors.items():
            if partition < nparts:
                starts[partition] = min(starts[partition], offset)
        return encode_frontier(tuple(starts))

    @property
    def reconstructing(self) -> bool:
        """Access-order mode: is replay still rebuilding this variable?"""
        return self.write_seq < self.recovery_target_write or any(
            self.expected_reads.values()
        )

    def is_orphan(self, table: RecoveryTable) -> bool:
        self.dv.prune_resolved(table)
        return table.is_orphan(self.dv)

    # -- orphan rollback (undo recovery, paper §4.2) -------------------------

    def roll_back(self, log: LogManager, table: RecoveryTable):
        """Walk the backward chain to the most recent non-orphan value.

        A generator (charges log-read time).  Performed inline by the
        reader session or the checkpointing thread that detected the
        orphan — the deadlock-avoidance property of value logging.
        Returns the number of chain hops walked.
        """
        hops = 0
        # Command/value adaptive logging (DESIGN.md §16): command-mode
        # RMWs left no records, so the logged chain cannot undo them.
        # The in-memory history covers every write since the last
        # checkpoint (in application order, logged and unlogged alike);
        # pop the orphan tail and restore the newest clean snapshot.
        # Only when the whole history is orphan does the logged chain
        # below it take over.
        while self.history:
            value, dv, state_lsn, last_write_lsn, frontier, uncaptured = self.history[-1]
            candidate_dv = dv.copy()
            candidate_dv.prune_resolved(table)
            if not table.is_orphan(candidate_dv):
                self.value = value
                self.dv = candidate_dv
                self.state_lsn = state_lsn
                self.last_write_lsn = last_write_lsn
                self.command_frontier = dict(frontier)
                self.uncaptured_commands = uncaptured
                return hops
            self.history.pop()
            hops += 1
        if self.track_history:
            # Everything above the last checkpoint/scan state rolled
            # back; the chain walk below restores logged state only.
            self.command_frontier = dict(self._frontier_floor)
            self.uncaptured_commands = False
        reader = LogWindowReader(log, durable_only=False)
        cursor = self.last_write_lsn
        while cursor != NO_LSN:
            record = yield from reader.fetch(cursor)
            if isinstance(record, SvCheckpointRecord):
                # Checkpointed values are never orphans; chain ends here.
                self.value = record.value
                self.dv.clear()
                self.state_lsn = cursor
                self.last_write_lsn = cursor
                self.live_chain_floors = {
                    plsn_partition(cursor): plsn_offset(cursor)
                }
                return hops
            if (
                not isinstance(record, (SvWriteRecord, SvUpdateRecord))
                or record.variable != self.name
            ):
                raise ValueError(
                    f"shared variable {self.name!r}: backward chain hit "
                    f"unexpected record {record!r} at LSN {cursor}"
                )
            candidate_dv = record.writer_dv.copy()
            candidate_dv.prune_resolved(table)
            if not table.is_orphan(candidate_dv):
                self.value = (
                    record.value
                    if isinstance(record, SvWriteRecord)
                    else record.new_value
                )
                self.dv = candidate_dv
                self.state_lsn = cursor
                self.last_write_lsn = cursor
                return hops
            hops += 1
            cursor = record.prev_write_lsn
        # Chain exhausted: fall back to the deterministic initial value.
        self.value = bytes(self.initial_value)
        self.dv = DependencyVector()
        self.state_lsn = None
        self.last_write_lsn = NO_LSN
        self.live_chain_floors = {}
        return hops
