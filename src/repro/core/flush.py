"""Distributed log flushes (paper §3.1, §3.2, §3.3).

Before any state leaves a service domain (an outgoing cross-domain
message, a session checkpoint, a shared-variable checkpoint), every
dependency in the relevant DV must be made durable at its MSP: the
coordinator issues one *leg* per DV entry — a local log flush for its
own MSP, a :class:`~repro.core.messages.FlushRequest` to each remote MSP
— and waits for all of them **in parallel** ("the separate local flushes
required by a distributed log flush can be done in parallel").

A leg fails when the target MSP has crashed and lost the requested
state; the coordinator then knows the flushing state is an orphan and
raises :class:`~repro.core.errors.FlushFailed`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.core.dv import DependencyVector, StateId
from repro.core.errors import FlushFailed
from repro.core.messages import FlushReply, FlushRequest
from repro.core.plsn import plsn_offset, plsn_partition
from repro.sim import SimTimeoutError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.msp import MiddlewareServer

_port_ids = itertools.count(1)


def distributed_flush(msp: "MiddlewareServer", dv: DependencyVector, subject: str):
    """Flush every dependency of ``dv`` (generator).

    On success, prunes the covered entries out of ``dv`` — they are now
    durable and can never become orphans (this is also why cross-domain
    messages need no DV after the flush).  Raises :class:`FlushFailed`
    when any leg reports the state lost.
    """
    dv.prune_resolved(msp.table)
    entries = list(dv)
    if not entries:
        return
    # Fail fast on entries already known to be orphans.
    for target, state in entries:
        if msp.table.is_orphan_state(target, state):
            raise FlushFailed(f"{subject}: dependency on {target} {state} already lost")

    tracer = msp.sim.tracer
    span = None
    if tracer is not None:
        span = tracer.span(
            "flush.distributed", owner=msp.name, subject=subject, legs=len(entries)
        )
    legs = [
        msp.sim.spawn(
            _flush_leg(msp, target, state),
            name=f"{msp.name}.flushleg.{target}",
            group=msp.group,
        )
        for target, state in entries
    ]
    failures = []
    for (target, state), leg in zip(entries, legs):
        try:
            yield leg
        except FlushFailed as exc:
            failures.append((target, state, exc))
    if failures:
        target, state, _ = failures[0]
        if span is not None:
            span.end(outcome="failed", lost=target)
        raise FlushFailed(f"{subject}: dependency on {target} {state} lost in a crash")
    for target, state in entries:
        dv.prune_covered(target, state)
    msp.stats.distributed_flushes += 1
    if span is not None:
        span.end(outcome="ok")


def _flush_leg(msp: "MiddlewareServer", target: str, state: StateId):
    """One leg of a distributed flush: local or remote."""
    if target == msp.name:
        yield from _local_leg(msp, state)
    else:
        yield from _remote_leg(msp, target, state)


def _local_leg(msp: "MiddlewareServer", state: StateId):
    tracer = msp.sim.tracer
    span = None
    if tracer is not None:
        span = tracer.span(
            "flush.leg.local", owner=msp.name, lsn=state.lsn, epoch=state.epoch
        )
    try:
        yield from _local_leg_body(msp, state)
    finally:
        if span is not None:
            span.end()


def _local_leg_body(msp: "MiddlewareServer", state: StateId):
    if state.epoch == msp.epoch:
        yield from msp.cpu(msp.config.costs.flush_issue_ms)
        # Flush the whole buffer of the partition the DV entry names,
        # not only up to the entry (classical pessimistic logging
        # "flushes the buffer").  Covering the tail matters: a
        # shared-variable *write* record does not advance the session's
        # state number (Fig. 8), so a flush cut exactly at the DV could
        # leave the request's last write volatile — the reply would
        # survive a crash while the write it derived from did not.
        # Other partitions stay untouched: per-partition DV entries
        # spawn one leg per partition, so a distributed flush awaits
        # only the partitions its DV actually names.
        yield from msp.log.flush_partition(plsn_partition(state.lsn))
        return
    # A dependency on our own previous epoch: it survived iff our own
    # recovery covered it (the frontier is an end offset per partition).
    if not msp.table.covers(msp.name, state.epoch, state.lsn):
        raise FlushFailed(f"local state {state} lost")


def _await_matching_ack(msp: "MiddlewareServer", inbox, request: FlushRequest):
    """Wait for the :class:`FlushReply` matching ``request`` (generator).

    A stale ack (a duplicate delivery of an earlier reply, or a reply
    raced by our own timeout-driven resend) must *not* trigger another
    FlushRequest round — it is discarded and the wait simply restarts.
    Each discarded ack resets the timeout window; that is safe because a
    stale ack proves the target is alive and responding.
    """
    while True:
        envelope = yield from inbox.get_with_timeout(
            msp.config.flush_retry_timeout_ms
        )
        reply: FlushReply = envelope.payload
        if reply.req_id == request.req_id:
            return reply
        msp.stats.stale_flush_acks += 1
        tracer = msp.sim.tracer
        if tracer is not None:
            tracer.metrics.inc("flush.stale_acks")
            tracer.instant(
                "flush.stale-ack",
                owner=msp.name,
                expected=request.req_id,
                got=reply.req_id,
            )


def _remote_leg(msp: "MiddlewareServer", target: str, state: StateId):
    """Ask ``target`` to flush; retry while it is down."""
    port = f"flush-ack:{next(_port_ids)}"
    inbox = msp.node.bind(port)
    request = FlushRequest(
        epoch=state.epoch, lsn=state.lsn, reply_to=msp.name, reply_port=port
    )
    tracer = msp.sim.tracer
    span = None
    if tracer is not None:
        span = tracer.span(
            "flush.leg.remote",
            owner=msp.name,
            target=target,
            lsn=state.lsn,
            epoch=state.epoch,
        )
    try:
        while True:  # one iteration per (re)send
            yield from msp.cpu(msp.config.costs.message_stack_ms)
            msp.send(target, "flush", request)
            try:
                reply = yield from _await_matching_ack(msp, inbox, request)
            except SimTimeoutError:
                # The target may have crashed.  If an announcement since
                # resolved our dependency, we can decide locally.
                if msp.table.is_orphan_state(target, state):
                    raise FlushFailed(f"remote state {target} {state} lost") from None
                if msp.table.covers(target, state.epoch, state.lsn):
                    if span is not None:
                        span.end(outcome="resolved-by-announcement")
                    return  # durable: it survived the crash
                continue  # still unknown: resend
            if reply.table_snapshot:
                # Piggybacked recovery knowledge: after simultaneous
                # crashes, this is how we learn about recoveries whose
                # broadcast we slept through.
                msp.learn_recovery_knowledge(reply.table_snapshot)
            if not reply.ok:
                if span is not None:
                    span.end(outcome="lost")
                raise FlushFailed(f"remote {target} reports state {state} lost")
            if span is not None:
                span.end(outcome="ok")
            return
    finally:
        if span is not None:
            span.end(outcome="interrupted")
        msp.node.unbind(port)


def flush_service(msp: "MiddlewareServer"):
    """Daemon serving incoming FlushRequests (one handler per request,
    so legs from different coordinators proceed in parallel)."""
    inbox = msp.node.bind("flush")
    while True:
        envelope = yield from inbox.get()
        msp.sim.spawn(
            _serve_flush(msp, envelope.payload),
            name=f"{msp.name}.flushsvc",
            group=msp.group,
        )


def _serve_flush(msp: "MiddlewareServer", request: FlushRequest):
    tracer = msp.sim.tracer
    span = None
    if tracer is not None:
        span = tracer.span(
            "flush.serve",
            owner=msp.name,
            coordinator=request.reply_to,
            lsn=request.lsn,
            epoch=request.epoch,
        )
    try:
        yield from _serve_flush_body(msp, request)
    finally:
        if span is not None:
            span.end()


def _serve_flush_body(msp: "MiddlewareServer", request: FlushRequest):
    yield from msp.cpu(msp.config.costs.message_stack_ms)
    if request.epoch == msp.epoch:
        partition = plsn_partition(request.lsn)
        ok = plsn_offset(request.lsn) < msp.log.partition_end(partition)
        if ok:
            yield from msp.cpu(msp.config.costs.flush_issue_ms)
            # Flush the whole buffer of the named partition (see
            # _local_leg): a strict superset of the requested range at
            # essentially the same disk cost.
            yield from msp.log.flush_partition(partition)
    elif request.epoch < msp.epoch:
        ok = bool(msp.table.covers(msp.name, request.epoch, request.lsn))
    else:
        ok = False
    yield from msp.cpu(msp.config.costs.message_stack_ms)
    reply = FlushReply(
        req_id=request.req_id, ok=ok, table_snapshot=msp.table.snapshot()
    )
    msp.send(request.reply_to, request.reply_port, reply)
