"""MSP crash recovery (paper §4.3, Fig. 12).

The sequence after a restart:

1. re-initialize from the most recent MSP checkpoint (found via the log
   anchor);
2. a single-threaded analysis scan of the durable log from the minimal
   LSN: reconstruct position streams (pruning at EOS records and
   session-end markers), roll shared variables forward to their most
   recent logged values, and rebuild recovered-state-number knowledge;
3. broadcast the recovery announcement (the largest persistent LSN)
   within the service domain — peers ack with their own knowledge, so
   announcements we slept through are caught up;
4. take a fresh MSP checkpoint;
5. recover all sessions **in parallel** along their reconstructed
   position streams while already accepting new sessions.

Lazy mode (``recovery_mode: lazy``, DESIGN.md §15) replaces step 5: the
MSP opens for traffic right after the analysis scan with every surviving
session marked ``lazy_pending``; a session's chain is replayed on demand
— inline when its next request arrives (:func:`recover_session`), or by
a background pump draining the rest hot-first under a concurrency
budget.  Time-to-first-served-request drops from O(total log replay) to
O(analysis + one session chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.core.dv import PKEY_BITS, RecoveryTable
from repro.core.errors import LogTruncatedError, RecoveryMergeError
from repro.core.plsn import (
    OFFSET_BITS,
    OFFSET_MASK,
    encode_frontier,
    make_plsn,
    plsn_offset,
)
from repro.core.records import (
    NO_LSN,
    AnnouncementRecord,
    CommandRecord,
    EosRecord,
    LogRecord,
    MspCheckpointRecord,
    ReplyRecord,
    RequestRecord,
    SessionCheckpointRecord,
    SessionEndRecord,
    SvCheckpointRecord,
    SvOrderRecord,
    SvReadRecord,
    SvUpdateRecord,
    SvWriteRecord,
)
from repro.core.replay import run_session_recovery
from repro.core.session import SessionStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.msp import MiddlewareServer


@dataclass
class AnalysisState:
    """Everything the single-threaded analysis scan reconstructs."""

    #: session id -> LSNs of its position-stream records.
    positions: dict[str, list[int]] = field(default_factory=dict)
    #: session id -> LSN of its most recent session checkpoint.
    session_ckpts: dict[str, int] = field(default_factory=dict)
    #: sessions whose end marker was seen (never rebuilt).
    ended: set[str] = field(default_factory=set)
    #: access-order logging: variable -> last logged write version.
    order_writes: dict[str, int] = field(default_factory=dict)
    #: access-order logging: variable -> {version: read count}.
    order_reads: dict[str, dict[int, int]] = field(default_factory=dict)

    def chain_heads(self) -> dict[str, int]:
        """Per-session backward-chain heads (lazy recovery, DESIGN.md §15).

        The chain and the position stream cover exactly the same
        records and are pruned identically (reset at session
        checkpoints, filtered at EOS, dropped at session end), so the
        head is simply each stream's most recent position — NO_LSN for
        a session whose stream is empty (just checkpointed).
        """
        return {
            sid: (stream[-1] if stream else NO_LSN)
            for sid, stream in self.positions.items()
        }


# -- per-record-kind handlers of the analysis scan ---------------------------
#
# The scan decodes *every* durable record, so its inner loop is the
# hottest CPU path of recovery.  Dispatch is a single dict lookup on the
# record's concrete class (``decode_record`` always produces leaf
# types), replacing the old chain of up to ~10 sequential ``isinstance``
# checks per record; the ``recovery_scan`` benchmark tracks the
# per-record cost.  Each handler does *all* the work for its kind,
# including position-stream membership.


def _scan_position(msp, state: AnalysisState, lsn: int, record) -> None:
    state.positions.setdefault(record.session_id, []).append(lsn)


def _scan_sv_write(msp, state: AnalysisState, lsn: int, record) -> None:
    state.positions.setdefault(record.session_id, []).append(lsn)
    sv = msp.shared.get(record.variable)
    if sv is not None:
        sv.apply_write(lsn, record.value, record.writer_dv)


def _scan_sv_update(msp, state: AnalysisState, lsn: int, record) -> None:
    state.positions.setdefault(record.session_id, []).append(lsn)
    sv = msp.shared.get(record.variable)
    if sv is not None:
        sv.apply_write(lsn, record.new_value, record.writer_dv)


def _scan_sv_checkpoint(msp, state: AnalysisState, lsn: int, record) -> None:
    sv = msp.shared.get(record.variable)
    if sv is not None:
        sv.value = record.value
        sv.apply_checkpoint(lsn)
        sv.write_seq = record.version
        # Command/value adaptive logging (DESIGN.md §16): the frontier
        # says which command effects the checkpointed value already
        # includes, so replayed commands at or below it skip re-apply.
        sv.command_frontier = dict(record.command_frontier)
        sv._frontier_floor = dict(record.command_frontier)
        state.order_writes[record.variable] = record.version
        state.order_reads[record.variable] = {}


def _scan_sv_order(msp, state: AnalysisState, lsn: int, record) -> None:
    state.positions.setdefault(record.session_id, []).append(lsn)
    if record.is_write:
        state.order_writes[record.variable] = record.version
    else:
        reads = state.order_reads.setdefault(record.variable, {})
        reads[record.version] = reads.get(record.version, 0) + 1


def _scan_session_checkpoint(msp, state: AnalysisState, lsn: int, record) -> None:
    state.session_ckpts[record.session_id] = lsn
    state.positions[record.session_id] = []
    state.ended.discard(record.session_id)


def _scan_eos(msp, state: AnalysisState, lsn: int, record) -> None:
    kept = state.positions.get(record.session_id)
    if kept is not None:
        state.positions[record.session_id] = [
            p for p in kept if p < record.orphan_lsn
        ]


def _scan_announcement(msp, state: AnalysisState, lsn: int, record) -> None:
    msp.table.record(record.msp, record.epoch, record.recovered_lsn)


def _scan_msp_checkpoint(msp, state: AnalysisState, lsn: int, record) -> None:
    msp.table.merge(RecoveryTable.from_snapshot(record.recovered_snapshot))


def _scan_session_end(msp, state: AnalysisState, lsn: int, record) -> None:
    state.ended.add(record.session_id)
    state.positions.pop(record.session_id, None)
    state.session_ckpts.pop(record.session_id, None)
    # An ended session's command effects can never replay again; drop
    # its frontier entries so they cannot pin variables' state.
    for sv in msp.shared.values():
        sv.command_frontier.pop(record.session_id, None)
        sv._frontier_floor.pop(record.session_id, None)


#: Type-keyed dispatch table of the analysis scan.  Kinds not listed
#: here (e.g. filler frames) carry no recovery information and are
#: skipped with one failed lookup.
_ANALYSIS_DISPATCH: dict[type, Callable] = {
    RequestRecord: _scan_position,
    CommandRecord: _scan_position,
    ReplyRecord: _scan_position,
    SvReadRecord: _scan_position,
    SvWriteRecord: _scan_sv_write,
    SvUpdateRecord: _scan_sv_update,
    SvCheckpointRecord: _scan_sv_checkpoint,
    SvOrderRecord: _scan_sv_order,
    SessionCheckpointRecord: _scan_session_checkpoint,
    EosRecord: _scan_eos,
    AnnouncementRecord: _scan_announcement,
    MspCheckpointRecord: _scan_msp_checkpoint,
    SessionEndRecord: _scan_session_end,
}


def analyze_scan(
    msp: "MiddlewareServer", records: list[tuple[int, LogRecord]]
) -> AnalysisState:
    """The analysis pass over scanned ``(lsn, record)`` pairs (§4.3 step 2).

    Pure CPU — no simulated time; callers charge scan cost separately.
    Factored out of :func:`recover_msp` so the ``recovery_scan``
    benchmark can measure it against log length in isolation.
    """
    state = AnalysisState()
    dispatch = _ANALYSIS_DISPATCH
    for lsn, record in records:
        handler = dispatch.get(record.__class__)
        if handler is not None:
            handler(msp, state, lsn, record)
    return state


# -- partitioned recovery: consistent cut + DV-ordered merge -----------------
#
# With the log split across partitions (DESIGN.md §14), "the durable
# log" is N durable prefixes whose relative order the disks never
# recorded.  Zhou et al.'s partially-constrained-log result says that is
# fine: only the dependency-constrained partial order matters for
# recoverability, and this repo materializes exactly those constraints —
# per-record intra-MSP DV entries and the shared-variable backward write
# chains.  Recovery therefore (a) lowers each partition's durable end to
# a *consistent cut* in which no surviving record depends on a lost one,
# then (b) linearizes the cut by a dependency-respecting merge that the
# analysis pass consumes exactly like a single-partition scan.


def _own_dependencies(msp_name: str, old_epoch: int, record) -> list[int]:
    """The intra-MSP plsns ``record`` depends on within ``old_epoch``.

    Two edge kinds exist: DV entries naming our own MSP in the crashed
    epoch (entries for older epochs are resolved through the recovery
    table, not the current scan), and the shared-variable backward
    write chain (``prev_write_lsn``), including the partitioned sv
    checkpoint's sealing edge.
    """
    deps: list[int] = []
    prev = getattr(record, "prev_write_lsn", None)
    if prev is not None and prev != NO_LSN:
        deps.append(prev)
    for attr in ("sender_dv", "variable_dv", "writer_dv"):
        dv = getattr(record, attr, None)
        if dv is None:
            continue
        keys = dv._entries.get(msp_name)
        if not keys:
            continue
        for key, lsn in keys.items():
            if (key >> PKEY_BITS) == old_epoch:
                deps.append(lsn)
    return deps


def compute_partition_cut(
    msp_name: str,
    old_epoch: int,
    partition_records: dict[int, list[tuple[int, LogRecord]]],
    durable_ends: dict[int, int],
) -> dict[int, int]:
    """Lower per-partition durable ends to a consistent cut.

    A durable record may depend on a record that was buffered on
    *another* partition and lost in the crash (the disks flush
    independently).  Keeping it would recover state derived from lost
    state — our own orphan.  Fixpoint: excise any record one of whose
    intra-MSP dependencies lies at or beyond the (current) cut of its
    partition, together with everything after it in its own partition
    (suffix exclusion keeps each partition a prefix, which is what the
    announcement frontier and position streams require).
    """
    cut = dict(durable_ends)
    nparts = len(cut)
    changed = True
    while changed:
        changed = False
        for partition, records in partition_records.items():
            limit = cut[partition]
            for offset, record in records:
                if offset >= limit:
                    break
                violated = False
                for dep in _own_dependencies(msp_name, old_epoch, record):
                    dep_partition = dep >> OFFSET_BITS
                    if dep_partition >= nparts:
                        continue
                    if (dep & OFFSET_MASK) >= cut[dep_partition]:
                        violated = True
                        break
                if violated:
                    cut[partition] = offset
                    changed = True
                    break
    return cut


def merge_partition_scans(
    msp_name: str,
    old_epoch: int,
    partition_records: dict[int, list[tuple[int, LogRecord]]],
    cut: dict[int, int],
) -> list[tuple[int, LogRecord]]:
    """Linearize per-partition scans into one dependency-respecting order.

    Each partition's list (offset-sorted, already filtered below the
    cut) is consumed through a cursor; a head record is *eligible* when
    every intra-MSP dependency is already applied — i.e. lies before
    its own partition's cursor (same-partition order is the scan order)
    or before another partition's cursor.  Among eligible heads the
    (offset, partition) minimum is picked, making the merge
    deterministic.  Happens-before acyclicity guarantees progress; a
    stall means the log (or this merge) is broken and raises
    :class:`RecoveryMergeError`.
    """
    lists = {p: records for p, records in sorted(partition_records.items())}
    index = {p: 0 for p in lists}

    def cursor_offset(partition: int) -> int:
        records = lists[partition]
        i = index[partition]
        return records[i][0] if i < len(records) else cut[partition]

    merged: list[tuple[int, LogRecord]] = []
    remaining = sum(len(records) for records in lists.values())
    while remaining:
        best = None
        for partition, records in lists.items():
            i = index[partition]
            if i >= len(records):
                continue
            offset, record = records[i]
            if best is not None and (offset, partition) >= best[:2]:
                continue
            eligible = True
            for dep in _own_dependencies(msp_name, old_epoch, record):
                dep_partition = dep >> OFFSET_BITS
                dep_offset = dep & OFFSET_MASK
                if dep_partition == partition:
                    if dep_offset >= offset:
                        eligible = False  # forward edge: broken log
                        break
                elif dep_partition in lists and dep_offset >= cursor_offset(
                    dep_partition
                ):
                    eligible = False
                    break
            if eligible:
                best = (offset, partition, record)
        if best is None:
            stalled = {
                p: lists[p][index[p]][0]
                for p in lists
                if index[p] < len(lists[p])
            }
            raise RecoveryMergeError(
                f"{msp_name}: no eligible head among partition cursors "
                f"{stalled} — dependency cycle or corrupt log"
            )
        offset, partition, record = best
        index[partition] += 1
        remaining -= 1
        merged.append((make_plsn(partition, offset), record))
    return merged


def assert_merge_order(
    msp_name: str,
    old_epoch: int,
    merged: list[tuple[int, LogRecord]],
) -> None:
    """The DV-merge correctness assertion (``recovery_merge_assert``).

    Re-walks the merged order and verifies every record's intra-MSP
    dependencies were applied before it (dependencies below the scan
    starts — outside the merge — are durably checkpointed state and
    count as applied).  The merge construction guarantees this; the
    assertion guards the construction itself and documents the
    invariant executable-y.
    """
    applied: dict[int, int] = {}
    starts: dict[int, int] = {}
    for plsn, _record in merged:
        partition = plsn >> OFFSET_BITS
        starts.setdefault(partition, plsn & OFFSET_MASK)
    for plsn, record in merged:
        partition = plsn >> OFFSET_BITS
        offset = plsn & OFFSET_MASK
        for dep in _own_dependencies(msp_name, old_epoch, record):
            dep_partition = dep >> OFFSET_BITS
            dep_offset = dep & OFFSET_MASK
            if dep_offset < starts.get(dep_partition, 0):
                continue  # below the scan: checkpoint-covered
            if dep_offset >= applied.get(dep_partition, 0):
                raise RecoveryMergeError(
                    f"{msp_name}: record at p{partition}+{offset} ordered "
                    f"before its dependency p{dep_partition}+{dep_offset}"
                )
        end = offset + 1
        if applied.get(partition, 0) < end:
            applied[partition] = end
    return None


def recover_msp(msp: "MiddlewareServer"):
    """Run full crash recovery (generator); called from ``start()``."""
    started_at = msp.sim.now
    log = msp.log
    msp.sim.probe("recovery.begin", owner=msp.name)
    tracer = msp.sim.tracer
    span = step = None
    if tracer is not None:
        span = tracer.span("recovery", owner=msp.name)
        step = tracer.span("recovery.anchor", owner=msp.name)

    # 1. Re-initialize from the most recent MSP checkpoint.
    nparts = log.nparts
    anchor = log.read_anchor()
    old_epoch = 0
    scan_start = 0
    scan_starts = [0] * nparts
    ckpt_chain_heads: dict[str, int] = {}
    if anchor is not None:
        # One random read to pull the checkpoint record itself.
        yield from msp.disk.read(1, sequential=False)
        ckpt, _next = log.record_at(anchor)
        if not isinstance(ckpt, MspCheckpointRecord):
            raise ValueError(f"{msp.name}: anchor does not point at an MSP checkpoint")
        msp.table = RecoveryTable.from_snapshot(ckpt.recovered_snapshot)
        old_epoch = ckpt.epoch
        scan_start = ckpt.min_lsn(anchor)
        ckpt_chain_heads = dict(ckpt.session_chain_heads)
        if nparts > 1:
            if len(ckpt.partition_ends) != nparts:
                raise ValueError(
                    f"{msp.name}: anchored checkpoint captured "
                    f"{len(ckpt.partition_ends)} partition ends, but the "
                    f"log has {nparts} partitions"
                )
            scan_starts = ckpt.partition_floors(anchor)
    # Truncation safety, stated as an executable assertion: the floor
    # only ever advances to an *anchored* checkpoint's minimal LSN, and
    # the durable anchor is monotone, so the scan start derived from the
    # current anchor can never lie in recycled space.  Tripping this
    # means the truncation pipeline ran ahead of the anchor.
    if nparts == 1:
        if scan_start < log.store.truncate_lsn:
            raise LogTruncatedError(
                f"{msp.name}: recovery scan start {scan_start} below the "
                f"truncation floor {log.store.truncate_lsn}"
            )
    else:
        for partition, unit in enumerate(log.partitions):
            if scan_starts[partition] < unit.store.truncate_lsn:
                raise LogTruncatedError(
                    f"{msp.name}: recovery scan start "
                    f"{scan_starts[partition]} of partition {partition} "
                    f"below the truncation floor {unit.store.truncate_lsn}"
                )
    msp.sim.probe("recovery.anchor-read", owner=msp.name)
    if step is not None:
        step.end(anchor=anchor, scan_start=scan_start, epoch=old_epoch)
        step = tracer.span("recovery.scan", owner=msp.name, lsn=scan_start)

    # 2. Single-threaded analysis scan.  One partition reads a single
    # contiguous durable prefix; N partitions each contribute one, cut
    # to a consistent prefix set and merged in dependency order before
    # analysis (DESIGN.md §14) — the merged list replays exactly like a
    # single-partition scan.
    if nparts == 1:
        records = yield from log.scan_durable(scan_start)
    else:
        partition_records = {}
        for partition in range(nparts):
            scanned = yield from log.scan_durable(
                make_plsn(partition, scan_starts[partition])
            )
            partition_records[partition] = [
                (plsn_offset(plsn), record) for plsn, record in scanned
            ]
        durable_ends = {
            partition: unit.store.durable_end
            for partition, unit in enumerate(log.partitions)
        }
        cut = compute_partition_cut(
            msp.name, old_epoch, partition_records, durable_ends
        )
        # Excised durable suffixes must leave the disk with the replay:
        # left behind, a later recovery would rediscover them after the
        # new incarnation reused the offsets their dependencies name and
        # accept them against aliased records.  Safe because the cut
        # never drops below the anchored checkpoint's captured ends
        # (records below the capture depend only on records below it).
        log.rewind([cut[partition] for partition in range(nparts)])
        for partition, pairs in partition_records.items():
            partition_records[partition] = [
                (offset, record)
                for offset, record in pairs
                if offset < cut[partition]
            ]
        records = merge_partition_scans(
            msp.name, old_epoch, partition_records, cut
        )
        if msp.config.recovery_merge_assert:
            assert_merge_order(msp.name, old_epoch, records)
    msp.sim.probe("recovery.scanned", owner=msp.name)
    if step is not None:
        step.end(records=len(records))
        step = tracer.span("recovery.analyze", owner=msp.name)
    yield from msp.cpu(len(records) * msp.config.costs.scan_record_cpu_ms)

    state = analyze_scan(msp, records)
    positions = state.positions
    session_ckpts = state.session_ckpts
    ended = state.ended
    msp.stats.recovery_scan_records += len(records)

    if msp.config.sv_logging == "access-order":
        # Access-order recovery: variables are reconstructed by
        # re-executing every logged access in conflict order; until
        # then, live accesses must block (the §3.3 coupling this
        # ablation measures).
        for name, sv in msp.shared.items():
            sv.recovery_target_write = state.order_writes.get(name, sv.write_seq)
            sv.expected_reads = dict(state.order_reads.get(name, {}))

    msp.sim.probe("recovery.analyzed", owner=msp.name)
    if step is not None:
        step.end(
            sessions=len(state.positions) + len(state.session_ckpts),
            ended=len(state.ended),
        )

    # The largest persistent LSN is what we recovered to.  Partitioned,
    # that is the consistent-cut *frontier* — durable suffixes excised
    # by the cut were never replayed, so state depending on them is as
    # lost as if the bytes had never hit a platter.
    if nparts == 1:
        recovered_lsn = msp.store.durable_end
    else:
        recovered_lsn = encode_frontier(
            tuple(cut[partition] for partition in range(nparts))
        )
    msp.table.record(msp.name, old_epoch, recovered_lsn)
    msp.epoch = old_epoch + 1

    # Rebuild the session objects (state itself is rebuilt by replay).
    # Lazy mode: each session keeps its scan-derived position stream
    # (the chain walk's fallback and cross-check oracle) plus its chain
    # head — seeded from the anchored checkpoint, overridden by anything
    # the scan observed since.
    lazy = msp.lazy_mode
    if lazy:
        heads = ckpt_chain_heads
        heads.update(state.chain_heads())
    to_recover = []
    for session_id in sorted(positions.keys() | session_ckpts.keys()):
        if session_id in ended:
            continue
        session = msp.session_for(session_id)
        session.status = SessionStatus.RECOVERING
        session.recovery_pending = True
        # Restart the idle clock: a freshly rebuilt session's last
        # activity is *now*, not the epoch-0 default — otherwise the
        # first expiry sweep after ``sim.now >= session_idle_timeout_ms``
        # would end every recovered session before its client's resend
        # (or the lazy pump) could reach it.
        session.last_active_ms = msp.sim.now
        session.last_ckpt_lsn = session_ckpts.get(session_id)
        stream = positions.get(session_id, [])
        session.position_stream.replace(stream)
        session.first_lsn = stream[0] if stream else session.last_ckpt_lsn
        if lazy:
            session.chain_lsn = heads.get(session_id, NO_LSN)
            session.lazy_pending = True
        to_recover.append(session)

    # 3. Broadcast the recovery message within the service domain.
    msp.broadcast_recovery(old_epoch, recovered_lsn)
    msp.sim.probe("recovery.announced", owner=msp.name)
    if tracer is not None:
        tracer.instant(
            "recovery.announce",
            owner=msp.name,
            epoch=old_epoch,
            lsn=recovered_lsn,
        )
        step = tracer.span("recovery.checkpoint", owner=msp.name)

    # 4. Make a fresh MSP checkpoint (so the next crash starts here).
    from repro.core.checkpoint import perform_msp_checkpoint

    yield from perform_msp_checkpoint(msp)
    msp.sim.probe("recovery.checkpointed", owner=msp.name)
    if step is not None:
        step.end()

    # 5. Recover sessions in parallel; the caller opens for business
    # immediately, so new sessions are accepted while these replay.
    # (The sequential mode exists only for the ablation benchmark — the
    # paper's design point is that parallel recovery shortens outages.)
    # Lazy mode replaces this step entirely: no session is replayed
    # here — requests trigger their session's replay inline, and a
    # background pump drains the rest hot-first (DESIGN.md §15).
    if msp.lazy_mode:
        msp.sim.probe("recovery.lazy.analyze", owner=msp.name)
        spawn_recovery_pump(msp)
    elif msp.config.parallel_recovery:
        for session in to_recover:
            msp.sim.spawn(
                run_session_recovery(msp, session, orphan=False),
                name=f"{msp.name}.sessionrec.{session.id}",
                group=msp.group,
            )
    else:
        def _sequential():
            for session in to_recover:
                yield from run_session_recovery(msp, session, orphan=False)

        msp.sim.spawn(
            _sequential(), name=f"{msp.name}.sessionrec.seq", group=msp.group
        )
    msp.stats.recovery_scan_ms += msp.sim.now - started_at
    if span is not None:
        span.end(
            epoch=msp.epoch,
            records=len(records),
            sessions_to_recover=len(to_recover),
        )
        tracer.metrics.observe("recovery.total_ms", msp.sim.now - started_at)
    msp.sim.probe("recovery.end", owner=msp.name)


# -- lazy on-demand session recovery (DESIGN.md §15) --------------------------


def walk_session_chain(msp: "MiddlewareServer", session, head: int):
    """Walk one session's backward chain from ``head`` (generator).

    Returns the chained record lsns in forward (replay) order, or
    ``None`` if a visited record carries no chain link — a log written
    in eager mode, where the caller must fall back to the scan-derived
    position stream.  Raises :class:`LogTruncatedError` (from the
    window reader) if the chain reaches below the truncation floor, and
    :class:`SessionProtocolError` if a link leaves the session or fails
    to move strictly backward — either means a corrupt chain, and
    serving state reconstructed from it would violate exactly-once.
    """
    from repro.core.errors import SessionProtocolError
    from repro.core.log_manager import LogWindowReader
    from repro.core.records import session_of

    reader = LogWindowReader(msp.log, durable_only=False)
    positions: list[int] = []
    cursor = head
    prev_offset: int | None = None
    while cursor != NO_LSN:
        record = yield from reader.fetch(cursor)
        if session_of(record) != session.id:
            raise SessionProtocolError(
                f"{msp.name}: chain of session {session.id} reached foreign "
                f"record {record!r} at {cursor}"
            )
        offset = plsn_offset(cursor)
        if prev_offset is not None and offset >= prev_offset:
            raise SessionProtocolError(
                f"{msp.name}: chain of session {session.id} does not move "
                f"strictly backward at {cursor}"
            )
        prev_offset = offset
        positions.append(cursor)
        if record.prev_lsn is None:
            return None
        cursor = record.prev_lsn
    positions.reverse()
    return positions


def recover_session(msp: "MiddlewareServer", session):
    """Replay one lazy-pending session's chain on demand (generator).

    Idempotent under races: the claim (clearing ``lazy_pending``) is
    synchronous, so of an arriving request and a pump worker targeting
    the same session, exactly one replays it and the other sees status
    RECOVERING (busy reply / next pump pick).
    """
    if not session.lazy_pending:
        return
    session.lazy_pending = False
    session.status = SessionStatus.RECOVERING
    msp.stats.lazy_recoveries += 1
    msp.sim.probe("recovery.session.begin", owner=msp.name)
    tracer = msp.sim.tracer
    step = None
    if tracer is not None:
        step = tracer.span(
            "recovery.session.chainwalk", owner=msp.name, session=session.id
        )
    walked = None
    if session.chain_lsn != NO_LSN:
        walked = yield from walk_session_chain(msp, session, session.chain_lsn)
    if step is not None:
        step.end(
            records=len(walked) if walked is not None else 0,
            fallback=walked is None and session.chain_lsn != NO_LSN,
        )
    if walked is not None:
        if msp.config.recovery_merge_assert:
            # The chain walk must visit exactly the records the analysis
            # scan attributed to this session (the §15 safety argument's
            # executable form).
            scanned = list(session.position_stream.positions())
            if walked != scanned:
                from repro.core.errors import SessionProtocolError

                raise SessionProtocolError(
                    f"{msp.name}: chain walk of session {session.id} visited "
                    f"{walked}, scan attributed {scanned}"
                )
        session.position_stream.replace(walked)
    # A chainless (eager-written) log replays along the scan-derived
    # stream already installed on the session.
    yield from run_session_recovery(msp, session, orphan=False)
    # The replay may run long after the restart (pump backlog): the
    # idle-expiry clock restarts at the moment the session is actually
    # recovered, so it gets a full idle window to be contacted again.
    session.last_active_ms = msp.sim.now
    msp.sim.probe("recovery.session.end", owner=msp.name)


def _session_heat(msp: "MiddlewareServer", session_id: str) -> int:
    """Trace-derived request heat (PR 5 metrics registry); 0 untraced."""
    tracer = msp.sim.tracer
    if tracer is None:
        return 0
    counter = tracer.metrics.counters.get(f"heat.session.{session_id}")
    return counter.value if counter is not None else 0


def _next_lazy_session(msp: "MiddlewareServer"):
    """The hottest unclaimed lazy-pending session (deterministic:
    strictly greater heat wins, ties break to the smallest id)."""
    best = None
    best_heat = -1
    for session_id in sorted(msp.sessions):
        session = msp.sessions[session_id]
        if not session.lazy_pending:
            continue
        heat = _session_heat(msp, session_id)
        if heat > best_heat:
            best, best_heat = session, heat
    return best


def _recovery_pump(msp: "MiddlewareServer"):
    """One background pump worker: claim and replay sessions until none
    remain.  Picking and claiming are synchronous (no yield between
    them), so concurrent workers never double-replay a session."""
    while True:
        session = _next_lazy_session(msp)
        if session is None:
            return
        msp.stats.pump_recoveries += 1
        msp.sim.probe("recovery.pump.step", owner=msp.name)
        yield from recover_session(msp, session)


def spawn_recovery_pump(msp: "MiddlewareServer") -> None:
    """Start the background drain under the configured concurrency
    budget (lazy mode step 5)."""
    pending = sum(1 for s in msp.sessions.values() if s.lazy_pending)
    workers = min(max(1, msp.config.recovery_pump_concurrency), pending)
    for i in range(workers):
        msp.sim.spawn(
            _recovery_pump(msp), name=f"{msp.name}.recpump{i}", group=msp.group
        )
