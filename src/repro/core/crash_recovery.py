"""MSP crash recovery (paper §4.3, Fig. 12).

The sequence after a restart:

1. re-initialize from the most recent MSP checkpoint (found via the log
   anchor);
2. a single-threaded analysis scan of the durable log from the minimal
   LSN: reconstruct position streams (pruning at EOS records and
   session-end markers), roll shared variables forward to their most
   recent logged values, and rebuild recovered-state-number knowledge;
3. broadcast the recovery announcement (the largest persistent LSN)
   within the service domain — peers ack with their own knowledge, so
   announcements we slept through are caught up;
4. take a fresh MSP checkpoint;
5. recover all sessions **in parallel** along their reconstructed
   position streams while already accepting new sessions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.dv import RecoveryTable
from repro.core.records import (
    AnnouncementRecord,
    EosRecord,
    MspCheckpointRecord,
    ReplyRecord,
    RequestRecord,
    SessionCheckpointRecord,
    SessionEndRecord,
    SvCheckpointRecord,
    SvOrderRecord,
    SvReadRecord,
    SvUpdateRecord,
    SvWriteRecord,
)
from repro.core.replay import run_session_recovery
from repro.core.session import SessionStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.msp import MiddlewareServer

#: Record kinds that enter a session's position stream (hoisted out of
#: the analysis-scan loop, which decodes every durable record).
_POSITION_STREAM_KINDS = (
    RequestRecord,
    ReplyRecord,
    SvReadRecord,
    SvWriteRecord,
    SvUpdateRecord,
    SvOrderRecord,
)


def recover_msp(msp: "MiddlewareServer"):
    """Run full crash recovery (generator); called from ``start()``."""
    started_at = msp.sim.now
    log = msp.log
    msp.sim.probe("recovery.begin", owner=msp.name)

    # 1. Re-initialize from the most recent MSP checkpoint.
    anchor = log.read_anchor()
    old_epoch = 0
    scan_start = 0
    if anchor is not None:
        # One random read to pull the checkpoint record itself.
        yield from msp.disk.read(1, sequential=False)
        ckpt, _next = log.record_at(anchor)
        if not isinstance(ckpt, MspCheckpointRecord):
            raise ValueError(f"{msp.name}: anchor does not point at an MSP checkpoint")
        msp.table = RecoveryTable.from_snapshot(ckpt.recovered_snapshot)
        old_epoch = ckpt.epoch
        scan_start = ckpt.min_lsn(anchor)
    msp.sim.probe("recovery.anchor-read", owner=msp.name)

    # 2. Single-threaded analysis scan.
    records = yield from log.scan_durable(scan_start)
    msp.sim.probe("recovery.scanned", owner=msp.name)
    yield from msp.cpu(len(records) * msp.config.costs.scan_record_cpu_ms)

    positions: dict[str, list[int]] = {}
    session_ckpts: dict[str, int] = {}
    ended: set[str] = set()
    order_writes: dict[str, int] = {}
    order_reads: dict[str, dict[int, int]] = {}
    for lsn, record in records:
        if isinstance(record, _POSITION_STREAM_KINDS):
            positions.setdefault(record.session_id, []).append(lsn)
        if isinstance(record, SvWriteRecord):
            sv = msp.shared.get(record.variable)
            if sv is not None:
                sv.apply_write(lsn, record.value, record.writer_dv)
        elif isinstance(record, SvUpdateRecord):
            sv = msp.shared.get(record.variable)
            if sv is not None:
                sv.apply_write(lsn, record.new_value, record.writer_dv)
        elif isinstance(record, SvCheckpointRecord):
            sv = msp.shared.get(record.variable)
            if sv is not None:
                sv.value = record.value
                sv.apply_checkpoint(lsn)
                sv.write_seq = record.version
                order_writes[record.variable] = record.version
                order_reads[record.variable] = {}
        elif isinstance(record, SvOrderRecord):
            if record.is_write:
                order_writes[record.variable] = record.version
            else:
                reads = order_reads.setdefault(record.variable, {})
                reads[record.version] = reads.get(record.version, 0) + 1
        elif isinstance(record, SessionCheckpointRecord):
            session_ckpts[record.session_id] = lsn
            positions[record.session_id] = []
            ended.discard(record.session_id)
        elif isinstance(record, EosRecord):
            kept = positions.get(record.session_id)
            if kept is not None:
                positions[record.session_id] = [
                    p for p in kept if p < record.orphan_lsn
                ]
        elif isinstance(record, AnnouncementRecord):
            msp.table.record(record.msp, record.epoch, record.recovered_lsn)
        elif isinstance(record, MspCheckpointRecord):
            msp.table.merge(RecoveryTable.from_snapshot(record.recovered_snapshot))
        elif isinstance(record, SessionEndRecord):
            ended.add(record.session_id)
            positions.pop(record.session_id, None)
            session_ckpts.pop(record.session_id, None)
    msp.stats.recovery_scan_records += len(records)

    if msp.config.sv_logging == "access-order":
        # Access-order recovery: variables are reconstructed by
        # re-executing every logged access in conflict order; until
        # then, live accesses must block (the §3.3 coupling this
        # ablation measures).
        for name, sv in msp.shared.items():
            sv.recovery_target_write = order_writes.get(name, sv.write_seq)
            sv.expected_reads = dict(order_reads.get(name, {}))

    msp.sim.probe("recovery.analyzed", owner=msp.name)

    # The largest persistent LSN is what we recovered to.
    recovered_lsn = msp.store.durable_end
    msp.table.record(msp.name, old_epoch, recovered_lsn)
    msp.epoch = old_epoch + 1

    # Rebuild the session objects (state itself is rebuilt by replay).
    to_recover = []
    for session_id in sorted(positions.keys() | session_ckpts.keys()):
        if session_id in ended:
            continue
        session = msp.session_for(session_id)
        session.status = SessionStatus.RECOVERING
        session.recovery_pending = True
        session.last_ckpt_lsn = session_ckpts.get(session_id)
        stream = positions.get(session_id, [])
        session.position_stream.replace(stream)
        session.first_lsn = stream[0] if stream else session.last_ckpt_lsn
        to_recover.append(session)

    # 3. Broadcast the recovery message within the service domain.
    msp.broadcast_recovery(old_epoch, recovered_lsn)
    msp.sim.probe("recovery.announced", owner=msp.name)

    # 4. Make a fresh MSP checkpoint (so the next crash starts here).
    from repro.core.checkpoint import perform_msp_checkpoint

    yield from perform_msp_checkpoint(msp)
    msp.sim.probe("recovery.checkpointed", owner=msp.name)

    # 5. Recover sessions in parallel; the caller opens for business
    # immediately, so new sessions are accepted while these replay.
    # (The sequential mode exists only for the ablation benchmark — the
    # paper's design point is that parallel recovery shortens outages.)
    if msp.config.parallel_recovery:
        for session in to_recover:
            msp.sim.spawn(
                run_session_recovery(msp, session, orphan=False),
                name=f"{msp.name}.sessionrec.{session.id}",
                group=msp.group,
            )
    else:
        def _sequential():
            for session in to_recover:
                yield from run_session_recovery(msp, session, orphan=False)

        msp.sim.spawn(
            _sequential(), name=f"{msp.name}.sessionrec.seq", group=msp.group
        )
    msp.stats.recovery_scan_ms += msp.sim.now - started_at
    msp.sim.probe("recovery.end", owner=msp.name)
