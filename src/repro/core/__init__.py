"""The paper's contribution: log-based recovery for middleware servers.

This package implements every mechanism of Wang, Salzberg & Lomet
(SIGMOD 2007): locally optimistic logging over service domains,
per-session dependency vectors, value logging for shared variables,
session / shared-variable / fuzzy MSP checkpointing, position streams,
distributed log flushes, orphan detection and recovery (with EOS records
and multi-crash handling), and parallel MSP crash recovery.

The top-level objects a user composes are:

- :class:`~repro.core.domain.ServiceDomainConfig` — which MSPs trust each
  other enough for optimistic logging.
- :class:`~repro.core.msp.MiddlewareServer` — a recoverable middleware
  server process hosting service methods.
- :class:`~repro.core.client.EndClient` — an end-client runtime with the
  resend-until-reply protocol.
- :class:`~repro.core.config.RecoveryConfig` /
  :class:`~repro.core.config.CostModel` — tuning knobs and CPU costs.
"""

from repro.core.config import CostModel, LoggingMode, RecoveryConfig
from repro.core.dv import DependencyVector, RecoveryTable, StateId
from repro.core.errors import (
    OrphanDetected,
    RecoveryError,
    ServiceBusy,
    SessionProtocolError,
)

__all__ = [
    "CostModel",
    "DependencyVector",
    "EndClient",
    "LoggingMode",
    "MiddlewareServer",
    "OrphanDetected",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryTable",
    "ServiceBusy",
    "ServiceDomainConfig",
    "SessionProtocolError",
    "StateId",
    "WarmStandby",
]


def __getattr__(name):
    """Lazy imports for the heavyweight modules (avoids import cycles)."""
    if name == "MiddlewareServer":
        from repro.core.msp import MiddlewareServer

        return MiddlewareServer
    if name == "EndClient":
        from repro.core.client import EndClient

        return EndClient
    if name == "ServiceDomainConfig":
        from repro.core.domain import ServiceDomainConfig

        return ServiceDomainConfig
    if name == "WarmStandby":
        from repro.core.standby import WarmStandby

        return WarmStandby
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
