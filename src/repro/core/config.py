"""Configuration: logging mode, thresholds and the CPU cost model.

The cost model's defaults are calibrated (see
``repro/workloads/calibration.py`` and the EXPERIMENTS.md notes) so that
the paper's measured baseline times come out of the simulation: a
~3.6 ms MSP-to-MSP round trip, a ~3.9 ms client-to-MSP round trip, and a
NoLog end-to-end response near 8.7 ms for the Fig. 13 workload.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class LoggingMode(enum.Enum):
    """How (and whether) an MSP logs nondeterministic events."""

    #: No logging/recovery infrastructure at all (paper's NoLog config).
    NOLOG = "nolog"
    #: Full recovery infrastructure.  Whether a particular message uses
    #: pessimistic or optimistic logging is decided per message by the
    #: service-domain configuration ("locally optimistic logging").
    RECOVERABLE = "recoverable"


@dataclass
class CostModel:
    """CPU costs (ms) charged to the server CPU for each operation.

    These model the ASP.NET/Web-services stack of the paper's prototype;
    the absolute values are calibration artifacts, but the *structure*
    (what is charged per message, per record, per flush) mirrors the
    paper's analysis in §5.2.
    """

    #: Protocol-stack cost of sending or receiving one message
    #: (serialization, HTTP/SOAP framing, socket syscalls).
    message_stack_ms: float = 0.62
    #: Request dispatch: queueing, session lookup, duplicate detection.
    request_dispatch_ms: float = 0.28
    #: Pure business-logic execution per service method invocation.
    method_execution_ms: float = 0.25
    #: Building + appending one log record to the in-memory buffer.
    log_append_ms: float = 0.12
    #: Dependency-vector bookkeeping per tracked event.
    dv_track_ms: float = 0.06
    #: CPU to format and issue one *physical* log write (charged by the
    #: flusher per write, so batch flushing amortizes it across the
    #: requests it merges — §5.5's CPU reduction).
    flush_cpu_ms: float = 0.90
    #: Requester-side syscall cost of asking for a flush.
    flush_issue_ms: float = 0.08
    #: Session-variable read/write (no logging involved).
    session_var_ms: float = 0.005
    #: Taking one session checkpoint (serialize 8 KB of state).
    session_ckpt_cpu_ms: float = 0.35
    #: Replay-mode execution of one logged request (paper §5.4 measures
    #: replay at ~1.3 ms/request vs ~20.8 ms normal processing; replay
    #: costs method CPU + log-read share, no messaging).
    replay_dispatch_ms: float = 0.05
    #: Client-side cost to build/send a request and consume a reply.
    client_stack_ms: float = 0.35
    #: CPU to parse and apply one record during the recovery scan.
    scan_record_cpu_ms: float = 0.002
    #: State-server baseline: cost to serialize/deserialize 8 KB session
    #: state for a remote fetch or store.
    state_serialize_ms: float = 0.18
    #: Psession baseline: CPU per DB transaction (parse, plan, copy).
    db_txn_cpu_ms: float = 1.2
    #: StateServer baseline: per-message stack cost of the lightweight
    #: binary state protocol (cheaper than the SOAP request stack).
    state_stack_ms: float = 0.30


@dataclass
class RecoveryConfig:
    """Everything tunable about one MSP's recovery infrastructure."""

    mode: LoggingMode = LoggingMode.RECOVERABLE

    # -- checkpointing ---------------------------------------------------
    #: Take a session checkpoint once the session logged this many bytes
    #: since its previous checkpoint (paper §3.2; None disables session
    #: checkpointing — the paper's "NoCp" configuration).
    session_ckpt_threshold_bytes: int | None = 1024 * 1024
    #: Take a shared-variable checkpoint every N writes (paper §3.3).
    sv_ckpt_write_threshold: int = 200
    #: Period of the fuzzy MSP checkpoint daemon, in ms (paper §3.4).
    msp_ckpt_interval_ms: float = 2_000.0
    #: Force a session/SV checkpoint if this many MSP checkpoints passed
    #: since its last one (paper §3.4 "forced checkpoints").
    forced_ckpt_msp_count: int = 8
    #: Server-side session expiry: end a session that has been idle this
    #: long, exactly like a client-initiated end (flush its DV, log the
    #: SessionEnd marker, discard it).  Without it, abandoned sessions —
    #: above all the implicit inter-MSP sessions a chained call opens,
    #: which no client ever ends — accumulate forever and their stale
    #: checkpoint LSNs pin the log-truncation floor, so the live log
    #: grows without bound on open-loop workloads.  ``None`` disables
    #: expiry (the historical behaviour).  Evaluated at MSP-checkpoint
    #: cadence; pick a timeout far above any legitimate think time.
    session_idle_timeout_ms: Optional[float] = None
    #: When a session ends (client end or expiry), its implicit
    #: downstream hop sessions are sent explicit end requests so they
    #: stop pinning the downstream truncation floor immediately instead
    #: of lingering until idle expiry.  Each end is resent until
    #: acknowledged, at most this many attempts (a dead downstream must
    #: not be retried forever — expiry is the backstop).
    end_propagation_attempts: int = 20

    # -- log management ----------------------------------------------------
    #: Batch (group) flushing timeout in ms; 0 disables batching
    #: (paper §5.5 uses 8 ms).
    batch_flush_timeout_ms: float = 0.0
    #: Largest log block written in one disk operation, in sectors
    #: (paper §5.2: blocks vary from 1 to 128 sectors).
    max_block_sectors: int = 128
    #: Recovery log reads are issued in chunks of this many sectors
    #: (paper §5.4: 64 KB = 128 sectors).
    read_chunk_sectors: int = 128
    #: Position-stream buffer capacity, in positions (flushed to disk
    #: when full; paper §3.2 says this cost is low).
    position_buffer_capacity: int = 512
    #: Per-record storage overhead (bytes) materialized as filler, so
    #: log volume matches the paper's fatter .NET serialization
    #: (calibrated to ~1.5 KB logged per request at MSP1).
    log_record_overhead_bytes: int = 64
    #: Checkpoint-driven log truncation: once the log anchor is durable,
    #: advance the store's truncation floor to the anchored checkpoint's
    #: minimal LSN and recycle every segment wholly below it.  Off keeps
    #: the log growing for the whole run (the seed behaviour — only
    #: useful for the ``log_space`` comparison benchmark).
    log_truncation: bool = True
    #: Fixed segment size of the physical log store, in bytes.  Smaller
    #: segments reclaim space at a finer grain; larger ones make frame
    #: straddling (the only non-zero-copy reads) rarer.
    log_segment_bytes: int = 64 * 1024
    #: Number of log partitions (DESIGN.md §14).  1 keeps the historical
    #: single log, bit-identical bytes included; N>1 hashes each
    #: session's stream to one of N stores with independent group-commit
    #: flushers, control records on partition 0, and recovery merging
    #: the per-partition durable prefixes in dependency order.
    log_partitions: int = 1
    #: Verify, while merging partitioned recovery scans, that every
    #: record's intra-MSP dependencies were applied before it (the
    #: DV-merge correctness assertion).  Costs a dependency re-check per
    #: scanned record during recovery; no effect at log_partitions=1.
    recovery_merge_assert: bool = True

    # -- server sizing -----------------------------------------------------
    thread_pool_size: int = 16
    cpu_cores: int = 1

    # -- lazy recovery (DESIGN.md §15) --------------------------------------
    #: ``eager`` replays every session before the MSP opens for traffic
    #: (the paper's §4 restart, byte-identical to previous releases).
    #: ``lazy`` opens the MSP right after the analysis scan: each
    #: session's chain is replayed on demand when its next request
    #: arrives, with a background pump draining the rest hot-first.
    recovery_mode: str = "eager"
    #: How many sessions the background recovery pump replays
    #: concurrently in lazy mode.
    recovery_pump_concurrency: int = 4

    # -- command/value logging (DESIGN.md §16) -------------------------------
    #: What a session's execution logs: ``value`` (the paper's §3.3
    #: per-SV value records, byte-identical to previous releases),
    #: ``command`` (one CommandRecord per request, replay re-executes the
    #: handler deterministically), or ``adaptive`` (per-session runtime
    #: choice between the two driven by the live metrics, with
    #: hysteresis; mode switches land at session-checkpoint boundaries).
    logging_mode: str = "value"
    #: Adaptive mode re-evaluates a session's choice after this many
    #: completed requests since the last evaluation.
    adaptive_eval_requests: int = 8
    #: Adaptive mode prefers command logging while the estimated replay
    #: cost of a command suffix stays below this many ms per request
    #: (replay re-executes the method; value replay only reinstalls).
    adaptive_replay_budget_ms: float = 5.0
    #: Hysteresis: the observed value-mode bytes/request must exceed the
    #: command-mode estimate by this factor to switch to command, and
    #: fall below ``1/margin`` of it to switch back — so the mode cannot
    #: flap on noise.
    adaptive_hysteresis_margin: float = 1.5

    # -- ablations (paper design choices, for the ablation benches) ---------
    #: Recover sessions in parallel after a crash (paper Fig. 12) or one
    #: at a time ("replaying all activities sequentially in log order").
    parallel_recovery: bool = True
    #: Track one DV per session (paper S3.2) instead of a single DV for
    #: the whole MSP.  With a per-MSP DV, one remote crash orphans
    #: every session at once -- "all its sessions will roll back,
    #: possibly unnecessarily".
    per_session_dv: bool = True
    #: Shared-variable logging scheme: "value" (the paper's choice,
    #: S3.3) or "access-order" (the rejected alternative [16], kept as a
    #: measurable ablation).  Access-order logging records only access
    #: sequence numbers; recovery must re-execute every session's
    #: accesses in the logged per-variable order, coupling otherwise
    #: independent recoveries.  Access-order mode requires
    #: checkpointing to be disabled and MSPs to stand alone (no
    #: optimistic domains) -- enforced at start().
    sv_logging: str = "value"

    # -- timeouts ------------------------------------------------------------
    #: How long an outgoing call waits for a reply before resending.
    call_resend_timeout_ms: float = 100.0
    #: How long a distributed-flush participant request waits for an ack
    #: before retrying (covers the target MSP being down).
    flush_retry_timeout_ms: float = 50.0
    #: Server restart delay after a crash before recovery begins
    #: (process re-spawn, runtime init).
    restart_delay_ms: float = 50.0

    costs: CostModel = field(default_factory=CostModel)

    @property
    def recoverable(self) -> bool:
        return self.mode is LoggingMode.RECOVERABLE
