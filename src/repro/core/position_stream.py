"""Per-session position streams (paper §3.2).

All sessions share one physical log; to recover a session its records
must be extracted efficiently.  A position stream holds the LSNs of the
session's log records since its latest checkpoint.  Positions are
written to an in-memory buffer and spilled to disk only when the buffer
fills, "so the cost of writing positions is low".  A crash loses the
buffered tail; crash recovery reconstructs the missing positions from
the physical log itself (§4.3 scan step a).

Orphan recovery truncates the stream to drop the positions of skipped
records, making them invisible to any subsequent recovery (§4.1).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.storage import Disk


class PositionStream:
    """LSN positions of one session's log records since its checkpoint."""

    def __init__(self, session_id: str, buffer_capacity: int = 512):
        self.session_id = session_id
        self.buffer_capacity = buffer_capacity
        #: Positions already spilled to the position stream's disk area.
        self._persistent: list[int] = []
        #: Positions still only in memory.
        self._buffer: list[int] = []
        #: Count of spills, for stats.
        self.spill_count = 0

    def __len__(self) -> int:
        return len(self._persistent) + len(self._buffer)

    def positions(self) -> list[int]:
        """All recorded positions in append order."""
        return self._persistent + self._buffer

    def __iter__(self) -> Iterator[int]:
        return iter(self.positions())

    def append(self, lsn: int) -> bool:
        """Record a new position; returns True when the buffer just
        filled and should be spilled (caller pays the small disk write)."""
        self._buffer.append(lsn)
        return len(self._buffer) >= self.buffer_capacity

    def spill(self, disk: Optional[Disk] = None):
        """Move the buffer to the persistent part (generator).

        Charges one small disk write when a disk is given — this is the
        "low cost" position flush of §3.2.
        """
        if disk is not None and self._buffer:
            yield from disk.write(1)
        self._persistent.extend(self._buffer)
        self._buffer.clear()
        self.spill_count += 1

    def truncate(self) -> None:
        """Reset to zero length (after a session checkpoint, §3.2)."""
        self._persistent.clear()
        self._buffer.clear()

    def remove_from(self, orphan_lsn: int) -> list[int]:
        """Drop every position >= ``orphan_lsn`` (orphan recovery, §4.1).

        Returns the removed positions.  Handles both the disjoint and
        the embedded (orphan, EOS) pair combinations of Fig. 11, because
        removal by threshold subsumes ranges removed earlier.
        """
        removed = [p for p in self.positions() if p >= orphan_lsn]
        self._persistent = [p for p in self._persistent if p < orphan_lsn]
        self._buffer = [p for p in self._buffer if p < orphan_lsn]
        return removed

    def crash(self) -> None:
        """Lose the in-memory buffer (the MSP crashed)."""
        self._buffer.clear()

    def replace(self, positions: Iterable[int]) -> None:
        """Install positions reconstructed by the crash-recovery scan."""
        self._persistent = list(positions)
        self._buffer = []
