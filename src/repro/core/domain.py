"""Service domains (paper §1.3, §2.1).

A service domain is a set of tightly associated MSPs with fast and
reliable communication — typically run by one service provider.  The
domain boundary is where the logging policy flips (§3.1):

- *within* a domain, messages use optimistic logging (DV attached, no
  flush before send);
- *across* domains — including to and from end clients, which are
  outside every domain — messages use pessimistic logging (distributed
  log flush before send, no DV attached).

Domains are disjoint; recovery announcements are broadcast only within
the crashed MSP's domain, and DVs never propagate past a domain
boundary, which bounds both DV size and rollback blast radius.
"""

from __future__ import annotations

from typing import Collection, Iterable, Optional


class ServiceDomainConfig:
    """Immutable assignment of MSPs to disjoint service domains."""

    def __init__(self, domains: Iterable[Iterable[str]] = ()):
        self._domain_of: dict[str, frozenset[str]] = {}
        for members in domains:
            domain = frozenset(members)
            if not domain:
                raise ValueError("empty service domain")
            for msp in domain:
                if msp in self._domain_of:
                    raise ValueError(f"MSP {msp!r} assigned to two service domains")
                self._domain_of[msp] = domain

    def members(self) -> frozenset[str]:
        """Every MSP assigned to any domain."""
        return frozenset(self._domain_of)

    def validate_members(self, known: Collection[str]) -> None:
        """Reject domain members that are not in ``known``.

        Fleet construction calls this so that a typo in a domain layout
        fails fast instead of silently routing announcements and flush
        legs to a name no node will ever bind (which would surface only
        as mysterious unbound-drop counts).
        """
        unknown = sorted(set(self._domain_of) - set(known))
        if unknown:
            raise ValueError(
                f"service domains route unknown MSPs: {', '.join(unknown)}"
            )

    @staticmethod
    def all_separate() -> "ServiceDomainConfig":
        """No optimistic logging anywhere (the paper's Pessimistic
        configuration puts each MSP in its own domain)."""
        return ServiceDomainConfig()

    def domain_of(self, msp: str) -> Optional[frozenset[str]]:
        """The domain containing ``msp``; None if it stands alone
        (every message it exchanges is pessimistically logged)."""
        return self._domain_of.get(msp)

    def peers_of(self, msp: str) -> frozenset[str]:
        """Other members of ``msp``'s domain (announcement targets)."""
        domain = self._domain_of.get(msp)
        if domain is None:
            return frozenset()
        return domain - {msp}

    def same_domain(self, a: str, b: str) -> bool:
        """Do ``a`` and ``b`` share a service domain?

        End clients never appear in a domain, so this correctly returns
        False for any client-MSP pair.
        """
        domain = self._domain_of.get(a)
        return domain is not None and b in domain
