"""State identifiers, dependency vectors and recovered-state knowledge.

Paper §3.1: a process's *state identifier* consists of a *state number*
(the LSN of its most recent log record) and an *epoch number* (a
failure-free period, incremented after each crash recovery).  A
*dependency vector* (DV) maps each MSP a piece of state transitively
depends on to state identifiers in that MSP's log.  DVs travel on
intra-domain messages and are merged by item-wise maximization.

One refinement over the paper's simplified presentation (which "elides
the epoch number"): we keep the maximum LSN *per epoch* rather than a
single entry per MSP.  Collapsing an epoch-``e`` dependency when an
epoch-``e+1`` entry arrives would mask an orphan if the epoch-``e``
recovery announcement has not been processed yet (announcements and
application messages race on the network).  Per-epoch entries are held
until recovery knowledge resolves them: once ``(msp, e)``'s recovered
LSN is known, the entry either proves orphan (LSN beyond it) or can be
dropped (LSN covered, hence durable and never orphanable).  This matches
the incarnation-number treatment in the classical optimistic-recovery
protocols the paper cites (Strom & Yemini; Damani & Garg).

With the partitioned log (DESIGN.md §14) LSNs are plsns — packed
``(partition, offset)`` pairs — and per-partition offsets are not
comparable across partitions.  Entries are therefore kept per
``(epoch, partition)``: maximization, covering and resolution all
happen within one partition's offset order.  At ``partitions=1`` every
plsn has partition 0 and the structure (and its wire encoding)
degenerates to exactly the per-epoch form above.

Orphan detection works against a :class:`RecoveryTable`: when an MSP
finishes crash recovery it announces ``(msp, epoch, recovered_lsn)`` —
a per-partition durable frontier packed by
:func:`repro.core.plsn.encode_frontier` (a raw scalar at one
partition).  Any dependency on that epoch with an LSN beyond its
partition's frontier refers to log records that were lost in the
crash, so the depending state is an orphan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence, Union

from repro.core.plsn import OFFSET_BITS, OFFSET_MASK, decode_frontier, encode_frontier
from repro.wire import Decoder, Encoder
from repro.wire.codec import Buffer, encode_uvarint, read_text_interned, read_uvarint

#: Bits of the internal DV entry key reserved for the partition index:
#: ``key = (epoch << PKEY_BITS) | partition``.  Sorting keys sorts by
#: (epoch, partition); at partitions=1 the key is just ``epoch << 10``.
PKEY_BITS = 10
MAX_PARTITIONS = 1 << PKEY_BITS


@dataclass(frozen=True, order=True)
class StateId:
    """An (epoch, state number) pair identifying a point in an MSP's log."""

    epoch: int
    lsn: int

    def encode_into(self, enc: Encoder) -> None:
        enc.uint(self.epoch).uint(self.lsn)

    @staticmethod
    def decode_from(dec: Decoder) -> "StateId":
        return StateId(epoch=dec.uint(), lsn=dec.uint())


def _entry_key(epoch: int, lsn: int) -> int:
    return (epoch << PKEY_BITS) | (lsn >> OFFSET_BITS)


class DependencyVector:
    """``msp name -> {(epoch, partition) -> max LSN}`` with lattice merge.

    DVs mutate in place; ``copy()`` gives the snapshot the paper needs
    where a shared-variable write *replaces* the variable's DV with the
    writer session's DV.  The inner dict is keyed by
    ``(epoch << PKEY_BITS) | partition`` so the single-partition case
    keeps one flat int key per epoch.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Mapping[str, Mapping[int, int]]] = None):
        # External constructor input is epoch-keyed (the historical
        # shape); the partition half of the key comes from the lsn.
        self._entries: dict[str, dict[int, int]] = {}
        if entries:
            for msp, epochs in entries.items():
                inner = self._entries[msp] = {}
                for epoch, lsn in epochs.items():
                    key = _entry_key(epoch, lsn)
                    current = inner.get(key)
                    if current is None or lsn > current:
                        inner[key] = lsn

    # -- access ----------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._entries)

    def entry_count(self) -> int:
        return sum(len(keys) for keys in self._entries.values())

    def __iter__(self) -> Iterator[tuple[str, StateId]]:
        """Iterate all (msp, StateId) entries in deterministic order."""
        for msp in sorted(self._entries):
            keys = self._entries[msp]
            for key in sorted(keys):
                yield msp, StateId(key >> PKEY_BITS, keys[key])

    def get(self, msp: str) -> Optional[StateId]:
        """The most recent (highest-epoch) dependency on ``msp``."""
        keys = self._entries.get(msp)
        if not keys:
            return None
        key = max(keys)
        return StateId(key >> PKEY_BITS, keys[key])

    def msps(self) -> list[str]:
        return sorted(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencyVector):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{m}:{s.epoch}.{s.lsn}" for m, s in self)
        return f"DV[{inner}]"

    def copy(self) -> "DependencyVector":
        dv = DependencyVector()
        dv._entries = {msp: dict(keys) for msp, keys in self._entries.items()}
        return dv

    # -- updates -----------------------------------------------------------

    def observe(self, msp: str, state: StateId) -> None:
        """Record a direct dependency (per-epoch, per-partition max)."""
        keys = self._entries.setdefault(msp, {})
        key = _entry_key(state.epoch, state.lsn)
        current = keys.get(key)
        if current is None or state.lsn > current:
            keys[key] = state.lsn

    def merge(self, other: "DependencyVector") -> None:
        """Item-wise maximization with ``other`` (paper Fig. 5)."""
        for msp, keys in other._entries.items():
            mine = self._entries.setdefault(msp, {})
            for key, lsn in keys.items():
                current = mine.get(key)
                if current is None or lsn > current:
                    mine[key] = lsn

    def replace_with(self, other: "DependencyVector") -> None:
        """Become a copy of ``other`` (shared-variable write semantics)."""
        self._entries = {msp: dict(keys) for msp, keys in other._entries.items()}

    def clear(self) -> None:
        self._entries.clear()

    def prune_covered(self, msp: str, state: StateId) -> None:
        """Drop entries for ``msp`` proven durable up to ``state``.

        Called after a distributed log flush covered ``state`` at that
        MSP, and when recovery knowledge shows an old-epoch entry
        survived its crash.  A durable dependency can never become an
        orphan, so carrying it is pure overhead — this is why the paper
        can drop the DV from cross-domain messages after the flush.
        Entries for *later* epochs, for other partitions, or for LSNs
        beyond ``state.lsn`` within the same epoch and partition, are
        kept.
        """
        keys = self._entries.get(msp)
        if not keys:
            return
        state_key = _entry_key(state.epoch, state.lsn)
        state_epoch = state.epoch
        for key in list(keys):
            if (key >> PKEY_BITS) < state_epoch or (
                key == state_key and keys[key] <= state.lsn
            ):
                del keys[key]
        if not keys:
            del self._entries[msp]

    def prune_resolved(self, table: "RecoveryTable") -> None:
        """Drop entries that recovery knowledge proves can never orphan."""
        for msp in list(self._entries):
            keys = self._entries[msp]
            for key in list(keys):
                if table.covers(msp, key >> PKEY_BITS, keys[key]):
                    del keys[key]
            if not keys:
                del self._entries[msp]

    # -- serialization -------------------------------------------------------

    def encode_into(self, enc: Encoder) -> None:
        enc.uint(len(self._entries))
        for msp in sorted(self._entries):
            enc.text(msp)
            keys = self._entries[msp]
            enc.uint(len(keys))
            for key in sorted(keys):
                enc.uint(key >> PKEY_BITS).uint(keys[key])

    def encode_bytes(self) -> bytes:
        """Byte-identical to :meth:`encode_into`, without Encoder chaining.

        Used by the compiled record codecs on the logging hot path.
        The partition index is never written — it is recoverable from
        the lsn — so the wire format is unchanged from the flat
        per-epoch encoding.
        """
        entries = self._entries
        parts = [encode_uvarint(len(entries))]
        for msp in sorted(entries):
            name = msp.encode("utf-8")
            parts.append(encode_uvarint(len(name)))
            parts.append(name)
            keys = entries[msp]
            parts.append(encode_uvarint(len(keys)))
            for key in sorted(keys):
                parts.append(encode_uvarint(key >> PKEY_BITS))
                parts.append(encode_uvarint(keys[key]))
        return b"".join(parts)

    @staticmethod
    def decode_from(dec: Decoder) -> "DependencyVector":
        dv = DependencyVector()
        for _ in range(dec.uint()):
            msp = dec.text()
            for _ in range(dec.uint()):
                epoch = dec.uint()
                dv.observe(msp, StateId(epoch, dec.uint()))
        return dv

    @staticmethod
    def decode_from_buffer(buf: Buffer, pos: int) -> tuple["DependencyVector", int]:
        """Fast-path mirror of :meth:`decode_from` over a raw buffer.

        Single-byte varints (entry counts, epochs, short LSNs) are read
        inline; only multi-byte values fall back to ``read_uvarint``.
        An out-of-bounds index surfaces as ``IndexError``, which the
        ``decode_record`` dispatcher translates to :class:`CodecError`.
        """
        dv = DependencyVector()
        entries = dv._entries
        count = buf[pos]
        pos += 1
        if count > 0x7F:
            count, pos = read_uvarint(buf, pos - 1)
        for _ in range(count):
            msp, pos = read_text_interned(buf, pos)
            nepochs = buf[pos]
            pos += 1
            if nepochs > 0x7F:
                nepochs, pos = read_uvarint(buf, pos - 1)
            keys = entries.setdefault(msp, {})
            for _ in range(nepochs):
                epoch = buf[pos]
                pos += 1
                if epoch > 0x7F:
                    epoch, pos = read_uvarint(buf, pos - 1)
                lsn = buf[pos]
                pos += 1
                if lsn > 0x7F:
                    lsn, pos = read_uvarint(buf, pos - 1)
                key = (epoch << PKEY_BITS) | (lsn >> OFFSET_BITS)
                current = keys.get(key)
                if current is None or lsn > current:
                    keys[key] = lsn
        return dv, pos

    def wire_size(self) -> int:
        """Bytes this DV adds to a message (used for network timing)."""
        return 4 + 20 * self.entry_count()


#: A recovered-state frontier as stored locally: per-partition end
#: offsets.  On the wire it travels as one packed int.
Frontier = tuple[int, ...]


class RecoveryTable:
    """Knowledge of recovered state numbers (paper §3.1, §4.3).

    Maps ``msp -> {epoch -> frontier}``: after MSP ``p`` crashes in
    epoch ``e`` and recovers, the frontier holds, per log partition,
    the offset just past the last byte the recovery kept (the largest
    persistent LSN boundary, lowered to the consistent cut at
    partitions>1).  Every log record of epoch ``e`` that *starts* at or
    beyond its partition's frontier is lost forever; dependencies on
    such records are orphans.  Frontiers cross the wire as packed ints
    (:func:`repro.core.plsn.encode_frontier`) — a raw scalar offset in
    the single-partition case, keeping old announcement and checkpoint
    bytes valid.
    """

    def __init__(self) -> None:
        self._recovered: dict[str, dict[int, Frontier]] = {}

    def record(
        self, msp: str, epoch: int, recovered_lsn: Union[int, Sequence[int]]
    ) -> bool:
        """Learn that ``msp`` recovered epoch ``epoch`` up to ``recovered_lsn``.

        Accepts either the packed wire int or a per-partition frontier
        sequence.  Returns True if this was new knowledge.
        """
        if isinstance(recovered_lsn, int):
            frontier = decode_frontier(recovered_lsn)
        else:
            frontier = tuple(recovered_lsn)
        epochs = self._recovered.setdefault(msp, {})
        current = epochs.get(epoch)
        if current is not None:
            if len(current) != len(frontier):
                width = max(len(current), len(frontier))
                current = current + (0,) * (width - len(current))
                frontier = frontier + (0,) * (width - len(frontier))
            epochs[epoch] = tuple(
                max(a, b) for a, b in zip(current, frontier)
            )
            return False
        epochs[epoch] = frontier
        return True

    def merge(self, other: "RecoveryTable") -> bool:
        """Merge ``other``'s knowledge; True if anything was new."""
        fresh = False
        for msp, epochs in other._recovered.items():
            for epoch, frontier in epochs.items():
                if self.record(msp, epoch, frontier):
                    fresh = True
        return fresh

    def recovered_lsn(self, msp: str, epoch: int) -> Optional[int]:
        """The packed wire form of the recovered frontier, if known."""
        epochs = self._recovered.get(msp)
        if not epochs:
            return None
        frontier = epochs.get(epoch)
        if frontier is None:
            return None
        return encode_frontier(frontier)

    def frontier(self, msp: str, epoch: int) -> Optional[Frontier]:
        """The per-partition recovered frontier, if known."""
        epochs = self._recovered.get(msp)
        if not epochs:
            return None
        return epochs.get(epoch)

    def covers(self, msp: str, epoch: int, lsn: int) -> Optional[bool]:
        """Did the record at ``lsn`` survive ``msp``'s epoch-``epoch`` crash?

        None when the epoch's recovery outcome is not yet known; True
        when the record is below the recovered frontier (durable, never
        orphanable); False when it is beyond it (lost).
        """
        frontier = self.frontier(msp, epoch)
        if frontier is None:
            return None
        partition = lsn >> OFFSET_BITS
        return (
            partition < len(frontier)
            and (lsn & OFFSET_MASK) < frontier[partition]
        )

    def is_orphan_state(self, msp: str, state: StateId) -> bool:
        """Is a dependency on ``(msp, state)`` known to be lost?

        The frontier is an end offset per partition; the record
        starting at ``state.lsn`` survived iff its offset is below its
        partition's frontier.
        """
        return self.covers(msp, state.epoch, state.lsn) is False

    def is_orphan(self, dv: DependencyVector) -> bool:
        """Does any entry of ``dv`` depend on lost state?"""
        return self.find_orphan_entry(dv) is not None

    def find_orphan_entry(self, dv: DependencyVector) -> Optional[tuple[str, StateId]]:
        """Return the first orphan entry of ``dv``, if any."""
        for msp, state in dv:
            if self.is_orphan_state(msp, state):
                return msp, state
        return None

    def snapshot(self) -> dict[str, dict[int, int]]:
        """A deep copy in wire form, for inclusion in MSP checkpoints."""
        return {
            msp: {epoch: encode_frontier(fr) for epoch, fr in epochs.items()}
            for msp, epochs in self._recovered.items()
        }

    @staticmethod
    def from_snapshot(snapshot: Mapping[str, Mapping[int, int]]) -> "RecoveryTable":
        table = RecoveryTable()
        for msp, epochs in snapshot.items():
            for epoch, lsn in epochs.items():
                table.record(msp, int(epoch), int(lsn))
        return table

    def encode_into(self, enc: Encoder) -> None:
        enc.uint(len(self._recovered))
        for msp in sorted(self._recovered):
            enc.text(msp)
            epochs = self._recovered[msp]
            enc.uint(len(epochs))
            for epoch in sorted(epochs):
                enc.uint(epoch).uint(encode_frontier(epochs[epoch]))

    @staticmethod
    def decode_from(dec: Decoder) -> "RecoveryTable":
        table = RecoveryTable()
        for _ in range(dec.uint()):
            msp = dec.text()
            for _ in range(dec.uint()):
                epoch = dec.uint()
                table.record(msp, epoch, dec.uint())
        return table
