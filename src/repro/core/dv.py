"""State identifiers, dependency vectors and recovered-state knowledge.

Paper §3.1: a process's *state identifier* consists of a *state number*
(the LSN of its most recent log record) and an *epoch number* (a
failure-free period, incremented after each crash recovery).  A
*dependency vector* (DV) maps each MSP a piece of state transitively
depends on to state identifiers in that MSP's log.  DVs travel on
intra-domain messages and are merged by item-wise maximization.

One refinement over the paper's simplified presentation (which "elides
the epoch number"): we keep the maximum LSN *per epoch* rather than a
single entry per MSP.  Collapsing an epoch-``e`` dependency when an
epoch-``e+1`` entry arrives would mask an orphan if the epoch-``e``
recovery announcement has not been processed yet (announcements and
application messages race on the network).  Per-epoch entries are held
until recovery knowledge resolves them: once ``(msp, e)``'s recovered
LSN is known, the entry either proves orphan (LSN beyond it) or can be
dropped (LSN covered, hence durable and never orphanable).  This matches
the incarnation-number treatment in the classical optimistic-recovery
protocols the paper cites (Strom & Yemini; Damani & Garg).

Orphan detection works against a :class:`RecoveryTable`: when an MSP
finishes crash recovery it announces ``(msp, epoch, recovered_lsn)`` —
any dependency on that epoch with an LSN beyond ``recovered_lsn`` refers
to log records that were lost in the crash, so the depending state is an
orphan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from repro.wire import Decoder, Encoder
from repro.wire.codec import Buffer, encode_uvarint, read_text_interned, read_uvarint


@dataclass(frozen=True, order=True)
class StateId:
    """An (epoch, state number) pair identifying a point in an MSP's log."""

    epoch: int
    lsn: int

    def encode_into(self, enc: Encoder) -> None:
        enc.uint(self.epoch).uint(self.lsn)

    @staticmethod
    def decode_from(dec: Decoder) -> "StateId":
        return StateId(epoch=dec.uint(), lsn=dec.uint())


class DependencyVector:
    """``msp name -> {epoch -> max LSN}`` with lattice merge.

    DVs mutate in place; ``copy()`` gives the snapshot the paper needs
    where a shared-variable write *replaces* the variable's DV with the
    writer session's DV.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Mapping[str, Mapping[int, int]]] = None):
        self._entries: dict[str, dict[int, int]] = {}
        if entries:
            for msp, epochs in entries.items():
                self._entries[msp] = dict(epochs)

    # -- access ----------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self._entries)

    def entry_count(self) -> int:
        return sum(len(epochs) for epochs in self._entries.values())

    def __iter__(self) -> Iterator[tuple[str, StateId]]:
        """Iterate all (msp, StateId) entries in deterministic order."""
        for msp in sorted(self._entries):
            for epoch in sorted(self._entries[msp]):
                yield msp, StateId(epoch, self._entries[msp][epoch])

    def get(self, msp: str) -> Optional[StateId]:
        """The most recent (highest-epoch) dependency on ``msp``."""
        epochs = self._entries.get(msp)
        if not epochs:
            return None
        epoch = max(epochs)
        return StateId(epoch, epochs[epoch])

    def msps(self) -> list[str]:
        return sorted(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DependencyVector):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{m}:{s.epoch}.{s.lsn}" for m, s in self)
        return f"DV[{inner}]"

    def copy(self) -> "DependencyVector":
        return DependencyVector(self._entries)

    # -- updates -----------------------------------------------------------

    def observe(self, msp: str, state: StateId) -> None:
        """Record a direct dependency (per-epoch item-wise maximization)."""
        epochs = self._entries.setdefault(msp, {})
        current = epochs.get(state.epoch)
        if current is None or state.lsn > current:
            epochs[state.epoch] = state.lsn

    def merge(self, other: "DependencyVector") -> None:
        """Item-wise maximization with ``other`` (paper Fig. 5)."""
        for msp, state in other:
            self.observe(msp, state)

    def replace_with(self, other: "DependencyVector") -> None:
        """Become a copy of ``other`` (shared-variable write semantics)."""
        self._entries = {msp: dict(epochs) for msp, epochs in other._entries.items()}

    def clear(self) -> None:
        self._entries.clear()

    def prune_covered(self, msp: str, state: StateId) -> None:
        """Drop entries for ``msp`` proven durable up to ``state``.

        Called after a distributed log flush covered ``state`` at that
        MSP, and when recovery knowledge shows an old-epoch entry
        survived its crash.  A durable dependency can never become an
        orphan, so carrying it is pure overhead — this is why the paper
        can drop the DV from cross-domain messages after the flush.
        Entries for *later* epochs, or for LSNs beyond ``state.lsn``
        within the same epoch, are kept.
        """
        epochs = self._entries.get(msp)
        if not epochs:
            return
        for epoch in list(epochs):
            if epoch < state.epoch or (epoch == state.epoch and epochs[epoch] <= state.lsn):
                del epochs[epoch]
        if not epochs:
            del self._entries[msp]

    def prune_resolved(self, table: "RecoveryTable") -> None:
        """Drop entries that recovery knowledge proves can never orphan."""
        for msp in list(self._entries):
            epochs = self._entries[msp]
            for epoch in list(epochs):
                recovered = table.recovered_lsn(msp, epoch)
                if recovered is not None and epochs[epoch] < recovered:
                    del epochs[epoch]
            if not epochs:
                del self._entries[msp]

    # -- serialization -------------------------------------------------------

    def encode_into(self, enc: Encoder) -> None:
        enc.uint(len(self._entries))
        for msp in sorted(self._entries):
            enc.text(msp)
            epochs = self._entries[msp]
            enc.uint(len(epochs))
            for epoch in sorted(epochs):
                enc.uint(epoch).uint(epochs[epoch])

    def encode_bytes(self) -> bytes:
        """Byte-identical to :meth:`encode_into`, without Encoder chaining.

        Used by the compiled record codecs on the logging hot path.
        """
        entries = self._entries
        parts = [encode_uvarint(len(entries))]
        for msp in sorted(entries):
            name = msp.encode("utf-8")
            parts.append(encode_uvarint(len(name)))
            parts.append(name)
            epochs = entries[msp]
            parts.append(encode_uvarint(len(epochs)))
            for epoch in sorted(epochs):
                parts.append(encode_uvarint(epoch))
                parts.append(encode_uvarint(epochs[epoch]))
        return b"".join(parts)

    @staticmethod
    def decode_from(dec: Decoder) -> "DependencyVector":
        dv = DependencyVector()
        for _ in range(dec.uint()):
            msp = dec.text()
            for _ in range(dec.uint()):
                epoch = dec.uint()
                dv.observe(msp, StateId(epoch, dec.uint()))
        return dv

    @staticmethod
    def decode_from_buffer(buf: Buffer, pos: int) -> tuple["DependencyVector", int]:
        """Fast-path mirror of :meth:`decode_from` over a raw buffer.

        Single-byte varints (entry counts, epochs, short LSNs) are read
        inline; only multi-byte values fall back to ``read_uvarint``.
        An out-of-bounds index surfaces as ``IndexError``, which the
        ``decode_record`` dispatcher translates to :class:`CodecError`.
        """
        dv = DependencyVector()
        entries = dv._entries
        count = buf[pos]
        pos += 1
        if count > 0x7F:
            count, pos = read_uvarint(buf, pos - 1)
        for _ in range(count):
            msp, pos = read_text_interned(buf, pos)
            nepochs = buf[pos]
            pos += 1
            if nepochs > 0x7F:
                nepochs, pos = read_uvarint(buf, pos - 1)
            epochs = entries.setdefault(msp, {})
            for _ in range(nepochs):
                epoch = buf[pos]
                pos += 1
                if epoch > 0x7F:
                    epoch, pos = read_uvarint(buf, pos - 1)
                lsn = buf[pos]
                pos += 1
                if lsn > 0x7F:
                    lsn, pos = read_uvarint(buf, pos - 1)
                current = epochs.get(epoch)
                if current is None or lsn > current:
                    epochs[epoch] = lsn
        return dv, pos

    def wire_size(self) -> int:
        """Bytes this DV adds to a message (used for network timing)."""
        return 4 + 20 * self.entry_count()


class RecoveryTable:
    """Knowledge of recovered state numbers (paper §3.1, §4.3).

    Maps ``msp -> {epoch -> recovered_end}``: after MSP ``p`` crashes in
    epoch ``e`` and recovers, ``recovered_end`` is the offset just past
    the last durable byte (the largest persistent LSN boundary).  Every
    log record of epoch ``e`` that *starts* at or beyond it — i.e.
    ``lsn >= recovered_end`` — is lost forever; dependencies on such
    records are orphans.
    """

    def __init__(self) -> None:
        self._recovered: dict[str, dict[int, int]] = {}

    def record(self, msp: str, epoch: int, recovered_lsn: int) -> bool:
        """Learn that ``msp`` recovered epoch ``epoch`` up to ``recovered_lsn``.

        Returns True if this was new knowledge.
        """
        epochs = self._recovered.setdefault(msp, {})
        if epoch in epochs:
            epochs[epoch] = max(epochs[epoch], recovered_lsn)
            return False
        epochs[epoch] = recovered_lsn
        return True

    def merge(self, other: "RecoveryTable") -> bool:
        """Merge ``other``'s knowledge; True if anything was new."""
        fresh = False
        for msp, epochs in other._recovered.items():
            for epoch, lsn in epochs.items():
                if self.record(msp, epoch, lsn):
                    fresh = True
        return fresh

    def recovered_lsn(self, msp: str, epoch: int) -> Optional[int]:
        epochs = self._recovered.get(msp)
        if not epochs:
            return None
        return epochs.get(epoch)

    def is_orphan_state(self, msp: str, state: StateId) -> bool:
        """Is a dependency on ``(msp, state)`` known to be lost?

        ``recovered`` is an end offset; the record starting at
        ``state.lsn`` survived iff ``state.lsn < recovered``.
        """
        recovered = self.recovered_lsn(msp, state.epoch)
        return recovered is not None and state.lsn >= recovered

    def is_orphan(self, dv: DependencyVector) -> bool:
        """Does any entry of ``dv`` depend on lost state?"""
        return self.find_orphan_entry(dv) is not None

    def find_orphan_entry(self, dv: DependencyVector) -> Optional[tuple[str, StateId]]:
        """Return the first orphan entry of ``dv``, if any."""
        for msp, state in dv:
            if self.is_orphan_state(msp, state):
                return msp, state
        return None

    def snapshot(self) -> dict[str, dict[int, int]]:
        """A deep copy, for inclusion in MSP checkpoints."""
        return {msp: dict(epochs) for msp, epochs in self._recovered.items()}

    @staticmethod
    def from_snapshot(snapshot: Mapping[str, Mapping[int, int]]) -> "RecoveryTable":
        table = RecoveryTable()
        for msp, epochs in snapshot.items():
            for epoch, lsn in epochs.items():
                table.record(msp, int(epoch), int(lsn))
        return table

    def encode_into(self, enc: Encoder) -> None:
        enc.uint(len(self._recovered))
        for msp in sorted(self._recovered):
            enc.text(msp)
            epochs = self._recovered[msp]
            enc.uint(len(epochs))
            for epoch in sorted(epochs):
                enc.uint(epoch).uint(epochs[epoch])

    @staticmethod
    def decode_from(dec: Decoder) -> "RecoveryTable":
        table = RecoveryTable()
        for _ in range(dec.uint()):
            msp = dec.text()
            for _ in range(dec.uint()):
                epoch = dec.uint()
                table.record(msp, epoch, dec.uint())
        return table
