"""Warm-standby log shipping and disaster failover (DESIGN.md §18).

The paper's recovery story assumes the crashed MSP's *disk* survives:
restart reads the durable log prefix and replays.  A whole-site loss —
machine destroyed, storage gone — breaks that assumption.  The classic
middleware answer is **log shipping**: every flushed log frame is also
sent to a warm standby node, so the standby's copy of the log equals
the primary's durable prefix at all times.  On disaster the standby
*promotes* — it recovers from its shipped copy exactly as the primary
would have recovered from its own disk — and because the standby
process is already booted, the failover skips the primary's
``restart_delay_ms`` cold-start.

Shipping here is synchronous with the flush: the primary's disk write
and the standby transfer complete together (real deployments overlap
the network send with the local fsync, so the added latency hides
under the write).  That gives the invariant the whole design rests on,
checked by :meth:`WarmStandby.verify_against_primary`:

    shipped prefix == durable prefix, byte for byte, at every instant.

A crash discards the primary's volatile tail — which was never shipped
— so the standby's copy also equals the post-crash primary log, which
is why promotion recovers the *identical* state a local restart would
have: same analysis scan, same session replays, same dependency
vectors.  Only the bytes that were durable anywhere survive; the
disaster loses exactly what an ordinary crash loses, never more.

The hooks are installed per store instance (``mark_durable``,
``flush_anchor``, ``rewind``), so they survive the MSP's
crash/restart cycles — the store objects themselves persist.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.storage import StableStore


@dataclass
class StandbyStats:
    """Shipping and failover counters for reports."""

    #: Incremental transfers (one per physical flush that grew the
    #: durable prefix) and their byte volume.
    shipments: int = 0
    shipped_bytes: int = 0
    #: Durable anchor updates mirrored to the standby.
    anchor_shipments: int = 0
    #: Rewinds mirrored (partitioned recovery's consistent cut).
    rewinds: int = 0
    #: Promotions performed.
    failovers: int = 0
    #: Outcomes of :meth:`WarmStandby.verify_against_primary`.
    verifications: int = 0
    verification_failures: list = field(default_factory=list)


class WarmStandby:
    """A standby node holding a shipped copy of one MSP's durable log."""

    def __init__(self, msp):
        self.msp = msp
        self.stats = StandbyStats()
        self.promoted = False
        #: One mirror store per log partition, same segment geometry so
        #: offsets (and therefore every plsn the records carry) line up.
        self.mirrors = [
            StableStore(
                name=f"standby.{store.name}",
                segment_bytes=store.segment_bytes,
            )
            for store in msp.stores
        ]
        for primary, mirror in zip(msp.stores, self.mirrors):
            self._attach(primary, mirror)

    # -- shipping ----------------------------------------------------------

    def _attach(self, primary: StableStore, mirror: StableStore) -> None:
        """Wrap the primary's durability hooks to ship synchronously."""
        mark_durable = primary.mark_durable
        flush_anchor = primary.flush_anchor
        rewind = primary.rewind

        def shipping_mark_durable(upto: int) -> None:
            mark_durable(upto)
            self._ship(primary, mirror)

        def shipping_flush_anchor() -> None:
            flush_anchor()
            anchor = primary.read_anchor()
            if anchor is not None:
                mirror.write_anchor(anchor)
                mirror.flush_anchor()
                self.stats.anchor_shipments += 1

        def shipping_rewind(boundary: int) -> None:
            # Partitioned recovery may cut a *durable* suffix whose
            # cross-partition dependency was lost; the standby copy must
            # shed the same bytes or a later promotion would resurrect
            # records the primary's own recovery rejected.
            rewind(boundary)
            if boundary < mirror.end:
                mirror.rewind(boundary)
                self.stats.rewinds += 1

        primary.mark_durable = shipping_mark_durable
        primary.flush_anchor = shipping_flush_anchor
        primary.rewind = shipping_rewind

    def _ship(self, primary: StableStore, mirror: StableStore) -> None:
        durable = primary.durable_end
        if durable <= mirror.end:
            return
        data = primary.read_durable(mirror.end, durable - mirror.end)
        mirror.append(data)
        mirror.mark_durable(durable)
        self.stats.shipments += 1
        self.stats.shipped_bytes += len(data)

    # -- verification ------------------------------------------------------

    def verify_against_primary(self) -> list[str]:
        """Check shipped prefix == durable prefix on every partition.

        Returns the list of mismatches (empty = verified).  Bytes are
        compared above the primary's truncation floor — below it the
        primary's own reads are illegal, and the floor only ever covers
        space no recovery may touch.
        """
        self.stats.verifications += 1
        problems: list[str] = []
        for primary, mirror in zip(self.msp.stores, self.mirrors):
            if mirror.end != primary.durable_end:
                problems.append(
                    f"{mirror.name}: shipped end {mirror.end} != primary "
                    f"durable end {primary.durable_end}"
                )
                continue
            floor = primary.truncate_lsn
            length = primary.durable_end - floor
            if length > 0:
                ours = hashlib.sha256(mirror.read(floor, length)).hexdigest()
                theirs = hashlib.sha256(
                    primary.read_durable(floor, length)
                ).hexdigest()
                if ours != theirs:
                    problems.append(
                        f"{mirror.name}: shipped bytes diverge from the "
                        f"primary's durable prefix over [{floor}, "
                        f"{primary.durable_end})"
                    )
            if mirror.read_anchor() != primary.read_anchor():
                problems.append(
                    f"{mirror.name}: shipped anchor differs from the "
                    "primary's durable anchor"
                )
        self.stats.verification_failures.extend(problems)
        return problems

    # -- failover ----------------------------------------------------------

    def promote(self) -> list[str]:
        """Point the (crashed) MSP at the mirrored stores.

        Models the disaster: the primary's storage is gone, the standby's
        shipped copy *is* the log now.  The caller must have crashed the
        MSP first; verification runs against the post-crash primary (its
        volatile tail already discarded) before the swap, so a shipping
        bug fails loudly instead of recovering silently-divergent state.
        """
        if self.promoted:
            raise RuntimeError(f"standby for {self.msp.name} already promoted")
        if self.msp.running:
            raise RuntimeError(
                f"cannot promote standby while {self.msp.name} is running"
            )
        problems = self.verify_against_primary()
        msp = self.msp
        for i, mirror in enumerate(self.mirrors):
            msp.stores[i] = mirror
        msp.store = msp.stores[0]
        self.promoted = True
        self.stats.failovers += 1
        return problems

    def failover_process(self, takeover_delay_ms: float = 0.0):
        """Promote and boot the MSP from the shipped log (returns the
        recovery process).

        Unlike :meth:`~repro.core.msp.MiddlewareServer.restart_process`,
        no ``restart_delay_ms`` is paid: the standby process is already
        up — that head start is exactly the failover-time win the
        scenario matrix measures.  ``takeover_delay_ms`` models failure
        detection / virtual-IP switch time.
        """
        problems = self.promote()
        if problems:
            raise RuntimeError(
                f"standby for {self.msp.name} diverged from the primary: "
                + "; ".join(problems)
            )
        msp = self.msp
        from repro.sim import ProcessGroup

        if msp.group is None:
            msp.group = ProcessGroup(msp.name)

        def takeover():
            if takeover_delay_ms > 0:
                yield takeover_delay_ms
            yield from msp.start()

        return msp.sim.spawn(
            takeover(), name=f"{msp.name}.failover", group=msp.group
        )
