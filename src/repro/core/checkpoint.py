"""Checkpointing: sessions (§3.2), shared variables (§3.3), MSP (§3.4).

Three independent checkpoint kinds trade normal-execution overhead for
recovery time:

- **session checkpoints** are taken between requests once the session
  consumed a threshold of log since its last checkpoint; a distributed
  log flush first makes the checkpointed state orphan-proof, then the
  position stream is truncated;
- **shared-variable checkpoints** are taken every N writes; after the
  flush the logged value can never be an orphan, so the backward write
  chain breaks there;
- **fuzzy MSP checkpoints** (a daemon) record only *positions* — the
  recovered-state-number table and each session's/variable's scan-start
  LSN — without blocking ongoing activity, and advance the log anchor.
  Stale sessions/variables get *forced* checkpoints so the minimal LSN
  (the crash-recovery scan start) keeps advancing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.dv import DependencyVector, StateId
from repro.core.errors import FlushFailed
from repro.core.records import NO_LSN, MspCheckpointRecord, SvCheckpointRecord
from repro.core.session import Session, SessionStatus
from repro.core.shared_variable import SharedVariable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.msp import MiddlewareServer


def maybe_session_checkpoint(msp: "MiddlewareServer", session: Session):
    """Take a session checkpoint if the log threshold was reached."""
    threshold = msp.config.session_ckpt_threshold_bytes
    if threshold is None or session.bytes_since_ckpt < threshold:
        return
    if session.status is not SessionStatus.NORMAL:
        return
    try:
        yield from take_session_checkpoint(msp, session)
    except FlushFailed:
        # The distributed flush found us to be an orphan (§4.1).
        msp._ensure_recovery(session)


def take_session_checkpoint(msp: "MiddlewareServer", session: Session):
    """The §3.2 session checkpoint procedure (generator).

    New requests arriving during the checkpoint are bounced with busy
    replies ("new requests are held until the checkpoint is completed").
    """
    session.status = SessionStatus.CHECKPOINTING
    span = None
    if msp.sim.tracer is not None:
        span = msp.sim.tracer.span(
            "ckpt.session", owner=msp.name, session=session.id
        )
    try:
        msp.sim.probe("ckpt.session.begin", owner=msp.name)
        # The distributed flush guarantees the checkpointed state can
        # never be an orphan.
        yield from msp.distributed_flush(session.dv, f"session {session.id} ckpt")
        msp.sim.probe("ckpt.session.flushed", owner=msp.name)
        yield from _seal_command_effects(msp, session)
        record = session.build_checkpoint()
        yield from msp.cpu(
            msp.config.costs.session_ckpt_cpu_ms + msp.config.costs.log_append_ms
        )
        lsn, _size = msp.log.append(record)
        session.account_checkpoint(lsn)
        msp.stats.session_checkpoints += 1
        msp.sim.probe("ckpt.session.logged", owner=msp.name)
    finally:
        if span is not None:
            span.end()
        if session.status is SessionStatus.CHECKPOINTING:
            session.status = SessionStatus.NORMAL


def _seal_command_effects(msp: "MiddlewareServer", session: Session):
    """Capture the session's unlogged command effects before its
    checkpoint truncates the replay stream (generator, DESIGN.md §16).

    Command-mode RMWs leave no records of their own; recovery re-derives
    them by re-executing the session's CommandRecords.  A session
    checkpoint makes every earlier record unreachable to replay, so any
    variable still carrying this session's uncaptured effects must be
    checkpointed first — and durably *before* the session checkpoint can
    become durable.  The two records may land on different log
    partitions, so the ordering is enforced with a flush on the seal
    LSNs, not assumed from append order.
    """
    if not session.command_touched:
        return
    seal_dv = DependencyVector()
    for name in sorted(session.command_touched):
        sv = msp.shared.get(name)
        if sv is None:
            continue
        # sv_checkpoint swallows a failed flush by rolling the variable
        # back (it was an orphan); the rolled-back value usually flushes
        # clean, so retry a few times before giving up on this
        # checkpoint — the threshold will simply re-trigger it.
        for _attempt in range(4):
            if not sv.uncaptured_commands:
                break
            yield from sv_checkpoint(msp, sv)
        if sv.uncaptured_commands:
            raise FlushFailed(
                f"session {session.id} ckpt: could not seal command "
                f"effects on {name!r}"
            )
        if sv.last_ckpt_lsn is not None:
            seal_dv.observe(msp.name, StateId(msp.epoch, sv.last_ckpt_lsn))
    session.command_touched.clear()
    yield from msp.distributed_flush(seal_dv, f"session {session.id} ckpt seal")


def sv_checkpoint(msp: "MiddlewareServer", sv: SharedVariable):
    """The §3.3 shared-variable checkpoint procedure (generator).

    Holds the variable's write lock across the flush so the logged
    value is exactly the flushed one.  If the flush fails the variable
    is an orphan; it is rolled back here instead (the checkpointing
    thread is one of the two orphan-detection triggers of §4.2).
    """
    yield from sv.lock.acquire_write()
    span = None
    if msp.sim.tracer is not None:
        span = msp.sim.tracer.span("ckpt.sv", owner=msp.name, variable=sv.name)
    try:
        msp.sim.probe("ckpt.sv.begin", owner=msp.name)
        try:
            yield from msp.distributed_flush(sv.dv, f"shared variable {sv.name} ckpt")
        except FlushFailed:
            msp.stats.sv_rollbacks += 1
            yield from sv.roll_back(msp.log, msp.table)
            return
        msp.sim.probe("ckpt.sv.flushed", owner=msp.name)
        # Partitioned logs record which write this checkpoint seals: the
        # ckpt lands on the control partition while the writes live in
        # session partitions, so the recovery merge needs this edge to
        # order them.  The single-partition log's scan order already
        # does, and omitting the field keeps its bytes identical.
        prev_write = sv.last_write_lsn if msp.log.nparts > 1 else None
        record = SvCheckpointRecord(
            variable=sv.name, value=sv.value, version=sv.write_seq,
            prev_write_lsn=prev_write,
            # Command effects included in the checkpointed value
            # (DESIGN.md §16); empty for value logging, keeping the
            # record's bytes identical.
            command_frontier=dict(sv.command_frontier),
        )
        yield from msp.cpu(msp.config.costs.log_append_ms)
        lsn, _size = msp.log.append(record)
        sv.apply_checkpoint(lsn)
        msp.stats.sv_checkpoints += 1
        msp.sim.probe("ckpt.sv.logged", owner=msp.name)
    finally:
        if span is not None:
            span.end()
        sv.lock.release_write()


def msp_checkpoint_daemon(msp: "MiddlewareServer"):
    """Periodic fuzzy MSP checkpointing (generator daemon)."""
    while True:
        yield msp.config.msp_ckpt_interval_ms
        yield from perform_msp_checkpoint(msp)


def perform_msp_checkpoint(msp: "MiddlewareServer"):
    """One fuzzy MSP checkpoint (§3.4), with forced checkpoints first."""
    msp.sim.probe("ckpt.msp.begin", owner=msp.name)
    tracer = msp.sim.tracer
    span = None
    if tracer is not None:
        span = tracer.span("ckpt.msp", owner=msp.name, epoch=msp.epoch)
    timeout = msp.config.session_idle_timeout_ms
    if timeout is not None:
        # Idle-session expiry sweep: sessions nobody has touched for the
        # timeout are ended server-side.  Chained calls open implicit
        # inter-MSP sessions no client ever ends; without the sweep
        # their stale checkpoint LSNs pin the truncation floor and the
        # live log grows without bound on open-loop workloads.
        for session in list(msp.sessions.values()):
            if (
                not session.busy
                and not session.lazy_pending
                and session.status is SessionStatus.NORMAL
                and msp.sim.now - session.last_active_ms >= timeout
            ):
                yield from msp.expire_session(session)
    limit = msp.config.forced_ckpt_msp_count
    # Force checkpoints for sessions idle so long that they would hold
    # back the minimal LSN.
    for session in list(msp.sessions.values()):
        session.msp_ckpts_since_own_ckpt += 1
        if (
            session.msp_ckpts_since_own_ckpt >= limit
            and session.bytes_since_ckpt > 0
            and not session.busy
            and session.status is SessionStatus.NORMAL
            and msp.config.session_ckpt_threshold_bytes is not None
        ):
            msp.stats.forced_checkpoints += 1
            try:
                yield from take_session_checkpoint(msp, session)
            except FlushFailed:
                msp._ensure_recovery(session)
    for sv in list(msp.shared.values()):
        sv.msp_ckpts_since_own_ckpt += 1
        if sv.msp_ckpts_since_own_ckpt >= limit and sv.writes_since_ckpt > 0:
            msp.stats.forced_checkpoints += 1
            yield from sv_checkpoint(msp, sv)

    msp.sim.probe("ckpt.msp.forced", owner=msp.name)
    partitioned = msp.log.nparts > 1
    record = MspCheckpointRecord(
        recovered_snapshot=msp.table.snapshot(),
        session_start_lsns={
            sid: start
            for sid, s in msp.sessions.items()
            if (start := s.scan_start_lsn()) is not None
        },
        sv_start_lsns={
            name: start
            for name, v in msp.shared.items()
            if (start := v.scan_start_frontier(msp.log.nparts)) is not None
        },
        epoch=msp.epoch,
        # Captured in the same no-yield step as the start lsns: every
        # partition's end bounds (from above) all start lsns that hash
        # to it, so a partition nothing names still gets a valid scan
        # start and truncation floor.
        partition_ends=msp.log.partition_ends() if partitioned else (),
        # Lazy recovery (DESIGN.md §15): each live session's backward
        # chain head, so a post-crash analysis can seed chains without
        # rediscovering them.  Sessions with an empty chain are omitted
        # (absent == NO_LSN).
        session_chain_heads=(
            {
                sid: s.chain_lsn
                for sid, s in msp.sessions.items()
                if s.chain_lsn != NO_LSN
            }
            if msp.lazy_mode
            else {}
        ),
    )
    yield from msp.cpu(msp.config.costs.log_append_ms)
    lsn, _size = msp.log.append(record)
    # A crash at any boundary below must leave the durable anchor
    # pointing at a *complete, durable* checkpoint record: the record is
    # volatile at "logged", durable but unanchored at "flushed", and
    # only at "anchored" does analysis start using it.
    msp.sim.probe("ckpt.msp.logged", owner=msp.name)
    # The anchor must point at a durable checkpoint.
    yield from msp.cpu(msp.config.costs.flush_issue_ms)
    if partitioned:
        # Every partition must be durable through its captured end
        # before the anchor moves: analysis scans start at the captured
        # floors, so bytes below them can never be re-read.
        yield from msp.log.flush(None)
    else:
        yield from msp.log.flush(lsn)
    msp.sim.probe("ckpt.msp.flushed", owner=msp.name)
    yield from msp.log.write_anchor(lsn)
    msp.stats.msp_checkpoints += 1
    msp.sim.probe("ckpt.msp.anchored", owner=msp.name)
    if span is not None:
        span.end(lsn=lsn)
    if msp.config.log_truncation:
        # The anchor is durable, so analysis can never need anything
        # below this checkpoint's minimal LSN again: reclaim it.  The
        # probes around the recycle are crash sites — a crash between
        # anchor-durable and segment-recycle must recover exactly like
        # one after the recycle (the floor is rebuilt by the next
        # checkpoint, not recovered).
        if partitioned:
            yield from msp.log.truncate_to(record.partition_floors(lsn))
        else:
            yield from msp.log.truncate_to(record.min_lsn(lsn))
