"""Session state: the per-client recovery unit (paper §2.2, §3.2).

A session holds private session variables (not logged — replay
reconstructs them), the exactly-once protocol state (next expected
request sequence number, the buffered last reply), the session's
dependency vector and state number, its outgoing sessions to other MSPs,
and its position stream.  "Sessions are recovery units, while MSPs are
crash units."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.dv import DependencyVector, RecoveryTable, StateId
from repro.core.position_stream import PositionStream
from repro.core.records import NO_LSN, SessionCheckpointRecord


class SessionStatus(enum.Enum):
    NORMAL = "normal"
    CHECKPOINTING = "checkpointing"
    RECOVERING = "recovering"


@dataclass
class OutgoingSession:
    """Client-side state of a session this session opened on another MSP."""

    session_id: str
    target_msp: str
    next_seq: int = 0


class Session:
    """One client's session at an MSP."""

    def __init__(self, session_id: str, msp_name: str, buffer_capacity: int = 512):
        self.id = session_id
        self.msp_name = msp_name
        #: Private session variables (name -> bytes); never logged.
        self.variables: dict[str, bytes] = {}
        self.dv = DependencyVector()
        #: The session's state number: LSN of its most recent log record.
        self.state_lsn: Optional[int] = None
        #: Exactly-once protocol state (paper §3.1).
        self.next_expected_seq = 0
        self.buffered_reply: Optional[bytes] = None
        self.buffered_reply_seq = -1
        #: True when the buffered reply is a permanent error (unknown
        #: method) rather than a successful result.
        self.buffered_reply_error = False
        #: Outgoing sessions keyed by target MSP name.
        self.outgoing: dict[str, OutgoingSession] = {}
        self.position_stream = PositionStream(session_id, buffer_capacity)
        self.status = SessionStatus.NORMAL
        #: True while a worker thread is executing a method for us.
        self.busy = False
        #: Simulated time of the last request handled for this session;
        #: the idle-expiry clock (config.session_idle_timeout_ms).
        self.last_active_ms = 0.0
        #: Log bytes consumed since the last session checkpoint (§3.2
        #: checkpoint threshold).
        self.bytes_since_ckpt = 0
        self.last_ckpt_lsn: Optional[int] = None
        self.first_lsn: Optional[int] = None
        #: Forced-checkpoint staleness counter (§3.4).
        self.msp_ckpts_since_own_ckpt = 0
        #: Set while orphan recovery is pending/running for this session.
        self.recovery_pending = False
        #: Backward-chain head (lazy recovery, DESIGN.md §15): the lsn
        #: of this session's most recent chained record, NO_LSN when the
        #: chain is empty (fresh session or just checkpointed).  Only
        #: maintained in lazy recovery mode.
        self.chain_lsn: int = NO_LSN
        #: True between the analysis scan and this session's on-demand
        #: replay during a lazy restart; cleared when the replay is
        #: claimed (inline or by the pump).
        self.lazy_pending = False
        #: Effective logging mode of this session: ``value`` or
        #: ``command`` (DESIGN.md §16).  Fixed by config for the pure
        #: modes; the adaptive policy re-decides it between requests, so
        #: any one request's records are single-mode but a log suffix
        #: may mix them — replay dispatches per record kind.
        self.logging_mode = "value"
        #: Adaptive accounting: requests completed and log bytes
        #: appended since the policy last evaluated this session.
        self.requests_since_eval = 0
        self.bytes_since_eval = 0
        #: Of ``bytes_since_eval``, the bytes command mode would have
        #: elided (SvUpdate records + their storage overhead).
        self.elidable_bytes_since_eval = 0
        #: Estimated per-request replay cost (ms) from live execution —
        #: the adaptive policy's command-mode downside.  EWMA of request
        #: wall time minus time spent blocked in outgoing calls.
        self.observed_exec_ms = 0.0
        #: Shared variables this session has applied command-mode RMWs
        #: to since its last session checkpoint.  The checkpoint must
        #: seal these (checkpoint any still carrying uncaptured command
        #: effects) before truncating the replay stream — the elided
        #: records are only recoverable by re-executing the commands the
        #: checkpoint is about to make unreachable.
        self.command_touched: set[str] = set()
        #: LSN of the current request's command record (command mode);
        #: the frontier key for its RMW effects.
        self.command_lsn: Optional[int] = None
        #: Wall time the current request spent inside ``ctx.call`` —
        #: subtracted from elapsed time for the replay-cost EWMA.
        self.call_ms_accum = 0.0

    # -- state-number / DV bookkeeping --------------------------------------

    def account_record(self, lsn: int, size: int, epoch: int, spill_due: bool = False) -> bool:
        """Register a freshly appended log record of this session.

        Updates the state number, the self-dependency, the position
        stream and the checkpoint threshold accounting.  Returns True
        when the position buffer wants spilling.
        """
        self.state_lsn = lsn
        self.dv.observe(self.msp_name, StateId(epoch, lsn))
        if self.first_lsn is None:
            self.first_lsn = lsn
        self.bytes_since_ckpt += size
        self.bytes_since_eval += size
        return self.position_stream.append(lsn)

    def is_orphan(self, table: RecoveryTable) -> bool:
        self.dv.prune_resolved(table)
        return table.is_orphan(self.dv)

    def scan_start_lsn(self) -> Optional[int]:
        """Where the crash-recovery scan must start for this session."""
        if self.last_ckpt_lsn is not None:
            return self.last_ckpt_lsn
        return self.first_lsn

    # -- outgoing sessions ----------------------------------------------------

    def outgoing_to(self, target_msp: str) -> OutgoingSession:
        """The (deterministically named) outgoing session to ``target_msp``.

        The name must be stable across replay so re-execution talks to
        the same server-side session.
        """
        existing = self.outgoing.get(target_msp)
        if existing is not None:
            return existing
        out = OutgoingSession(session_id=f"{self.id}>{target_msp}", target_msp=target_msp)
        self.outgoing[target_msp] = out
        return out

    # -- checkpointing ------------------------------------------------------------

    def build_checkpoint(self) -> SessionCheckpointRecord:
        """Snapshot for a session checkpoint (taken between requests,
        so no control state is needed — paper §3.2)."""
        return SessionCheckpointRecord(
            session_id=self.id,
            variables=dict(self.variables),
            buffered_reply=self.buffered_reply,
            buffered_reply_seq=max(self.buffered_reply_seq, 0),
            next_expected_seq=self.next_expected_seq,
            outgoing_next_seq={
                out.session_id: out.next_seq for out in self.outgoing.values()
            },
            buffered_reply_error=self.buffered_reply_error,
            logging_mode=self.logging_mode,
        )

    def account_checkpoint(self, lsn: int) -> None:
        """Bookkeeping after the checkpoint record was logged."""
        self.last_ckpt_lsn = lsn
        self.bytes_since_ckpt = 0
        self.msp_ckpts_since_own_ckpt = 0
        self.position_stream.truncate()
        # The backward chain breaks at a checkpoint: replay restarts
        # from the checkpoint, so earlier records are unreachable.
        self.chain_lsn = NO_LSN
        # The distributed flush that preceded the checkpoint made every
        # current dependency durable; none can ever become an orphan.
        self.dv.clear()

    def restore_checkpoint(self, record: SessionCheckpointRecord) -> None:
        """Re-initialize from a checkpoint (recovery start, §4.1)."""
        self.variables = dict(record.variables)
        self.buffered_reply = record.buffered_reply
        self.buffered_reply_seq = (
            record.buffered_reply_seq if record.buffered_reply is not None else -1
        )
        self.buffered_reply_error = record.buffered_reply_error
        self.next_expected_seq = record.next_expected_seq
        self.outgoing = {}
        for out_id, next_seq in record.outgoing_next_seq.items():
            # Outgoing ids have the form "<session>><target>".
            target = out_id.rsplit(">", 1)[1]
            self.outgoing[target] = OutgoingSession(
                session_id=out_id, target_msp=target, next_seq=next_seq
            )
        self.dv = DependencyVector()
        self.state_lsn = None
        self.logging_mode = record.logging_mode

    def reset_fresh(self) -> None:
        """Reset to the just-started state (recovery with no checkpoint)."""
        self.variables = {}
        self.buffered_reply = None
        self.buffered_reply_seq = -1
        self.buffered_reply_error = False
        self.next_expected_seq = 0
        self.outgoing = {}
        self.dv = DependencyVector()
        self.state_lsn = None
