"""Log record types and their on-log byte codecs.

Every nondeterministic event of an MSP is captured by one of these
records (paper §3): message receipts (requests and replies), shared-
variable reads and writes (value logging, §3.3), the three checkpoint
kinds (session §3.2, shared-variable §3.3, fuzzy MSP §3.4), end-of-skip
markers written by orphan recovery (§4.1), recovery announcements
learned from other MSPs, and session-end markers.

Records are encoded to real bytes before they hit the physical log and
parsed back during recovery — recovery never touches live Python objects
from "before the crash".
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.dv import DependencyVector
from repro.wire import Decoder, Encoder
from repro.wire.codec import (
    Buffer,
    CodecError,
    encode_uvarint,
    read_bytes,
    read_text_interned,
    read_uvarint,
)

# Record kind tags (one byte each on the log).
KIND_REQUEST = 1
KIND_REPLY = 2
KIND_SV_READ = 3
KIND_SV_WRITE = 4
KIND_SV_CHECKPOINT = 5
KIND_SESSION_CHECKPOINT = 6
KIND_MSP_CHECKPOINT = 7
KIND_EOS = 8
KIND_ANNOUNCEMENT = 9
KIND_SESSION_END = 10
KIND_FILLER = 11
KIND_SV_UPDATE = 12
KIND_SV_ORDER = 13
KIND_COMMAND = 14

#: Sentinel "no previous write" value for backward chains.
NO_LSN = 0xFFFFFFFFFFFF

#: Per-session logging-mode codes for the session checkpoint's optional
#: trailing field (omitted for "value", keeping those bytes identical).
LOGGING_MODE_CODES = {"value": 0, "command": 1}
LOGGING_MODE_NAMES = {code: name for name, code in LOGGING_MODE_CODES.items()}

# -- compiled-codec helpers ---------------------------------------------------
#
# The high-frequency record kinds (request, reply, SV read/write/update
# and filler) bypass the chained Encoder/Decoder with precompiled
# ``struct.Struct`` packers and the module-level varint fast paths of
# :mod:`repro.wire.codec`.  The byte format is *identical* to the
# general path — asserted by the golden-bytes tests — only the Python
# overhead (one Encoder object plus a method call per field) is gone.

_PACK_KIND_LEN = struct.Struct("<BB").pack
_FALSE = b"\x00"
_TRUE = b"\x01"


def _kind_len(kind: int, length: int) -> bytes:
    """Pack a record kind and the first field's length prefix at once."""
    if length < 0x80:
        return _PACK_KIND_LEN(kind, length)
    return encode_uvarint(kind) + encode_uvarint(length)


def _optional_dv_bytes(dv: Optional[DependencyVector]) -> bytes:
    if dv is None:
        return _FALSE
    return _TRUE + dv.encode_bytes()


@dataclass
class RequestRecord:
    """A client request received over a session (paper Fig. 7, receive).

    The attached DV is present only for intra-domain senders (optimistic
    logging); cross-domain messages arrive flushed and carry none.

    ``prev_lsn`` is an optional trailing field written only in lazy
    recovery mode (DESIGN.md §15): the lsn of the session's previous
    chained record, forming a per-session backward chain that lazy
    recovery walks instead of attributing a full scan.  Eager mode omits
    it, keeping the bytes identical to previous releases.
    """

    session_id: str
    seq: int
    method: str
    argument: bytes
    sender_dv: Optional[DependencyVector] = None
    prev_lsn: Optional[int] = None
    kind: int = field(default=KIND_REQUEST, init=False)

    def encode(self) -> bytes:
        sid = self.session_id.encode("utf-8")
        method = self.method.encode("utf-8")
        argument = self.argument
        parts = [
            _kind_len(KIND_REQUEST, len(sid)),
            sid,
            encode_uvarint(self.seq),
            encode_uvarint(len(method)),
            method,
            encode_uvarint(len(argument)),
            argument,
            _optional_dv_bytes(self.sender_dv),
        ]
        if self.prev_lsn is not None:
            parts.append(encode_uvarint(self.prev_lsn))
        return b"".join(parts)


@dataclass
class CommandRecord:
    """Command logging: the request itself is the log record (§3.3 dual).

    Under ``logging_mode: command`` the per-SV value records of a
    request's execution are *not* logged; this single record — the
    method id, its argument and the sender's DV context — is, and
    recovery re-executes the handler deterministically against recovered
    state (Lomet-style logical recovery).  The fields deliberately
    mirror :class:`RequestRecord` so the analysis scan, the recovery
    cut/merge (``sender_dv``), partition routing (``session_id``) and
    the lazy backward chain (``prev_lsn``) all treat it identically.
    """

    session_id: str
    seq: int
    method: str
    argument: bytes
    sender_dv: Optional[DependencyVector] = None
    prev_lsn: Optional[int] = None
    kind: int = field(default=KIND_COMMAND, init=False)

    def encode(self) -> bytes:
        sid = self.session_id.encode("utf-8")
        method = self.method.encode("utf-8")
        argument = self.argument
        parts = [
            _kind_len(KIND_COMMAND, len(sid)),
            sid,
            encode_uvarint(self.seq),
            encode_uvarint(len(method)),
            method,
            encode_uvarint(len(argument)),
            argument,
            _optional_dv_bytes(self.sender_dv),
        ]
        if self.prev_lsn is not None:
            parts.append(encode_uvarint(self.prev_lsn))
        return b"".join(parts)


@dataclass
class ReplyRecord:
    """A reply received from another MSP for an outgoing call."""

    session_id: str  #: the *local* session that made the outgoing call
    outgoing_session_id: str
    seq: int
    payload: bytes
    sender_dv: Optional[DependencyVector] = None
    prev_lsn: Optional[int] = None
    kind: int = field(default=KIND_REPLY, init=False)

    def encode(self) -> bytes:
        sid = self.session_id.encode("utf-8")
        out = self.outgoing_session_id.encode("utf-8")
        payload = self.payload
        parts = [
            _kind_len(KIND_REPLY, len(sid)),
            sid,
            encode_uvarint(len(out)),
            out,
            encode_uvarint(self.seq),
            encode_uvarint(len(payload)),
            payload,
            _optional_dv_bytes(self.sender_dv),
        ]
        if self.prev_lsn is not None:
            parts.append(encode_uvarint(self.prev_lsn))
        return b"".join(parts)


@dataclass
class SvReadRecord:
    """Value logging for a shared-variable read (paper Fig. 8, read).

    Logging the value *and* the variable's DV lets a recovering reader
    obtain the value straight from the log, without involving the writer
    session — the recovery-independence argument of §3.3.
    """

    session_id: str
    variable: str
    value: bytes
    variable_dv: DependencyVector
    prev_lsn: Optional[int] = None
    kind: int = field(default=KIND_SV_READ, init=False)

    def encode(self) -> bytes:
        sid = self.session_id.encode("utf-8")
        var = self.variable.encode("utf-8")
        value = self.value
        parts = [
            _kind_len(KIND_SV_READ, len(sid)),
            sid,
            encode_uvarint(len(var)),
            var,
            encode_uvarint(len(value)),
            value,
            self.variable_dv.encode_bytes(),
        ]
        if self.prev_lsn is not None:
            parts.append(encode_uvarint(self.prev_lsn))
        return b"".join(parts)


@dataclass
class SvWriteRecord:
    """Value logging for a shared-variable write (paper Fig. 8, write).

    ``prev_write_lsn`` chains write records backward so orphan rollback
    can walk to the most recent non-orphan value; the chain breaks at
    checkpoints.
    """

    session_id: str
    variable: str
    value: bytes
    writer_dv: DependencyVector
    prev_write_lsn: int = NO_LSN
    prev_lsn: Optional[int] = None
    kind: int = field(default=KIND_SV_WRITE, init=False)

    def encode(self) -> bytes:
        sid = self.session_id.encode("utf-8")
        var = self.variable.encode("utf-8")
        value = self.value
        parts = [
            _kind_len(KIND_SV_WRITE, len(sid)),
            sid,
            encode_uvarint(len(var)),
            var,
            encode_uvarint(len(value)),
            value,
            self.writer_dv.encode_bytes(),
            encode_uvarint(self.prev_write_lsn),
        ]
        if self.prev_lsn is not None:
            parts.append(encode_uvarint(self.prev_lsn))
        return b"".join(parts)


@dataclass
class SvUpdateRecord:
    """An atomic read-modify-write of a shared variable.

    Extension over the paper (see ``ServiceContext.update_shared``): one
    record captures both the value read (``old_value`` with the
    variable's DV at that moment — the nondeterministic input) and the
    value written (``new_value`` with the writer's resulting DV and the
    backward chain link).  Replay consumes exactly one record per RMW,
    so a lost record means the whole RMW re-executes live — atomicity is
    preserved across the replay/normal boundary.
    """

    session_id: str
    variable: str
    old_value: bytes
    new_value: bytes
    variable_dv: DependencyVector
    writer_dv: DependencyVector
    prev_write_lsn: int = NO_LSN
    prev_lsn: Optional[int] = None
    kind: int = field(default=KIND_SV_UPDATE, init=False)

    def encode(self) -> bytes:
        sid = self.session_id.encode("utf-8")
        var = self.variable.encode("utf-8")
        old_value = self.old_value
        new_value = self.new_value
        parts = [
            _kind_len(KIND_SV_UPDATE, len(sid)),
            sid,
            encode_uvarint(len(var)),
            var,
            encode_uvarint(len(old_value)),
            old_value,
            encode_uvarint(len(new_value)),
            new_value,
            self.variable_dv.encode_bytes(),
            self.writer_dv.encode_bytes(),
            encode_uvarint(self.prev_write_lsn),
        ]
        if self.prev_lsn is not None:
            parts.append(encode_uvarint(self.prev_lsn))
        return b"".join(parts)


@dataclass
class SvCheckpointRecord:
    """A shared-variable checkpoint: a value that can never be an orphan.

    Written after a distributed log flush covered the variable's DV, so
    no DV needs to be stored and the backward chain breaks here.
    ``version`` is the variable's write-version counter at checkpoint
    time; it is only consumed by the access-order-logging ablation,
    whose recovery replays accesses in version order from here.

    ``prev_write_lsn`` is an optional trailing field written only by
    partitioned logs (DESIGN.md §14): the lsn of the write this
    checkpoint seals.  The recovery merge needs that edge to order the
    checkpoint (control partition) after the writes it covers (session
    partitions); in a single-partition log the scan order already says
    so and the field is omitted, keeping the bytes identical.

    ``command_frontier`` is a second optional trailing field written
    only when the variable carries command-mode RMW effects (DESIGN.md
    §16): per command session, the ``(lsn, ordinal)`` of the most recent
    command RMW whose effect is included in the checkpointed value.
    Recovery restores it so a re-executed command re-applies its RMW
    exactly when its pair lies beyond the frontier.  When present, the
    ``prev_write_lsn`` block is always written first (``NO_LSN`` for a
    single-partition log) so the two exhaustion-gated trailing fields
    decode unambiguously.  Value logging leaves the frontier empty and
    the encoding byte-identical.
    """

    variable: str
    value: bytes
    version: int = 0
    prev_write_lsn: Optional[int] = None
    command_frontier: dict[str, tuple[int, int]] = field(default_factory=dict)
    kind: int = field(default=KIND_SV_CHECKPOINT, init=False)

    def encode(self) -> bytes:
        enc = (
            Encoder()
            .uint(self.kind)
            .text(self.variable)
            .raw(self.value)
            .uint(self.version)
        )
        if self.prev_write_lsn is not None or self.command_frontier:
            enc.uint(self.prev_write_lsn if self.prev_write_lsn is not None else NO_LSN)
        if self.command_frontier:
            enc.uint(len(self.command_frontier))
            for sid in sorted(self.command_frontier):
                lsn, ordinal = self.command_frontier[sid]
                enc.text(sid).uint(lsn).uint(ordinal)
        return enc.finish()


@dataclass
class SvOrderRecord:
    """Access-order logging (the paper's rejected §3.3 alternative [16]).

    Logs only *which version* of the variable an access observed or
    produced — no values.  Recovery must reconstruct shared state by
    re-executing every writer in the logged order, which couples the
    recoveries of otherwise independent sessions; this record type
    exists to measure that coupling (see the access-order ablation).
    """

    session_id: str
    variable: str
    #: For a read: the version observed.  For a write: the version the
    #: write produced (observed + 1).
    version: int
    is_write: bool
    prev_lsn: Optional[int] = None
    kind: int = field(default=KIND_SV_ORDER, init=False)

    def encode(self) -> bytes:
        enc = (
            Encoder()
            .uint(self.kind)
            .text(self.session_id)
            .text(self.variable)
            .uint(self.version)
            .boolean(self.is_write)
        )
        if self.prev_lsn is not None:
            enc.uint(self.prev_lsn)
        return enc.finish()


@dataclass
class SessionCheckpointRecord:
    """A session checkpoint (paper §3.2).

    Contains exactly what the paper lists: session variables, the
    buffered reply, the next expected request sequence number, and every
    outgoing session's next available sequence number — no control state
    (stacks, program counters), because checkpoints are only taken
    between requests.

    ``logging_mode`` is an optional trailing field written only when the
    session is not value-logging (DESIGN.md §16): recovery must know how
    to interpret the log suffix after this checkpoint — value records to
    reinstall, or command records to re-execute.  Value mode omits it,
    keeping the bytes identical to previous releases.
    """

    session_id: str
    variables: dict[str, bytes]
    buffered_reply: Optional[bytes]
    buffered_reply_seq: int
    next_expected_seq: int
    outgoing_next_seq: dict[str, int]  #: outgoing session id -> next seq
    buffered_reply_error: bool = False
    logging_mode: str = "value"
    kind: int = field(default=KIND_SESSION_CHECKPOINT, init=False)

    def encode(self) -> bytes:
        enc = Encoder().uint(self.kind).text(self.session_id)
        enc.uint(len(self.variables))
        for name in sorted(self.variables):
            enc.text(name).raw(self.variables[name])
        enc.boolean(self.buffered_reply is not None)
        if self.buffered_reply is not None:
            enc.raw(self.buffered_reply)
        enc.uint(self.buffered_reply_seq)
        enc.uint(self.next_expected_seq)
        enc.uint(len(self.outgoing_next_seq))
        for target in sorted(self.outgoing_next_seq):
            enc.text(target).uint(self.outgoing_next_seq[target])
        enc.boolean(self.buffered_reply_error)
        if self.logging_mode != "value":
            enc.uint(LOGGING_MODE_CODES[self.logging_mode])
        return enc.finish()


@dataclass
class MspCheckpointRecord:
    """The fuzzy MSP checkpoint (paper §3.4).

    "Mainly contains recovered state numbers of MSPs in the service
    domain, the LSN of each session's most recent checkpoint, and the
    LSN of each shared variable's most recent checkpoint."  For sessions
    and variables that have never been checkpointed we record the LSN of
    their first log record instead, so the minimal LSN still bounds the
    recovery scan.

    ``partition_ends`` is an optional trailing field written only by
    partitioned logs: the end offset of every partition at checkpoint
    time.  A partition none of the start-lsns name still needs a scan
    start and truncation floor — its end at the anchor point.  The
    single-partition log omits it (byte-identical encoding).

    ``session_chain_heads`` is a second optional trailing field written
    only in lazy recovery mode (DESIGN.md §15): each live session's
    backward-chain head (the lsn of its most recent chained record) at
    checkpoint time, ``NO_LSN`` for a freshly checkpointed chain.  The
    analysis scan seeds its chain heads from the anchored checkpoint and
    then advances them with every scanned record.  When present, the
    ``partition_ends`` block is always written first — even a
    single-partition log writes its (one-element) ends — so the two
    exhaustion-gated trailing fields decode unambiguously.  Eager mode
    leaves the heads empty and the encoding byte-identical.
    """

    recovered_snapshot: dict[str, dict[int, int]]
    session_start_lsns: dict[str, int]  #: session id -> scan-start LSN
    sv_start_lsns: dict[str, int]  #: variable -> scan-start LSN
    epoch: int = 0
    partition_ends: tuple[int, ...] = ()
    session_chain_heads: dict[str, int] = field(default_factory=dict)
    kind: int = field(default=KIND_MSP_CHECKPOINT, init=False)

    def min_lsn(self, own_lsn: int) -> int:
        """Start point of the crash-recovery log scan."""
        candidates = [own_lsn]
        candidates.extend(self.session_start_lsns.values())
        candidates.extend(self.sv_start_lsns.values())
        return min(candidates)

    def partition_floors(self, own_lsn: int) -> list[int]:
        """Per-partition scan starts / truncation floors (partitions>1).

        For each partition, the minimum offset among the start lsns
        that live in it; partitions nothing names default to their end
        at checkpoint time.  ``own_lsn`` is the checkpoint record's own
        (control-partition) lsn.  Session starts are scalar plsns (one
        session, one partition); shared-variable starts are packed
        frontiers (the chain spans the writers' partitions — see
        ``SharedVariable.scan_start_frontier``).
        """
        from repro.core.plsn import decode_frontier, is_frontier

        floors = list(self.partition_ends)
        candidates = [own_lsn]
        candidates.extend(self.session_start_lsns.values())
        candidates.extend(self.sv_start_lsns.values())
        for lsn in candidates:
            if is_frontier(lsn):
                for partition, offset in enumerate(decode_frontier(lsn)):
                    if partition < len(floors) and offset < floors[partition]:
                        floors[partition] = offset
                continue
            partition = lsn >> 48
            offset = lsn & ((1 << 48) - 1)
            if partition < len(floors) and offset < floors[partition]:
                floors[partition] = offset
        return floors

    def encode(self) -> bytes:
        enc = Encoder().uint(self.kind).uint(self.epoch)
        enc.uint(len(self.recovered_snapshot))
        for msp in sorted(self.recovered_snapshot):
            enc.text(msp)
            epochs = self.recovered_snapshot[msp]
            enc.uint(len(epochs))
            for ep in sorted(epochs):
                enc.uint(ep).uint(epochs[ep])
        enc.uint(len(self.session_start_lsns))
        for sid in sorted(self.session_start_lsns):
            enc.text(sid).uint(self.session_start_lsns[sid])
        enc.uint(len(self.sv_start_lsns))
        for name in sorted(self.sv_start_lsns):
            enc.text(name).uint(self.sv_start_lsns[name])
        if self.partition_ends or self.session_chain_heads:
            enc.uint(len(self.partition_ends))
            for end in self.partition_ends:
                enc.uint(end)
        if self.session_chain_heads:
            enc.uint(len(self.session_chain_heads))
            for sid in sorted(self.session_chain_heads):
                enc.text(sid).uint(self.session_chain_heads[sid])
        return enc.finish()


@dataclass
class EosRecord:
    """End-of-skip marker written at orphan-recovery end (paper §4.1).

    Points back at the orphan log record; everything between them is
    invisible to subsequent recoveries of this session.
    """

    session_id: str
    orphan_lsn: int
    kind: int = field(default=KIND_EOS, init=False)

    def encode(self) -> bytes:
        return Encoder().uint(self.kind).text(self.session_id).uint(self.orphan_lsn).finish()


@dataclass
class AnnouncementRecord:
    """Another MSP's recovery announcement, logged so the knowledge
    survives our own crashes (paper §4.3 scan step c)."""

    msp: str
    epoch: int
    recovered_lsn: int
    kind: int = field(default=KIND_ANNOUNCEMENT, init=False)

    def encode(self) -> bytes:
        return (
            Encoder()
            .uint(self.kind)
            .text(self.msp)
            .uint(self.epoch)
            .uint(self.recovered_lsn)
            .finish()
        )


@dataclass
class FillerRecord:
    """Storage padding modeling per-record serialization overhead.

    The paper's .NET prototype logs fatter records than our binary
    codec; the calibrated per-record overhead (see RecoveryConfig) is
    materialized as filler so sector accounting and checkpoint-threshold
    arithmetic match the paper's (~1.5 KB logged per request at MSP1,
    i.e. a session checkpoint every ~682 requests at the 1 MB
    threshold).  Recovery ignores fillers entirely.
    """

    size: int
    kind: int = field(default=KIND_FILLER, init=False)

    def encode(self) -> bytes:
        return _kind_len(KIND_FILLER, self.size) + b"\x00" * self.size


@dataclass
class SessionEndRecord:
    """Marks the end of a session's log records (paper §3.2)."""

    session_id: str
    kind: int = field(default=KIND_SESSION_END, init=False)

    def encode(self) -> bytes:
        return Encoder().uint(self.kind).text(self.session_id).finish()


LogRecord = (
    RequestRecord
    | CommandRecord
    | FillerRecord
    | ReplyRecord
    | SvOrderRecord
    | SvUpdateRecord
    | SvReadRecord
    | SvWriteRecord
    | SvCheckpointRecord
    | SessionCheckpointRecord
    | MspCheckpointRecord
    | EosRecord
    | AnnouncementRecord
    | SessionEndRecord
)


def _encode_optional_dv(enc: Encoder, dv: Optional[DependencyVector]) -> None:
    enc.boolean(dv is not None)
    if dv is not None:
        dv.encode_into(enc)


def _decode_optional_dv(dec: Decoder) -> Optional[DependencyVector]:
    if dec.boolean():
        return DependencyVector.decode_from(dec)
    return None


# -- compiled decoders for the high-frequency kinds ---------------------------


def _read_optional_dv(buf: Buffer, pos: int) -> tuple[Optional[DependencyVector], int]:
    flag, pos = read_uvarint(buf, pos)
    if flag == 0:
        return None, pos
    if flag != 1:
        raise CodecError(f"bad boolean value {flag}")
    return DependencyVector.decode_from_buffer(buf, pos)


def _read_optional_prev_lsn(buf: Buffer, pos: int) -> tuple[Optional[int], int]:
    """The lazy-mode trailing chain link (present iff bytes remain)."""
    if pos < len(buf):
        return read_uvarint(buf, pos)
    return None, pos


def _decode_request(buf: Buffer, pos: int) -> tuple[LogRecord, int]:
    session_id, pos = read_text_interned(buf, pos)
    seq, pos = read_uvarint(buf, pos)
    method, pos = read_text_interned(buf, pos)
    argument, pos = read_bytes(buf, pos)
    sender_dv, pos = _read_optional_dv(buf, pos)
    prev_lsn, pos = _read_optional_prev_lsn(buf, pos)
    return RequestRecord(session_id, seq, method, argument, sender_dv, prev_lsn), pos


def _decode_command(buf: Buffer, pos: int) -> tuple[LogRecord, int]:
    session_id, pos = read_text_interned(buf, pos)
    seq, pos = read_uvarint(buf, pos)
    method, pos = read_text_interned(buf, pos)
    argument, pos = read_bytes(buf, pos)
    sender_dv, pos = _read_optional_dv(buf, pos)
    prev_lsn, pos = _read_optional_prev_lsn(buf, pos)
    return CommandRecord(session_id, seq, method, argument, sender_dv, prev_lsn), pos


def _decode_reply(buf: Buffer, pos: int) -> tuple[LogRecord, int]:
    session_id, pos = read_text_interned(buf, pos)
    outgoing, pos = read_text_interned(buf, pos)
    seq, pos = read_uvarint(buf, pos)
    payload, pos = read_bytes(buf, pos)
    sender_dv, pos = _read_optional_dv(buf, pos)
    prev_lsn, pos = _read_optional_prev_lsn(buf, pos)
    return ReplyRecord(session_id, outgoing, seq, payload, sender_dv, prev_lsn), pos


def _decode_sv_read(buf: Buffer, pos: int) -> tuple[LogRecord, int]:
    session_id, pos = read_text_interned(buf, pos)
    variable, pos = read_text_interned(buf, pos)
    value, pos = read_bytes(buf, pos)
    dv, pos = DependencyVector.decode_from_buffer(buf, pos)
    prev_lsn, pos = _read_optional_prev_lsn(buf, pos)
    return SvReadRecord(session_id, variable, value, dv, prev_lsn), pos


def _decode_sv_write(buf: Buffer, pos: int) -> tuple[LogRecord, int]:
    session_id, pos = read_text_interned(buf, pos)
    variable, pos = read_text_interned(buf, pos)
    value, pos = read_bytes(buf, pos)
    dv, pos = DependencyVector.decode_from_buffer(buf, pos)
    prev_write_lsn, pos = read_uvarint(buf, pos)
    prev_lsn, pos = _read_optional_prev_lsn(buf, pos)
    return SvWriteRecord(session_id, variable, value, dv, prev_write_lsn, prev_lsn), pos


def _decode_sv_update(buf: Buffer, pos: int) -> tuple[LogRecord, int]:
    session_id, pos = read_text_interned(buf, pos)
    variable, pos = read_text_interned(buf, pos)
    old_value, pos = read_bytes(buf, pos)
    new_value, pos = read_bytes(buf, pos)
    variable_dv, pos = DependencyVector.decode_from_buffer(buf, pos)
    writer_dv, pos = DependencyVector.decode_from_buffer(buf, pos)
    prev_write_lsn, pos = read_uvarint(buf, pos)
    prev_lsn, pos = _read_optional_prev_lsn(buf, pos)
    return (
        SvUpdateRecord(
            session_id, variable, old_value, new_value, variable_dv, writer_dv,
            prev_write_lsn, prev_lsn,
        ),
        pos,
    )


def _decode_filler(buf: Buffer, pos: int) -> tuple[LogRecord, int]:
    # Skip the padding without materializing it — fillers dominate the
    # log volume when record_overhead_bytes is calibrated to the paper.
    size, pos = read_uvarint(buf, pos)
    end = pos + size
    if end > len(buf):
        raise CodecError(f"truncated bytes field (need {size}, have {len(buf) - pos})")
    return FillerRecord(size), end


_FAST_DECODERS: dict[int, Callable[[Buffer, int], tuple[LogRecord, int]]] = {
    KIND_REQUEST: _decode_request,
    KIND_COMMAND: _decode_command,
    KIND_REPLY: _decode_reply,
    KIND_SV_READ: _decode_sv_read,
    KIND_SV_WRITE: _decode_sv_write,
    KIND_SV_UPDATE: _decode_sv_update,
    KIND_FILLER: _decode_filler,
}


def decode_record(payload: Buffer) -> LogRecord:
    """Parse one log record from its encoded payload (bytes or view)."""
    if len(payload) > 0 and payload[0] < 0x80:
        fast = _FAST_DECODERS.get(payload[0])
        if fast is not None:
            try:
                record, pos = fast(payload, 1)
            except IndexError:
                # Inlined varint reads index past the end on truncated
                # input; report it like the chained Decoder would.
                raise CodecError("truncated varint") from None
            if pos != len(payload):
                raise CodecError(f"{len(payload) - pos} trailing bytes after decode")
            return record
    return _decode_record_general(payload)


def _decode_record_general(payload: Buffer) -> LogRecord:
    """General chained-Decoder path (checkpoints and rare kinds)."""
    dec = Decoder(payload)
    kind = dec.uint()
    if kind == KIND_REQUEST:
        record: LogRecord = RequestRecord(
            session_id=dec.text(),
            seq=dec.uint(),
            method=dec.text(),
            argument=dec.raw(),
            sender_dv=_decode_optional_dv(dec),
        )
        if not dec.exhausted:
            record.prev_lsn = dec.uint()
    elif kind == KIND_COMMAND:
        record = CommandRecord(
            session_id=dec.text(),
            seq=dec.uint(),
            method=dec.text(),
            argument=dec.raw(),
            sender_dv=_decode_optional_dv(dec),
        )
        if not dec.exhausted:
            record.prev_lsn = dec.uint()
    elif kind == KIND_REPLY:
        record = ReplyRecord(
            session_id=dec.text(),
            outgoing_session_id=dec.text(),
            seq=dec.uint(),
            payload=dec.raw(),
            sender_dv=_decode_optional_dv(dec),
        )
        if not dec.exhausted:
            record.prev_lsn = dec.uint()
    elif kind == KIND_SV_READ:
        record = SvReadRecord(
            session_id=dec.text(),
            variable=dec.text(),
            value=dec.raw(),
            variable_dv=DependencyVector.decode_from(dec),
        )
        if not dec.exhausted:
            record.prev_lsn = dec.uint()
    elif kind == KIND_SV_WRITE:
        record = SvWriteRecord(
            session_id=dec.text(),
            variable=dec.text(),
            value=dec.raw(),
            writer_dv=DependencyVector.decode_from(dec),
            prev_write_lsn=dec.uint(),
        )
        if not dec.exhausted:
            record.prev_lsn = dec.uint()
    elif kind == KIND_SV_CHECKPOINT:
        record = SvCheckpointRecord(variable=dec.text(), value=dec.raw(), version=dec.uint())
        if not dec.exhausted:
            prev = dec.uint()
            record.prev_write_lsn = None if prev == NO_LSN else prev
        if not dec.exhausted:
            for _ in range(dec.uint()):
                sid = dec.text()
                record.command_frontier[sid] = (dec.uint(), dec.uint())
    elif kind == KIND_SESSION_CHECKPOINT:
        session_id = dec.text()
        variables = {}
        for _ in range(dec.uint()):
            name = dec.text()
            variables[name] = dec.raw()
        buffered_reply = dec.raw() if dec.boolean() else None
        record = SessionCheckpointRecord(
            session_id=session_id,
            variables=variables,
            buffered_reply=buffered_reply,
            buffered_reply_seq=dec.uint(),
            next_expected_seq=dec.uint(),
            outgoing_next_seq={dec.text(): dec.uint() for _ in range(dec.uint())},
            buffered_reply_error=dec.boolean(),
        )
        if not dec.exhausted:
            record.logging_mode = LOGGING_MODE_NAMES[dec.uint()]
    elif kind == KIND_MSP_CHECKPOINT:
        epoch = dec.uint()
        recovered: dict[str, dict[int, int]] = {}
        for _ in range(dec.uint()):
            msp = dec.text()
            recovered[msp] = {dec.uint(): dec.uint() for _ in range(dec.uint())}
        session_start = {dec.text(): dec.uint() for _ in range(dec.uint())}
        sv_start = {dec.text(): dec.uint() for _ in range(dec.uint())}
        ends: tuple[int, ...] = ()
        if not dec.exhausted:
            ends = tuple(dec.uint() for _ in range(dec.uint()))
        chain_heads: dict[str, int] = {}
        if not dec.exhausted:
            chain_heads = {dec.text(): dec.uint() for _ in range(dec.uint())}
        record = MspCheckpointRecord(
            recovered_snapshot=recovered,
            session_start_lsns=session_start,
            sv_start_lsns=sv_start,
            epoch=epoch,
            partition_ends=ends,
            session_chain_heads=chain_heads,
        )
    elif kind == KIND_EOS:
        record = EosRecord(session_id=dec.text(), orphan_lsn=dec.uint())
    elif kind == KIND_ANNOUNCEMENT:
        record = AnnouncementRecord(msp=dec.text(), epoch=dec.uint(), recovered_lsn=dec.uint())
    elif kind == KIND_SESSION_END:
        record = SessionEndRecord(session_id=dec.text())
    elif kind == KIND_FILLER:
        record = FillerRecord(size=len(dec.raw()))
    elif kind == KIND_SV_ORDER:
        record = SvOrderRecord(
            session_id=dec.text(),
            variable=dec.text(),
            version=dec.uint(),
            is_write=dec.boolean(),
        )
        if not dec.exhausted:
            record.prev_lsn = dec.uint()
    elif kind == KIND_SV_UPDATE:
        record = SvUpdateRecord(
            session_id=dec.text(),
            variable=dec.text(),
            old_value=dec.raw(),
            new_value=dec.raw(),
            variable_dv=DependencyVector.decode_from(dec),
            writer_dv=DependencyVector.decode_from(dec),
            prev_write_lsn=dec.uint(),
        )
        if not dec.exhausted:
            record.prev_lsn = dec.uint()
    else:
        raise ValueError(f"unknown log record kind {kind}")
    dec.expect_end()
    return record


def session_of(record: LogRecord) -> Optional[str]:
    """The owning session for records that belong to a position stream."""
    if isinstance(
        record,
        (RequestRecord, CommandRecord, ReplyRecord, SvReadRecord, SvWriteRecord,
         SvUpdateRecord, SvOrderRecord),
    ):
        return record.session_id
    return None
