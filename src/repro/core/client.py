"""End-client runtime (paper §2.1, §3.1, §5.4).

End clients live outside every service domain.  The client half of the
exactly-once protocol: per session a *next available request sequence
number*, resend of the same request until its reply arrives, filtering
of duplicate replies, and the 100 ms sleep-and-resend when the server
answers "busy" because it is checkpointing or recovering.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import CostModel
from repro.core.messages import Reply, Request
from repro.net import Network
from repro.sim import Resource, SimTimeoutError, Simulator


@dataclass
class CallResult:
    """Outcome of one exactly-once client call."""

    payload: bytes
    response_time_ms: float
    attempts: int = 1
    busy_retries: int = 0
    #: True when the server permanently rejected the request (unknown
    #: method); retrying would not help.
    error: bool = False


@dataclass
class ClientStats:
    calls: int = 0
    resends: int = 0
    busy_retries: int = 0
    duplicate_replies: int = 0
    total_response_ms: float = 0.0
    response_times: list = field(default_factory=list)

    @property
    def mean_response_ms(self) -> float:
        return self.total_response_ms / self.calls if self.calls else 0.0

    @property
    def max_response_ms(self) -> float:
        return max(self.response_times) if self.response_times else 0.0


class EndClient:
    """A client machine hosting one or more client sessions."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        costs: Optional[CostModel] = None,
        resend_timeout_ms: float = 100.0,
        busy_sleep_ms: float = 100.0,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.node = network.node(name)
        self.costs = costs or CostModel()
        self.resend_timeout_ms = resend_timeout_ms
        self.busy_sleep_ms = busy_sleep_ms
        self.cpu = Resource(sim, capacity=1, name=f"cpu.{name}")
        self.stats = ClientStats()
        self._session_ids = itertools.count()

    def open_session(self, msp_name: str, session_id: Optional[str] = None) -> "ClientSession":
        """Start a session with ``msp_name`` (started lazily by the
        first request, as in the paper)."""
        if session_id is None:
            session_id = f"{self.name}#{next(self._session_ids)}"
        return ClientSession(self, msp_name, session_id)

    def _spend_cpu(self, ms: float):
        yield from self.cpu.acquire()
        try:
            yield ms
        finally:
            self.cpu.release()


class ClientSession:
    """The client side of one session: sequence numbers and resends."""

    def __init__(self, client: EndClient, msp_name: str, session_id: str):
        self.client = client
        self.msp_name = msp_name
        self.id = session_id
        self.next_seq = 0
        self._reply_port = f"reply:{session_id}"
        self._inbox = client.node.bind(self._reply_port)

    def call(self, method: str, argument: bytes):
        """Invoke ``method`` exactly once (generator; returns CallResult)."""
        result = yield from self._exchange(method, argument, end_session=False)
        return result

    def end(self):
        """End the session at the server (generator; returns CallResult)."""
        result = yield from self._exchange("", b"", end_session=True)
        self.client.node.unbind(self._reply_port)
        return result

    def _exchange(self, method: str, argument: bytes, end_session: bool):
        client = self.client
        sim = client.sim
        seq = self.next_seq
        request = Request(
            session_id=self.id,
            seq=seq,
            method=method,
            argument=bytes(argument),
            reply_to=client.name,
            reply_port=self._reply_port,
            end_session=end_session,
        )
        started_at = sim.now
        attempts = 0
        busy_retries = 0
        while True:
            attempts += 1
            yield from client._spend_cpu(client.costs.client_stack_ms)
            client.node.send(
                self.msp_name, "request", request, request.wire_size()
            )
            reply = yield from self._await_reply(seq)
            if reply is None:
                client.stats.resends += 1
                continue
            if reply.busy:
                # Paper §5.4: "it sleeps for 100 ms and resends".
                busy_retries += 1
                client.stats.busy_retries += 1
                yield client.busy_sleep_ms
                continue
            break  # definitive reply (success or permanent error)
        self.next_seq = seq + 1
        elapsed = sim.now - started_at
        client.stats.calls += 1
        client.stats.total_response_ms += elapsed
        client.stats.response_times.append(elapsed)
        return CallResult(
            payload=reply.payload,
            response_time_ms=elapsed,
            attempts=attempts,
            busy_retries=busy_retries,
            error=reply.error,
        )

    def _await_reply(self, seq: int):
        """Wait up to the resend timeout for the reply to ``seq``.

        Stale duplicate replies are drained without resending (resending
        on every stale reply can outpace the drain and livelock under
        network duplication).  Returns the reply or None on timeout.
        """
        client = self.client
        deadline = client.sim.now + client.resend_timeout_ms
        while True:
            remaining = deadline - client.sim.now
            if remaining <= 0:
                return None
            try:
                envelope = yield from self._inbox.get_with_timeout(remaining)
            except SimTimeoutError:
                return None
            reply: Reply = envelope.payload
            if reply.seq != seq:
                client.stats.duplicate_replies += 1
                continue
            return reply
