"""The Middleware Server Process (paper §2).

A :class:`MiddlewareServer` hosts service methods behind a request queue
and a thread pool, maintains session state and shared variables, logs
nondeterministic events to its single shared physical log, and recovers
from crashes.  The normal-execution message actions follow paper Fig. 7,
shared-variable accesses follow Fig. 8, and the crash lifecycle is:

    start() -> crash() -> restart() [runs Fig. 12 crash recovery]

Service methods are generator functions ``method(ctx, argument: bytes)``
returning reply bytes; they interact with the world only through the
:class:`~repro.core.context.ServiceContext` they are given, which is how
the same business code runs identically in normal execution and in
logged-request replay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.core.checkpoint import (
    maybe_session_checkpoint,
    msp_checkpoint_daemon,
    sv_checkpoint,
)
from repro.core.config import LoggingMode, RecoveryConfig
from repro.core.context import BUSY_RETRY_SLEEP_MS, NormalContext, _await_reply
from repro.core.crash_recovery import recover_msp, recover_session
from repro.core.domain import ServiceDomainConfig
from repro.core.dv import RecoveryTable
from repro.core.errors import FlushFailed, OrphanDetected, SessionProtocolError
from repro.core.flush import distributed_flush, flush_service
from repro.core.log_manager import LogManager
from repro.core.messages import (
    AnnouncementAck,
    RecoveryAnnouncement,
    Reply,
    Request,
)
from repro.core.records import (
    AnnouncementRecord,
    CommandRecord,
    LogRecord,
    RequestRecord,
    SessionEndRecord,
)
from repro.core.replay import run_session_recovery
from repro.core.session import Session, SessionStatus
from repro.core.shared_variable import SharedVariable
from repro.net import Network
from repro.sim import ProcessGroup, Resource, RngRegistry, Simulator
from repro.storage import Disk, DiskModel, StableStore

ServiceMethod = Callable[..., Generator]


@dataclass
class MspStats:
    """Everything the experiment harness reads off one MSP."""

    requests_processed: int = 0
    requests_duplicate: int = 0
    requests_out_of_order: int = 0
    #: Resent session ends acked idempotently after the session was
    #: already discarded (the first ack was lost in transit).
    duplicate_end_acks: int = 0
    busy_replies: int = 0
    buffered_reply_resends: int = 0
    orphan_messages_discarded: int = 0
    distributed_flushes: int = 0
    #: Flush acks discarded because their req_id did not match the
    #: in-flight request (duplicate deliveries, timeout-raced replies).
    stale_flush_acks: int = 0
    session_checkpoints: int = 0
    sv_checkpoints: int = 0
    msp_checkpoints: int = 0
    forced_checkpoints: int = 0
    crashes: int = 0
    recoveries: int = 0
    protocol_errors: int = 0
    orphan_recoveries: int = 0
    sv_rollbacks: int = 0
    replayed_requests: int = 0
    recovery_scan_records: int = 0
    recovery_scan_ms: float = 0.0
    #: Lazy recovery (DESIGN.md §15): chains replayed on demand, split
    #: by trigger (an arriving request vs the background pump).
    lazy_recoveries: int = 0
    inline_recoveries: int = 0
    pump_recoveries: int = 0
    #: Invariant counter — a request entering normal processing while
    #: its session's chain was still unreplayed.  Must stay 0.
    served_before_recovery: int = 0
    #: Command/value adaptive logging (DESIGN.md §16): requests logged
    #: as command records, commands re-executed at replay, and adaptive
    #: policy mode switches.
    command_requests: int = 0
    replayed_commands: int = 0
    mode_switches: int = 0
    #: Sessions ended server-side by the idle-expiry sweep
    #: (config.session_idle_timeout_ms).
    sessions_expired: int = 0
    #: Ends propagated to implicit downstream hop sessions when a
    #: session of ours ended (client end or expiry), split by outcome:
    #: acknowledged by the downstream MSP vs abandoned after the retry
    #: budget (idle expiry remains the backstop there).
    downstream_ends_sent: int = 0
    downstream_ends_abandoned: int = 0


class MiddlewareServer:
    """One recoverable middleware server process on its own node."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        name: str,
        domains: ServiceDomainConfig,
        config: Optional[RecoveryConfig] = None,
        rng: Optional[RngRegistry] = None,
        disk_model: Optional[DiskModel] = None,
    ):
        self.sim = sim
        self.network = network
        self.name = name
        self.domains = domains
        self.config = config or RecoveryConfig()
        self.node = network.node(name)
        rng = rng or RngRegistry(0)
        # One store+disk pair per log partition (DESIGN.md §14); element
        # 0 is the control partition and keeps the historical names so
        # a partitions=1 run is indistinguishable from the old layout.
        nparts = max(1, self.config.log_partitions)
        self.disks = [
            Disk(
                sim,
                model=disk_model or DiskModel(),
                rng=rng.stream(f"disk.{name}" if i == 0 else f"disk.{name}.p{i}"),
                name=f"disk.{name}" if i == 0 else f"disk.{name}.p{i}",
            )
            for i in range(nparts)
        ]
        self.stores = [
            StableStore(
                name=f"log.{name}" if i == 0 else f"log.{name}.p{i}",
                segment_bytes=self.config.log_segment_bytes,
            )
            for i in range(nparts)
        ]
        self.disk = self.disks[0]
        self.store = self.stores[0]
        self._cpu = Resource(sim, capacity=self.config.cpu_cores, name=f"cpu.{name}")
        self.table = RecoveryTable()
        self.epoch = 0
        self.sessions: dict[str, Session] = {}
        self.shared: dict[str, SharedVariable] = {}
        self._services: dict[str, ServiceMethod] = {}
        self._shared_registry: dict[str, bytes] = {}
        self.log: Optional[LogManager] = None
        self.group: Optional[ProcessGroup] = None
        self.running = False
        self.stats = MspStats()
        #: Lazy recovery mode (DESIGN.md §15): thread per-session
        #: backward-chain links through the log and recover sessions on
        #: demand after a crash.  Cached — the mode is fixed per run.
        self.lazy_mode = self.config.recovery_mode == "lazy"
        #: Command/value adaptive logging (DESIGN.md §16), cached like
        #: ``lazy_mode``: ``command_mode`` fixes every session to
        #: command logging; ``adaptive_mode`` lets the per-session
        #: policy pick (sessions start in value mode).
        self.command_mode = self.config.logging_mode == "command"
        self.adaptive_mode = self.config.logging_mode == "adaptive"
        # Ablation support: the single MSP-wide DV (see session_for).
        from repro.core.dv import DependencyVector

        self._msp_wide_dv = DependencyVector()

    # ------------------------------------------------------------------
    # program registration (done once, before start)
    # ------------------------------------------------------------------

    def register_service(self, name: str, method: ServiceMethod) -> None:
        """Register generator function ``method(ctx, argument)``."""
        self._services[name] = method

    def register_shared(self, name: str, initial_value: bytes) -> None:
        """Declare a shared variable with its deterministic initial value."""
        self._shared_registry[name] = bytes(initial_value)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def recoverable(self) -> bool:
        return self.config.mode is LoggingMode.RECOVERABLE

    def start(self):
        """Boot the server (generator).  A cold boot on an empty log; if
        the log holds durable state, runs full crash recovery instead.

        Prefer :meth:`start_process`/:meth:`restart_process`: they run
        the boot *inside* the MSP's process group, so a crash during
        recovery kills the recovery itself — a half-finished recovery
        surviving a second crash would resurrect stale state.
        """
        if self.running:
            raise SessionProtocolError(f"{self.name} already running")
        if self.config.recovery_mode not in ("eager", "lazy"):
            raise SessionProtocolError(
                f"unknown recovery_mode {self.config.recovery_mode!r}; "
                "choose 'eager' or 'lazy'"
            )
        if self.lazy_mode and self.config.sv_logging != "value":
            # Access-order recovery couples every session's replay
            # through the per-variable access sequence — the opposite of
            # the independent per-chain replays lazy mode relies on.
            raise SessionProtocolError(
                "lazy recovery requires value logging (sv_logging='value')"
            )
        if self.config.logging_mode not in ("value", "command", "adaptive"):
            raise SessionProtocolError(
                f"unknown logging_mode {self.config.logging_mode!r}; "
                "choose 'value', 'command' or 'adaptive'"
            )
        if self.config.logging_mode != "value" and self.config.sv_logging != "value":
            # Command replay re-executes handlers against recovered SV
            # state; access-order recovery rebuilds SVs by replaying the
            # logged access sequence — the two re-execution disciplines
            # cannot interleave on one variable.
            raise SessionProtocolError(
                "command/adaptive logging requires sv_logging='value'"
            )
        if self.recoverable and self.config.sv_logging == "access-order":
            # The ablation supports crash recovery of standalone MSPs
            # only: checkpoints would cut the access chains replay must
            # re-execute, and optimistic domains would need the very
            # orphan machinery value logging exists to simplify.
            problems = []
            if self.domains.peers_of(self.name):
                problems.append("MSP must not be in a multi-MSP service domain")
            if self.config.session_ckpt_threshold_bytes is not None:
                problems.append("session checkpointing must be disabled")
            if self.config.sv_ckpt_write_threshold < 10**9:
                problems.append("shared-variable checkpointing must be disabled")
            if problems:
                raise SessionProtocolError(
                    "access-order logging ablation: " + "; ".join(problems)
                )
        if self.group is None:
            self.group = ProcessGroup(self.name)
        self.log = LogManager(
            self.sim,
            self.stores,
            self.disks,
            name=f"log.{self.name}",
            batch_flush_timeout_ms=self.config.batch_flush_timeout_ms,
            max_block_sectors=self.config.max_block_sectors,
            read_chunk_sectors=self.config.read_chunk_sectors,
            cpu=self.cpu,
            flush_cpu_ms=self.config.costs.flush_cpu_ms,
            record_overhead_bytes=self.config.log_record_overhead_bytes,
            owner=self.name,
        )
        self.log.start(group=self.group)
        self.sessions = {}
        self.shared = {
            name: SharedVariable(self.sim, name, value)
            for name, value in self._shared_registry.items()
        }
        if self.recoverable and self.config.logging_mode != "value":
            # Orphan rollback must be able to undo unlogged command
            # effects; enable the in-memory history before any apply
            # (including the recovery scan's) so every write is covered.
            for sv in self.shared.values():
                sv.track_history = True
        needs_recovery = self.recoverable and (
            any(store.durable_end > 0 for store in self.stores)
            or self.log.read_anchor() is not None
        )
        if needs_recovery:
            self.stats.recoveries += 1
            yield from recover_msp(self)
        elif self.recoverable:
            # First boot: durably anchor an initial MSP checkpoint
            # *before* accepting work.  Without this boot record, a
            # crash before the first flush would restart us with an
            # empty log and no way to know we crashed — we would reuse
            # epoch 0 while other MSPs hold dependencies on the lost
            # buffered records, and never announce their loss.
            from repro.core.checkpoint import perform_msp_checkpoint

            yield from perform_msp_checkpoint(self)
        self._open_for_business()

    def start_process(self):
        """Spawn :meth:`start` inside the MSP's group and return it."""
        if self.group is None:
            self.group = ProcessGroup(self.name)
        return self.sim.spawn(self.start(), name=f"{self.name}.start", group=self.group)

    def _open_for_business(self) -> None:
        """Bind ports and spawn daemons + the worker pool."""
        inbox = self.node.bind("request")
        for i in range(self.config.thread_pool_size):
            self.sim.spawn(
                self._worker(inbox), name=f"{self.name}.worker{i}", group=self.group
            )
        if self.recoverable:
            self.sim.spawn(
                flush_service(self), name=f"{self.name}.flushsvc", group=self.group
            )
            self.sim.spawn(
                self._announcement_service(),
                name=f"{self.name}.annsvc",
                group=self.group,
            )
            self.sim.spawn(
                msp_checkpoint_daemon(self),
                name=f"{self.name}.ckptd",
                group=self.group,
            )
        self.running = True
        self.sim.probe("msp.open", owner=self.name)

    def crash(self) -> None:
        """Fail-stop: kill every thread, lose all volatile state.

        The flushed log prefix (and the durable anchor) survive; nothing
        else does.
        """
        if not self.running and self.group is None:
            return
        self.stats.crashes += 1
        if self.sim.tracer is not None:
            self.sim.tracer.instant("msp.crash", owner=self.name, epoch=self.epoch)
        if self.group is not None:
            self.group.kill_all()
        for store in self.stores:
            store.crash()
        self.node.unbind_all()
        self.sessions = {}
        self.shared = {}
        self.log = None
        self.group = None
        self.running = False

    def restart(self):
        """Boot after a crash (generator): runs Fig. 12 crash recovery."""
        yield self.config.restart_delay_ms
        yield from self.start()

    def restart_process(self):
        """Spawn :meth:`restart` inside a fresh group and return it.

        The restart lives in the group, so a further crash while the
        recovery is still in progress kills it cleanly; the restart
        after *that* crash recovers from the durable log alone.
        """
        if self.group is None:
            self.group = ProcessGroup(self.name)
        return self.sim.spawn(
            self.restart(), name=f"{self.name}.restart", group=self.group
        )

    # ------------------------------------------------------------------
    # low-level helpers shared by the whole package
    # ------------------------------------------------------------------

    def cpu(self, ms: float):
        """Consume ``ms`` of CPU on this server (generator; queues on
        the core pool, so CPU contention is modeled)."""
        if ms <= 0:
            return
        yield from self._cpu.acquire()
        try:
            yield ms
        finally:
            self._cpu.release()

    def cpu_utilization(self, since: float = 0.0) -> float:
        return self._cpu.utilization(since=since)

    def send(self, destination: str, port: str, payload) -> None:
        self.node.send(destination, port, payload, payload.wire_size())

    def append_session_record(self, session: Session, record: LogRecord):
        """Log a record on behalf of ``session`` (generator).

        Charges the append CPU, updates the session's state number, DV
        self-entry, position stream and checkpoint accounting, and pays
        the occasional position-buffer spill.
        Returns ``(lsn, size)``.
        """
        yield from self.cpu(self.config.costs.log_append_ms)
        if self.lazy_mode:
            record.prev_lsn = session.chain_lsn
        lsn, size = self.log.append(record)
        if self.lazy_mode:
            session.chain_lsn = lsn
        spill_due = session.account_record(lsn, size, self.epoch)
        if spill_due:
            yield from session.position_stream.spill(self.disk)
        return lsn, size

    def append_write_record(self, session: Session, record: LogRecord):
        """Log a shared-variable write (generator).

        The record enters the session's position stream (replay skips
        it) and counts toward its checkpoint threshold, but does *not*
        advance the session's state number — a write changes the
        variable's state number, not the session's (paper Fig. 8).
        """
        yield from self.cpu(self.config.costs.log_append_ms)
        if self.lazy_mode:
            record.prev_lsn = session.chain_lsn
        lsn, size = self.log.append(record)
        if self.lazy_mode:
            session.chain_lsn = lsn
        if session.first_lsn is None:
            session.first_lsn = lsn
        session.bytes_since_ckpt += size
        session.bytes_since_eval += size
        if session.position_stream.append(lsn):
            yield from session.position_stream.spill(self.disk)
        return lsn, size

    def check_session_orphan(self, session: Session) -> None:
        """Interception-point orphan check (paper §4.1); raises."""
        if self.recoverable and session.is_orphan(self.table):
            raise OrphanDetected(f"session {session.id}")

    def learn_recovery_knowledge(self, snapshot) -> None:
        """Merge recovered-state-number knowledge from any source
        (announcement, ack, or flush-reply piggyback) and start orphan
        recovery for idle sessions the new knowledge convicts."""
        fresh = self.table.merge(RecoveryTable.from_snapshot(snapshot))
        if not fresh:
            return
        for session in list(self.sessions.values()):
            if (
                not session.busy
                and session.status is SessionStatus.NORMAL
                and session.is_orphan(self.table)
            ):
                self._ensure_recovery(session)

    def distributed_flush(self, session_or_dv, subject: str):
        """Run a distributed flush for a DV (generator; raises
        :class:`FlushFailed` and therefore signals orphanhood)."""
        yield from distributed_flush(self, session_or_dv, subject)

    def session_for(self, session_id: str, create: bool = True) -> Optional[Session]:
        session = self.sessions.get(session_id)
        if session is None and create:
            session = Session(
                session_id,
                self.name,
                buffer_capacity=self.config.position_buffer_capacity,
            )
            if not self.config.per_session_dv:
                # Ablation: one DV shared by every session.  A remote
                # crash then orphans all sessions together ("all its
                # sessions will roll back, possibly unnecessarily",
                # paper S3.2) -- the cost the per-session design avoids.
                session.dv = self._msp_wide_dv
            if self.command_mode:
                session.logging_mode = "command"
            self.sessions[session_id] = session
        return session

    def shared_variable(self, name: str) -> SharedVariable:
        try:
            return self.shared[name]
        except KeyError:
            raise SessionProtocolError(
                f"{self.name}: unknown shared variable {name!r}"
            ) from None

    def service(self, name: str) -> ServiceMethod:
        try:
            return self._services[name]
        except KeyError:
            raise SessionProtocolError(f"{self.name}: unknown service {name!r}") from None

    # ------------------------------------------------------------------
    # request handling (the worker pool)
    # ------------------------------------------------------------------

    def _worker(self, inbox):
        while True:
            envelope = yield from inbox.get()
            request = envelope.payload
            tracer = self.sim.tracer
            span = None
            if tracer is not None:
                # Per-session request heat — the lazy recovery pump's
                # hot-first priority signal (DESIGN.md §15).
                tracer.metrics.inc(f"heat.session.{request.session_id}")
                span = tracer.span(
                    "msp.request",
                    owner=self.name,
                    session=request.session_id,
                    seq=request.seq,
                    method=request.method,
                )
            try:
                yield from self._handle_request(request)
            except SessionProtocolError:
                # A programming error in a service method (bad return
                # type, replay divergence surfacing late).  Losing one
                # request is bad; losing the worker thread forever is
                # worse.
                self.stats.protocol_errors += 1
            finally:
                if span is not None:
                    span.end()

    def _handle_request(self, request: Request):
        costs = self.config.costs
        self.sim.probe("msp.request", owner=self.name)
        yield from self.cpu(costs.message_stack_ms + costs.request_dispatch_ms)
        if (
            request.end_session
            and request.seq > 0
            and request.session_id not in self.sessions
        ):
            # A resent session end whose ack was lost in transit: seqs
            # 0..seq-1 were all acked (the client is strictly
            # sequential), so the session existed and only the end
            # itself — or the idle sweep — can have removed it.  Ending
            # is idempotent: ack again WITHOUT resurrecting the session.
            # A fresh session object would classify the resend as
            # out-of-order and drop it silently, deadlocking the
            # client's resend loop forever.
            self.stats.duplicate_end_acks += 1
            yield from self._send_reply(
                request, Reply(request.session_id, request.seq, b"")
            )
            return
        session = self.session_for(request.session_id)
        session.last_active_ms = self.sim.now

        if session.lazy_pending:
            # Lazy restart (DESIGN.md §15): first contact with an
            # unrecovered session replays its chain inline, then falls
            # through — duplicate detection below runs against the
            # restored exactly-once state.  A concurrent request for the
            # same session sees RECOVERING and gets a busy reply.
            self.stats.inline_recoveries += 1
            yield from recover_session(self, session)

        if session.status is not SessionStatus.NORMAL:
            # Checkpointing or recovering: tell the client to retry
            # (paper §5.4: it sleeps 100 ms and resends).
            self.stats.busy_replies += 1
            yield from self._send_reply(
                request, Reply(request.session_id, request.seq, b"", busy=True)
            )
            return

        # Duplicate / out-of-order detection (paper §3.1).
        if request.seq < session.next_expected_seq:
            self.stats.requests_duplicate += 1
            # Interception point: the buffered reply is part of the
            # session state; if the session is an orphan, recover it
            # instead of propagating orphan data.
            if self.recoverable and session.is_orphan(self.table):
                self._ensure_recovery(session)
                return
            if request.seq == session.buffered_reply_seq:
                self.stats.buffered_reply_resends += 1
                try:
                    yield from self._resend_buffered_reply(request, session)
                except (FlushFailed, OrphanDetected):
                    # The recovered reply depends on state lost in a
                    # remote crash: the session is an orphan.  Recover
                    # it; the client keeps resending meanwhile.
                    self._ensure_recovery(session)
            return
        if request.seq > session.next_expected_seq:
            if self.recoverable:
                self.stats.requests_out_of_order += 1
                return
            # NOLOG baselines do not recover protocol state: after a
            # crash the server restarts at seq 0 while the client is
            # further along.  Accept the gap -- these configurations
            # make no exactly-once promise (that is the paper's point).
            session.next_expected_seq = request.seq
        if session.busy:
            # A duplicate of the in-flight request: drop it; the client
            # is still waiting for the real reply.
            self.stats.requests_duplicate += 1
            return

        # Interception point: has this session become an orphan?
        if self.recoverable and session.is_orphan(self.table):
            self.stats.busy_replies += 1
            yield from self._send_reply(
                request, Reply(request.session_id, request.seq, b"", busy=True)
            )
            self._ensure_recovery(session)
            return

        session.busy = True
        try:
            yield from self._process_new_request(request, session)
        except OrphanDetected:
            session.busy = False
            self._ensure_recovery(session)
            return
        except FlushFailed:
            session.busy = False
            self._ensure_recovery(session)
            return
        finally:
            session.busy = False

        # Between requests: take a session checkpoint if due (§3.2),
        # then let the adaptive policy re-decide the logging mode.
        if self.recoverable and session.id in self.sessions:
            yield from maybe_session_checkpoint(self, session)
            self._maybe_adapt_mode(session)

    def _process_new_request(self, request: Request, session: Session):
        if session.lazy_pending:
            # Never reached if the lazy machinery is correct: a request
            # must not execute against a not-yet-replayed session.
            self.stats.served_before_recovery += 1
        costs = self.config.costs
        # Fig. 7 "after receive" actions.
        if self.recoverable:
            if request.sender_dv is not None:
                request.sender_dv.prune_resolved(self.table)
                if self.table.is_orphan(request.sender_dv):
                    # Orphan message: discard and stop.  The sender will
                    # be recovered by its own MSP and resend.
                    self.stats.orphan_messages_discarded += 1
                    return
            # Command mode (DESIGN.md §16): the request record *is* the
            # command — same fields, distinct kind so replay knows to
            # re-execute RMW effects instead of consuming value records.
            record_cls = (
                CommandRecord if session.logging_mode == "command" else RequestRecord
            )
            record = record_cls(
                session_id=session.id,
                seq=request.seq,
                method=request.method,
                argument=request.argument,
                sender_dv=request.sender_dv,
            )
            lsn, _size = yield from self.append_session_record(session, record)
            if record_cls is CommandRecord:
                session.command_lsn = lsn
                self.stats.command_requests += 1
            else:
                session.command_lsn = None
            if request.sender_dv is not None:
                yield from self.cpu(costs.dv_track_ms)
                session.dv.merge(request.sender_dv)

        if request.end_session:
            yield from self._end_session(request, session)
            return

        if request.method not in self._services:
            # Unknown method: a permanent, deterministic error.  The
            # request was logged like any other (so replay reproduces
            # the same outcome), it consumes the sequence number, and
            # the client is told not to retry.
            self.stats.protocol_errors += 1
            reply = Reply(session.id, request.seq, b"unknown method", error=True)
            if self.recoverable and self.domains.same_domain(self.name, request.reply_to):
                reply.sender_dv = session.dv.copy()
            elif self.recoverable:
                yield from self.distributed_flush(session.dv, f"session {session.id}")
            yield from self._send_reply(request, reply)
            session.buffered_reply = reply.payload
            session.buffered_reply_seq = request.seq
            session.buffered_reply_error = True
            session.next_expected_seq = request.seq + 1
            return

        yield from self._before_method(session)
        ctx = NormalContext(self, session)
        method = self.service(request.method)
        if self.adaptive_mode:
            session.call_ms_accum = 0.0
            exec_started = self.sim.now
        result = yield from method(ctx, request.argument)
        yield from self._after_method(session)
        if self.adaptive_mode:
            # Replay-cost estimate: wall time minus outgoing-call time
            # (replay answers calls from logged replies, so the network
            # round trips vanish; CPU, locks and appends remain a fair
            # proxy for re-execution cost).  EWMA so one slow request
            # cannot flip the mode.
            exec_ms = self.sim.now - exec_started - session.call_ms_accum
            if session.observed_exec_ms == 0.0:
                session.observed_exec_ms = exec_ms
            else:
                session.observed_exec_ms += 0.3 * (exec_ms - session.observed_exec_ms)
            session.requests_since_eval += 1
        if not isinstance(result, bytes):
            raise SessionProtocolError(
                f"{self.name}.{request.method} returned {type(result).__name__}, "
                "expected bytes"
            )

        reply = Reply(session_id=session.id, seq=request.seq, payload=result)
        # Fig. 7 "before send" actions for the reply.
        if self.recoverable:
            if self.domains.same_domain(self.name, request.reply_to):
                yield from self.cpu(costs.dv_track_ms)
                reply.sender_dv = session.dv.copy()
            else:
                yield from self.distributed_flush(session.dv, f"session {session.id}")

        yield from self._send_reply(request, reply)
        session.buffered_reply = result
        session.buffered_reply_seq = request.seq
        session.buffered_reply_error = False
        session.next_expected_seq = request.seq + 1
        self.stats.requests_processed += 1

    def _maybe_adapt_mode(self, session: Session) -> None:
        """The adaptive logging policy (DESIGN.md §16), run between
        requests.

        Every ``adaptive_eval_requests`` completed requests, compare the
        observed log volume against what command logging would keep
        (value mode tracks the elidable SvUpdate share) and the
        estimated re-execution cost against the replay budget.  Both
        directions are guarded by the hysteresis margin so the mode
        cannot flap on noise; switches take effect on the session's next
        request (replay dispatches per record kind, so mixed suffixes
        are fine).
        """
        if not self.adaptive_mode or session.status is not SessionStatus.NORMAL:
            return
        if session.requests_since_eval < self.config.adaptive_eval_requests:
            return
        margin = self.config.adaptive_hysteresis_margin
        budget = self.config.adaptive_replay_budget_ms
        old_mode = session.logging_mode
        if old_mode == "value":
            kept = session.bytes_since_eval - session.elidable_bytes_since_eval
            if (
                session.elidable_bytes_since_eval > 0
                and session.bytes_since_eval > margin * max(kept, 1)
                and session.observed_exec_ms <= budget
            ):
                session.logging_mode = "command"
        elif session.observed_exec_ms > budget * margin:
            session.logging_mode = "value"
        if session.logging_mode != old_mode:
            self.stats.mode_switches += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    "session.mode-switch",
                    owner=self.name,
                    session=session.id,
                    mode=session.logging_mode,
                )
                tracer.metrics.inc(f"logging.mode_switch.{session.logging_mode}")
        session.requests_since_eval = 0
        session.bytes_since_eval = 0
        session.elidable_bytes_since_eval = 0

    def _before_method(self, session: Session):
        """Hook for alternative session-persistence baselines (Psession,
        StateServer): runs before each service method (generator)."""
        yield from ()

    def _after_method(self, session: Session):
        """Hook: runs after each service method completes (generator)."""
        yield from ()

    def _end_session(self, request: Request, session: Session):
        """Session end: log the marker and discard the session (§3.2)."""
        if self.recoverable:
            # The session's durable footprint must not outlive it
            # inconsistently; flush its dependencies, then mark the end.
            yield from self.distributed_flush(session.dv, f"session {session.id}")
            yield from self.cpu(self.config.costs.log_append_ms)
            self.log.append(SessionEndRecord(session_id=session.id))
        self.sessions.pop(session.id, None)
        self._propagate_session_end(session)
        yield from self._send_reply(
            request, Reply(session_id=session.id, seq=request.seq, payload=b"")
        )

    def expire_session(self, session: Session):
        """Server-initiated session end (generator): the idle-expiry
        path — identical durable footprint to a client end, just with no
        reply to send.  A failed flush leaves the session alone; it is
        an orphan and the recovery machinery owns it now."""
        try:
            if self.recoverable:
                yield from self.distributed_flush(
                    session.dv, f"session {session.id}"
                )
                yield from self.cpu(self.config.costs.log_append_ms)
                self.log.append(SessionEndRecord(session_id=session.id))
        except (FlushFailed, OrphanDetected):
            self._ensure_recovery(session)
            return
        self.sessions.pop(session.id, None)
        self.stats.sessions_expired += 1
        self._propagate_session_end(session)

    def _propagate_session_end(self, session: Session) -> None:
        """End the implicit hop sessions ``session`` opened downstream.

        Chained calls open ``{session.id}>{target}`` sessions that no
        client ever ends; left alone they pin the downstream MSP's log
        truncation floor until ``session_idle_timeout_ms``.  When the
        upstream session ends — client end or expiry — each hop session
        gets an explicit end request, which recursively unwinds deeper
        chains.  Best-effort by design: the enders run in the MSP's
        process group (a crash kills them), and a dead or unreachable
        downstream exhausts the retry budget; idle expiry remains the
        backstop for every such case.
        """
        for out in session.outgoing.values():
            self.sim.spawn(
                self._end_downstream(out),
                name=f"{self.name}.endprop.{out.session_id}",
                group=self.group,
            )

    def _end_downstream(self, out):
        """Send one end request to a downstream hop session (generator):
        the client end protocol minus the client — resend until the end
        is acknowledged, sleep out busy replies, give up after a bounded
        number of attempts."""
        reply_port = f"reply:{out.session_id}"
        inbox = self.node.bind(reply_port)
        request = Request(
            session_id=out.session_id,
            seq=out.next_seq,
            method="",
            argument=b"",
            reply_to=self.name,
            reply_port=reply_port,
            end_session=True,
        )
        for _attempt in range(self.config.end_propagation_attempts):
            yield from self.cpu(self.config.costs.message_stack_ms)
            self.send(out.target_msp, "request", request)
            reply = yield from _await_reply(self, inbox, request.seq)
            if reply is None:
                continue  # lost request/reply or crashed server: resend
            if reply.busy:
                yield BUSY_RETRY_SLEEP_MS
                continue
            out.next_seq = request.seq + 1
            self.stats.downstream_ends_sent += 1
            return
        self.stats.downstream_ends_abandoned += 1

    def _resend_buffered_reply(self, request: Request, session: Session):
        """Re-send the buffered reply for a duplicate request (§3.1)."""
        reply = Reply(
            session_id=session.id,
            seq=request.seq,
            payload=session.buffered_reply or b"",
            error=session.buffered_reply_error,
        )
        if self.recoverable:
            if self.domains.same_domain(self.name, request.reply_to):
                reply.sender_dv = session.dv.copy()
            else:
                yield from self.distributed_flush(session.dv, f"session {session.id}")
        yield from self._send_reply(request, reply)

    def _send_reply(self, request: Request, reply: Reply):
        self.sim.probe("msp.reply", owner=self.name)
        yield from self.cpu(self.config.costs.message_stack_ms)
        self.send(request.reply_to, request.reply_port, reply)

    # ------------------------------------------------------------------
    # orphan recovery entry points
    # ------------------------------------------------------------------

    def _ensure_recovery(self, session: Session) -> None:
        """Start session orphan recovery once (idempotent)."""
        if session.recovery_pending or session.status is SessionStatus.RECOVERING:
            return
        session.recovery_pending = True
        if self.sim.tracer is not None:
            self.sim.tracer.instant(
                "session.orphan-detected", owner=self.name, session=session.id
            )
        self.sim.spawn(
            run_session_recovery(self, session, orphan=True),
            name=f"{self.name}.orphanrec.{session.id}",
            group=self.group,
        )

    def _announcement_service(self):
        """Daemon receiving recovery announcements (paper §4.3)."""
        inbox = self.node.bind("recovery")
        while True:
            envelope = yield from inbox.get()
            payload = envelope.payload
            if isinstance(payload, RecoveryAnnouncement):
                yield from self._handle_announcement(payload)
            elif isinstance(payload, AnnouncementAck):
                self.learn_recovery_knowledge(payload.table_snapshot)

    def _handle_announcement(self, ann: RecoveryAnnouncement):
        self.sim.probe("msp.announcement", owner=self.name)
        if self.sim.tracer is not None:
            self.sim.tracer.instant(
                "msp.announcement",
                owner=self.name,
                peer=ann.msp,
                epoch=ann.epoch,
                lsn=ann.recovered_lsn,
            )
        yield from self.cpu(self.config.costs.message_stack_ms)
        fresh = self.table.record(ann.msp, ann.epoch, ann.recovered_lsn)
        self.learn_recovery_knowledge(ann.table_snapshot)
        if fresh:
            # Log the knowledge so it survives our own crashes.
            yield from self.cpu(self.config.costs.log_append_ms)
            self.log.append(
                AnnouncementRecord(
                    msp=ann.msp, epoch=ann.epoch, recovered_lsn=ann.recovered_lsn
                )
            )
        if ann.reply_to:
            ack = AnnouncementAck(msp=self.name, table_snapshot=self.table.snapshot())
            self.send(ann.reply_to, ann.reply_port, ack)
        if fresh:
            # Check idle sessions now; busy ones hit interception points.
            for session in list(self.sessions.values()):
                if (
                    not session.busy
                    and session.status is SessionStatus.NORMAL
                    and session.is_orphan(self.table)
                ):
                    self._ensure_recovery(session)

    def broadcast_recovery(self, old_epoch: int, recovered_lsn: int) -> None:
        """Announce our recovery within the service domain (§4.3)."""
        announcement = RecoveryAnnouncement(
            msp=self.name,
            epoch=old_epoch,
            recovered_lsn=recovered_lsn,
            table_snapshot=self.table.snapshot(),
            reply_to=self.name,
            reply_port="recovery",
        )
        for peer in self.domains.peers_of(self.name):
            self.send(peer, "recovery", announcement)
