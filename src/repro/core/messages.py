"""Network message payloads exchanged by clients and MSPs.

These are in-memory dataclasses (only *log records* need byte encoding;
the network simulation charges transmission time from the declared
``wire_size``).  Sizes follow the paper's setup: request parameters and
return values are counted at their byte length, plus a fixed protocol
header, plus the attached DV's encoded size when present.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.dv import DependencyVector

#: Fixed per-message protocol overhead (SOAP/HTTP-ish framing).
HEADER_BYTES = 160

_request_ids = itertools.count(1)


@dataclass
class Request:
    """A service request over a session (client -> MSP or MSP -> MSP)."""

    session_id: str
    seq: int
    method: str
    argument: bytes
    reply_to: str  #: node name to send the reply to
    reply_port: str
    #: Present only when sender and receiver share a service domain.
    sender_dv: Optional[DependencyVector] = None
    #: True when this request ends the session.
    end_session: bool = False

    def wire_size(self) -> int:
        size = HEADER_BYTES + len(self.method) + len(self.argument)
        if self.sender_dv is not None:
            size += self.sender_dv.wire_size()
        return size


@dataclass
class Reply:
    """The reply to a request; ``busy`` signals 'retry later' (the
    server is checkpointing or recovering this session, paper §5.4);
    ``error`` reports a request the server will never be able to serve
    (e.g. an unknown method), so the client must not retry."""

    session_id: str
    seq: int
    payload: bytes
    sender_dv: Optional[DependencyVector] = None
    busy: bool = False
    error: bool = False

    def wire_size(self) -> int:
        size = HEADER_BYTES + len(self.payload)
        if self.sender_dv is not None:
            size += self.sender_dv.wire_size()
        return size


@dataclass
class FlushRequest:
    """One leg of a distributed log flush (paper §3.1).

    Asks the target MSP to make its log durable through ``lsn`` of
    ``epoch``.  The target acks failure when that state is lost (the
    requester is then an orphan).
    """

    req_id: int = field(default_factory=lambda: next(_request_ids))
    epoch: int = 0
    lsn: int = 0
    reply_to: str = ""
    reply_port: str = ""

    def wire_size(self) -> int:
        return HEADER_BYTES


@dataclass
class FlushReply:
    """Ack of a flush leg.

    Carries the replier's recovered-state-number knowledge: when the
    requester's dependency turns out lost (``ok=False``), the snapshot
    is exactly the knowledge the requester needs to locate the orphan
    log record during its recovery — essential when simultaneous
    crashes made both sides miss each other's recovery broadcasts.
    """

    req_id: int
    ok: bool
    table_snapshot: dict = field(default_factory=dict)

    def wire_size(self) -> int:
        entries = sum(len(v) for v in self.table_snapshot.values())
        return HEADER_BYTES + 20 * entries


@dataclass
class RecoveryAnnouncement:
    """Broadcast at the end of MSP crash recovery (paper §4.3).

    Carries the full recovered-state-number table so domain peers —
    including ones that were down during earlier broadcasts — converge
    on the same knowledge.
    """

    msp: str
    epoch: int
    recovered_lsn: int
    table_snapshot: dict[str, dict[int, int]]
    reply_to: str = ""
    reply_port: str = ""

    def wire_size(self) -> int:
        entries = sum(len(v) for v in self.table_snapshot.values())
        return HEADER_BYTES + 20 * entries


@dataclass
class AnnouncementAck:
    """A peer's response to an announcement: its own knowledge, so the
    freshly recovered MSP catches up on announcements it slept through."""

    msp: str
    table_snapshot: dict[str, dict[int, int]]

    def wire_size(self) -> int:
        entries = sum(len(v) for v in self.table_snapshot.values())
        return HEADER_BYTES + 20 * entries
