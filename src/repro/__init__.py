"""repro — Log-Based Recovery for Middleware Servers (SIGMOD 2007).

A complete reproduction of Wang, Salzberg & Lomet's log-based recovery
infrastructure for middleware servers, built on a deterministic
discrete-event simulation substrate.

Subpackages:

- :mod:`repro.sim` — discrete-event kernel (processes, events, resources);
- :mod:`repro.net` — simulated network with fault injection;
- :mod:`repro.storage` — disk timing model and crash-aware stable store;
- :mod:`repro.wire` — binary codecs and record framing;
- :mod:`repro.db` — mini WAL'd transactional KV store;
- :mod:`repro.core` — the paper's recovery system (the contribution);
- :mod:`repro.baselines` — NoLog / Psession / StateServer comparisons;
- :mod:`repro.workloads` — the paper's experimental configuration;
- :mod:`repro.harness` — regeneration of every §5 table and figure.

Command line: ``python -m repro --help``.
"""

__version__ = "1.0.0"
