"""Ablation experiments for the paper's design choices.

The paper argues for several design points without measuring them
directly; these experiments quantify each one on our substrate:

- **parallel session recovery** (Fig. 12 step 5) versus replaying
  sessions one at a time — "this results in faster recovery than
  replaying all activities sequentially in log order";
- **per-session dependency vectors** (§3.2) versus one DV for the whole
  MSP — "if only one DV is maintained ... all its sessions will roll
  back, possibly unnecessarily";
- **value logging** (§3.3) versus **access-order logging** ([16]) — "this
  approach increases recovery dependence among sessions".
"""

from __future__ import annotations

from repro.core.client import EndClient
from repro.core.config import RecoveryConfig
from repro.core.domain import ServiceDomainConfig
from repro.core.msp import MiddlewareServer
from repro.core.session import SessionStatus
from repro.harness.experiments import ExperimentResult
from repro.net import Network
from repro.parallel import resolve_jobs, run_tasks
from repro.sim import RngRegistry, Simulator


def _ablation_sweep(worker, specs, jobs=None, progress=None) -> list:
    """Run an ablation's measurement points; results in spec order.

    The ablation twin of :func:`repro.harness.experiments._sweep`: specs
    are plain tuples, workers are the module-level ``_*_point``
    functions below, and ``jobs=1`` stays in-process.
    """
    if resolve_jobs(jobs) == 1 or len(specs) <= 1:
        results = []
        for i, spec in enumerate(specs):
            results.append(worker(spec))
            if progress is not None:
                progress(i + 1, len(specs), spec)
        return results
    outcomes = run_tasks(
        worker,
        specs,
        jobs=jobs,
        progress=(
            None
            if progress is None
            else lambda done, total, outcome: progress(done, total, outcome.spec)
        ),
    )
    return [outcome.unwrap() for outcome in outcomes]


def _counter_method(ctx, argument):
    yield from ctx.compute(0.2)

    def bump(raw: bytes) -> bytes:
        return (int.from_bytes(raw, "big") + 1).to_bytes(8, "big")

    yield from ctx.update_shared("total", bump)
    raw = yield from ctx.get_session_var("n")
    n = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
    return n.to_bytes(4, "big")


def _measure_recovery_time(parallel: bool, sessions: int, requests: int, seed: int):
    """Build one MSP with history, crash it, time the recovery."""
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng=rng)
    config = RecoveryConfig(parallel_recovery=parallel)
    msp = MiddlewareServer(sim, network, "server", ServiceDomainConfig(), config=config, rng=rng)
    msp.register_service("counter", _counter_method)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    msp.start_process()
    client = EndClient(sim, network, "client")

    def driver(session):
        yield 1.0
        for _ in range(requests):
            yield from session.call("counter", b"x" * 100)

    drivers = [
        sim.spawn(driver(client.open_session("server"))) for _ in range(sessions)
    ]
    for process in drivers:
        sim.run_until_process(process, limit=600_000)

    msp.crash()
    boot = msp.restart_process()
    crash_at = sim.now

    def wait_recovered():
        yield boot
        while any(
            s.status is not SessionStatus.NORMAL for s in msp.sessions.values()
        ) or not msp.sessions:
            yield 1.0

    waiter = sim.spawn(wait_recovered())
    sim.run_until_process(waiter, limit=sim.now + 600_000)
    recovery_ms = sim.now - crash_at - config.restart_delay_ms
    total = int.from_bytes(msp.shared["total"].value, "big")
    assert total == sessions * requests, "exactly-once violated in ablation"
    return recovery_ms, msp.stats.replayed_requests


def _recovery_point(spec):
    parallel, sessions, requests, seed = spec
    return _measure_recovery_time(parallel, sessions, requests, seed)


def ablation_parallel_recovery(
    scale: float = 1.0, seed: int = 0, sessions: int = 8,
    jobs=None, progress=None,
) -> ExperimentResult:
    """Parallel vs sequential session recovery after an MSP crash."""
    requests = max(30, int(400 * scale))
    result = ExperimentResult(
        experiment="ablation-parallel-recovery",
        description=(
            f"Crash recovery time (ms) for {sessions} sessions x {requests} "
            "logged requests, parallel vs sequential replay"
        ),
    )
    times = {}
    specs = [(parallel, sessions, requests, seed) for parallel in (True, False)]
    points = _ablation_sweep(_recovery_point, specs, jobs=jobs, progress=progress)
    for spec, (recovery_ms, replayed) in zip(specs, points):
        parallel = spec[0]
        times[parallel] = recovery_ms
        result.rows.append(
            {
                "mode": "parallel" if parallel else "sequential",
                "recovery_ms": recovery_ms,
                "replayed_requests": replayed,
            }
        )
    result.claim(
        "parallel session recovery is faster than sequential replay",
        times[True] < times[False],
    )
    result.claim(
        "the speedup is material (>= 1.2x)",
        times[False] / max(times[True], 1e-9) >= 1.2,
    )
    return result


def _reader_method(ctx, argument):
    yield from ctx.compute(0.1)
    value = yield from ctx.read_shared("total")
    return value


def _measure_sv_logging_recovery(
    sv_logging: str, readers: int, writer_requests: int, seed: int
):
    """One heavy writer + light readers on one shared variable.

    Returns ``(writer_ready_ms, mean_reader_ready_ms)`` measured from
    the crash.  The interesting quantity is how soon the *readers* are
    back online: with value logging their replayed reads come straight
    from the log, independent of the writer; with access-order logging
    each read must wait for the writer to re-execute every preceding
    write.
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng=rng)
    config = RecoveryConfig(
        sv_logging=sv_logging,
        session_ckpt_threshold_bytes=None,
        sv_ckpt_write_threshold=10**9,
    )
    msp = MiddlewareServer(
        sim, network, "server", ServiceDomainConfig(), config=config, rng=rng
    )
    msp.register_service("counter", _counter_method)
    msp.register_service("reader", _reader_method)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    msp.start_process()
    client = EndClient(sim, network, "client")

    def writer_driver(session):
        yield 1.0
        for _ in range(writer_requests):
            yield from session.call("counter", b"x" * 100)

    def reader_driver(session):
        # Readers read once near the end of the writer's run, so their
        # logged read observes a late version of the variable.
        yield 1.0 + writer_requests * 8.0
        yield from session.call("reader", b"")

    writer_session = client.open_session("server", session_id="writer")
    drivers = [sim.spawn(writer_driver(writer_session))]
    reader_ids = []
    for i in range(readers):
        rid = f"reader{i}"
        reader_ids.append(rid)
        drivers.append(
            sim.spawn(reader_driver(client.open_session("server", session_id=rid)))
        )
    for process in drivers:
        sim.run_until_process(process, limit=3_600_000)

    msp.crash()
    boot = msp.restart_process()
    crash_at = sim.now

    ready: dict[str, float] = {}

    def monitor():
        yield boot
        expected = {"writer", *reader_ids}
        while expected - set(ready):
            for sid, s in msp.sessions.items():
                if sid in expected and sid not in ready:
                    if s.status is SessionStatus.NORMAL and not s.recovery_pending:
                        ready[sid] = sim.now - crash_at
            yield 1.0

    waiter = sim.spawn(monitor())
    sim.run_until_process(waiter, limit=sim.now + 3_600_000)
    total = int.from_bytes(msp.shared["total"].value, "big")
    assert total == writer_requests, (
        f"exactly-once violated under {sv_logging} logging: {total}"
    )
    mean_reader = sum(ready[r] for r in reader_ids) / len(reader_ids)
    return ready["writer"], mean_reader


def _sv_logging_point(spec):
    sv_logging, readers, writer_requests, seed = spec
    return _measure_sv_logging_recovery(sv_logging, readers, writer_requests, seed)


def ablation_value_vs_access_order(
    scale: float = 1.0, seed: int = 0, readers: int = 4,
    jobs=None, progress=None,
) -> ExperimentResult:
    """Value logging (§3.3) vs access-order logging ([16]) at recovery.

    One heavy writer keeps updating a shared variable; light reader
    sessions read it once.  After a crash, value logging lets each
    reader replay independently (its read value comes from the log, "a
    recovering reader session can obtain the value from the log
    directly"), while access-order logging makes every reader wait for
    the writer to re-execute all preceding writes — the recovery
    dependence the paper rejects access-order logging for.
    """
    writer_requests = max(30, int(250 * scale))
    result = ExperimentResult(
        experiment="ablation-sv-logging",
        description=(
            f"Session back-online time after a crash (ms); 1 writer x "
            f"{writer_requests} requests + {readers} one-read readers"
        ),
    )
    measured = {}
    specs = [
        (mode, readers, writer_requests, seed) for mode in ("value", "access-order")
    ]
    points = _ablation_sweep(_sv_logging_point, specs, jobs=jobs, progress=progress)
    for spec, (writer_ms, reader_ms) in zip(specs, points):
        mode = spec[0]
        measured[mode] = (writer_ms, reader_ms)
        result.rows.append(
            {
                "sv_logging": mode,
                "writer_ready_ms": writer_ms,
                "mean_reader_ready_ms": reader_ms,
            }
        )
    result.claim(
        "with value logging, readers are back online well before the "
        "writer finishes replaying (recovery independence)",
        measured["value"][1] < 0.7 * measured["value"][0],
    )
    result.claim(
        "with access-order logging, readers are held hostage to the "
        "writer's replay (recovery dependence)",
        measured["access-order"][1] > 0.8 * measured["access-order"][0],
    )
    result.claim(
        "value logging brings readers back >= 1.25x sooner",
        measured["access-order"][1] / max(measured["value"][1], 1e-9) >= 1.25,
    )
    return result


def _remote_method(ctx, argument):
    yield from ctx.compute(0.2)
    reply = yield from ctx.call("backend", "backend_op", argument)
    raw = yield from ctx.get_session_var("n")
    n = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
    return reply


def _local_method(ctx, argument):
    yield from ctx.compute(0.2)
    raw = yield from ctx.get_session_var("n")
    n = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("n", n.to_bytes(4, "big"))
    return n.to_bytes(4, "big")


def _make_backend_op(controller):
    def backend_op(ctx, argument):
        yield from ctx.compute(0.2)

        def bump(raw: bytes) -> bytes:
            return (int.from_bytes(raw, "big") + 1).to_bytes(8, "big")

        new = yield from ctx.update_shared("count", bump)
        if not ctx.is_replay:
            controller.maybe_schedule_kill()
        return new

    return backend_op


class _OneShotCrash:
    """Kill the backend once, 2 ms after the Nth backend execution.

    The timing makes the orphan deterministic: the reply is already on
    the wire (it reaches the front MSP and is merged into its session's
    DV within ~1.6 ms), but no disk flush can complete within 2 ms, so
    the backend's records for that exchange are guaranteed lost."""

    def __init__(self, after: int):
        self.after = after
        self.seen = 0
        self.backend = None
        self.fired = False

    def maybe_schedule_kill(self) -> None:
        self.seen += 1
        if not self.fired and self.seen >= self.after:
            self.fired = True
            self.backend.sim.call_later(2.0, self._kill)

    def _kill(self) -> None:
        if self.backend.running:
            self.backend.crash()
            self.backend.restart_process()


def _measure_rollbacks(per_session_dv: bool, remote_sessions: int, local_sessions: int, seed: int):
    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng=rng)
    domains = ServiceDomainConfig([["front", "backend"]])
    controller = _OneShotCrash(after=remote_sessions * 3)

    front = MiddlewareServer(
        sim, network, "front", domains,
        config=RecoveryConfig(per_session_dv=per_session_dv), rng=rng,
    )
    backend = MiddlewareServer(
        sim, network, "backend", domains, config=RecoveryConfig(), rng=rng
    )
    controller.backend = backend
    front.register_service("remote", _remote_method)
    front.register_service("local", _local_method)
    backend.register_service("backend_op", _make_backend_op(controller))
    backend.register_shared("count", (0).to_bytes(8, "big"))
    front.start_process()
    backend.start_process()
    client = EndClient(sim, network, "client")

    def driver(session, method):
        yield 1.0
        for _ in range(6):
            yield from session.call(method, b"x" * 50)

    drivers = []
    for _ in range(remote_sessions):
        drivers.append(sim.spawn(driver(client.open_session("front"), "remote")))
    for _ in range(local_sessions):
        drivers.append(sim.spawn(driver(client.open_session("front"), "local")))
    for process in drivers:
        sim.run_until_process(process, limit=600_000)
    # Let any trailing orphan recoveries settle.
    def settle():
        yield 200.0

    waiter = sim.spawn(settle())
    sim.run_until_process(waiter, limit=sim.now + 10_000)
    return front.stats.orphan_recoveries, network.messages_sent


def _dv_point(spec):
    per_session_dv, remote_sessions, local_sessions, seed = spec
    return _measure_rollbacks(per_session_dv, remote_sessions, local_sessions, seed)


def ablation_dv_granularity(
    scale: float = 1.0, seed: int = 0, jobs=None, progress=None
) -> ExperimentResult:
    """Per-session DVs vs one MSP-wide DV.

    Half the sessions only touch local state.  With one MSP-wide DV,
    every session's pre-send flush carries the whole domain's
    dependencies, so the backend is dragged into flushes by *local*
    sessions too — the per-MSP DV either floods the backend with extra
    flushes or (when a dependency is caught unflushed) rolls back every
    session at once, the paper's §3.2 "all its sessions will roll back,
    possibly unnecessarily".  Per-session DVs confine both costs to the
    sessions that actually depend on the backend.
    """
    remote = max(2, int(4 * scale)) if scale >= 1 else 4
    local = remote
    result = ExperimentResult(
        experiment="ablation-dv-granularity",
        description=(
            f"One backend crash; {remote} remote-calling + {local} purely "
            "local sessions at the front MSP"
        ),
    )
    rollbacks = {}
    backend_writes = {}
    specs = [(per_session, remote, local, seed) for per_session in (True, False)]
    points = _ablation_sweep(_dv_point, specs, jobs=jobs, progress=progress)
    for spec, (count, messages) in zip(specs, points):
        per_session = spec[0]
        rollbacks[per_session] = count
        backend_writes[per_session] = messages
        result.rows.append(
            {
                "dv_granularity": "per-session" if per_session else "per-MSP",
                "orphan_recoveries": count,
                "network_messages": messages,
            }
        )
    result.claim(
        "per-session DVs never roll back purely local sessions",
        rollbacks[True] <= remote,
    )
    result.claim(
        "a per-MSP DV rolls back more sessions (including purely local "
        "ones) than per-session DVs",
        rollbacks[False] > rollbacks[True],
    )
    result.claim(
        "a per-MSP DV rolls back (nearly) every session",
        rollbacks[False] >= remote + local - 1,
    )
    return result
