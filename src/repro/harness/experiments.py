"""One function per table/figure of the paper's evaluation (§5).

Every function returns an :class:`ExperimentResult` whose rows carry the
measured values, whose ``paper`` dict carries the published reference
numbers (where the paper prints them), and whose ``claims`` list checks
the *shape* statements the paper makes about the artifact — who wins, by
roughly what factor, where crossovers fall.  Absolute parity is not
expected (our substrate is a calibrated simulator); shape parity is.

``scale`` trades runtime for fidelity: 1.0 approximates the paper's run
lengths (20 K requests for Fig. 14), smaller values keep CI fast.

Each experiment is a *sweep*: it first enumerates its independent
workload points (one seeded simulation each), runs them through
:func:`_sweep` — in-process for ``jobs=1``, fanned across worker
processes otherwise, with results merged back in point order either way
— and only then derives rows and claims.  More cores therefore buy more
measurement points per wall-second without changing a single number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.harness.metrics import ResponseStats
from repro.parallel import WorkerFailure, resolve_jobs, run_tasks
from repro.parallel.tasks import WorkloadPointSpec, run_workload_point
from repro.workloads import PaperWorkload, WorkloadParams

KB = 1024
MB = 1024 * 1024


@dataclass
class ExperimentResult:
    """Rows + paper references + checked shape claims for one artifact."""

    experiment: str
    description: str
    rows: list[dict] = field(default_factory=list)
    paper: dict = field(default_factory=dict)
    claims: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(ok for _claim, ok in self.claims)

    def claim(self, text: str, ok: bool) -> None:
        self.claims.append((text, ok))

    def row_by(self, key: str, value) -> dict:
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")


def _run(params: WorkloadParams) -> tuple[PaperWorkload, "object"]:
    workload = PaperWorkload(params)
    result = workload.run()
    return workload, result


def _sweep(points: list[WorkloadPointSpec], jobs=None, progress=None) -> list:
    """Run a sweep's independent points; results come back in point order.

    ``jobs=1`` (the default resolution on a single core) is the
    in-process reference path; otherwise points fan across spawn
    workers.  A point whose worker raises (including a failed
    ``verify_exactly_once``) aborts the experiment with the point's key
    in the error, matching the sequential behaviour.
    ``progress(done, total, key)`` reports completions in either mode.
    """
    if resolve_jobs(jobs) == 1 or len(points) <= 1:
        results = []
        for i, spec in enumerate(points):
            results.append(run_workload_point(spec))
            if progress is not None:
                progress(i + 1, len(points), spec.key)
        return results
    outcomes = run_tasks(
        run_workload_point,
        points,
        jobs=jobs,
        progress=(
            None
            if progress is None
            else lambda done, total, outcome: progress(done, total, outcome.spec.key)
        ),
    )
    failed = [o for o in outcomes if not o.ok]
    if failed:
        first = failed[0]
        raise WorkerFailure(
            f"sweep point {first.spec.key} failed "
            f"({len(failed)}/{len(outcomes)} points): {first.error}"
        )
    return [outcome.result for outcome in outcomes]


# ---------------------------------------------------------------------------
# Figure 14 (table): average response time of the five configurations
# ---------------------------------------------------------------------------

PAPER_FIG14_TABLE = {
    "LoOptimistic": 24.746,
    "Pessimistic": 35.227,
    "NoLog": 8.697,
    "Psession": 48.617,
    "StateServer": 16.658,
}


def fig14_response_table(
    scale: float = 1.0, seed: int = 0, jobs=None, progress=None
) -> ExperimentResult:
    """Fig. 14 table: average response time over 20 K requests."""
    requests = max(50, int(20_000 * scale))
    result = ExperimentResult(
        experiment="fig14-table",
        description="Average response time (ms), 1 client, m=1",
        paper=dict(PAPER_FIG14_TABLE),
    )
    points = [
        WorkloadPointSpec(
            key=("fig14-table", configuration),
            params=WorkloadParams(
                configuration=configuration,
                requests_per_client=requests,
                seed=seed,
            ),
        )
        for configuration in PAPER_FIG14_TABLE
    ]
    means: dict[str, float] = {}
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        configuration = point.key[1]
        means[configuration] = run.mean_response_ms
        result.rows.append(
            {
                "configuration": configuration,
                "mean_response_ms": run.mean_response_ms,
                "paper_ms": PAPER_FIG14_TABLE[configuration],
            }
        )
    result.claim(
        "ordering NoLog < StateServer < LoOptimistic < Pessimistic < Psession",
        means["NoLog"]
        < means["StateServer"]
        < means["LoOptimistic"]
        < means["Pessimistic"]
        < means["Psession"],
    )
    reduction = 1.0 - means["LoOptimistic"] / means["Pessimistic"]
    result.claim(
        f"locally optimistic reduces response time by about 30% (measured {reduction:.0%})",
        0.20 <= reduction <= 0.45,
    )
    return result


# ---------------------------------------------------------------------------
# Figure 14 (chart): response time versus calls to ServiceMethod2
# ---------------------------------------------------------------------------


def fig14_calls_chart(
    scale: float = 1.0,
    seed: int = 0,
    calls: tuple[int, ...] = (1, 2, 3, 4),
    jobs=None,
    progress=None,
) -> ExperimentResult:
    """Fig. 14 chart: response time versus m for all five configurations."""
    requests = max(30, int(2_000 * scale))
    result = ExperimentResult(
        experiment="fig14-chart",
        description="Response time (ms) vs number of calls to ServiceMethod2",
    )
    points = [
        WorkloadPointSpec(
            key=("fig14-chart", configuration, m),
            params=WorkloadParams(
                configuration=configuration,
                requests_per_client=requests,
                calls_to_sm2=m,
                seed=seed,
            ),
        )
        for configuration in PAPER_FIG14_TABLE
        for m in calls
    ]
    series: dict[str, list[float]] = {c: [] for c in PAPER_FIG14_TABLE}
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        _name, configuration, m = point.key
        series[configuration].append(run.mean_response_ms)
        result.rows.append(
            {
                "configuration": configuration,
                "calls": m,
                "mean_response_ms": run.mean_response_ms,
            }
        )

    def slope(name: str) -> float:
        values = series[name]
        return (values[-1] - values[0]) / (calls[-1] - calls[0])

    result.claim(
        "response time grows with m for every configuration",
        all(all(b > a for a, b in zip(v, v[1:])) for v in series.values()),
    )
    result.claim(
        "LoOptimistic-Pessimistic gap widens with m",
        (series["Pessimistic"][-1] - series["LoOptimistic"][-1])
        > (series["Pessimistic"][0] - series["LoOptimistic"][0]),
    )
    result.claim(
        "pessimistic slope ~2 flushes+round/call (steepest logging growth)",
        slope("Pessimistic") > slope("LoOptimistic") * 2,
    )
    result.claim(
        "StateServer grows faster than LoOptimistic and is close to it at m=4",
        slope("StateServer") > slope("LoOptimistic")
        and abs(series["StateServer"][-1] - series["LoOptimistic"][-1])
        < 0.25 * series["LoOptimistic"][-1],
    )
    result.claim(
        "LoOptimistic-NoLog gap increases (slowly) with m",
        (series["LoOptimistic"][-1] - series["NoLog"][-1])
        > (series["LoOptimistic"][0] - series["NoLog"][0]),
    )
    return result


# ---------------------------------------------------------------------------
# Figure 15(a): throughput versus checkpointing threshold
# ---------------------------------------------------------------------------


def fig15a_checkpoint_overhead(
    scale: float = 1.0,
    seed: int = 0,
    thresholds: tuple = (64 * KB, 256 * KB, 1 * MB, 4 * MB, None),
    jobs=None,
    progress=None,
) -> ExperimentResult:
    """Fig. 15(a): session checkpointing overhead on throughput."""
    requests = max(200, int(5_000 * scale))
    result = ExperimentResult(
        experiment="fig15a",
        description="Throughput (req/s) vs session checkpoint threshold, LoOptimistic",
    )
    points = [
        WorkloadPointSpec(
            key=("fig15a", "none" if threshold is None else f"{threshold // KB}KB"),
            params=WorkloadParams(
                configuration="LoOptimistic",
                requests_per_client=requests,
                session_ckpt_threshold=threshold,
                seed=seed,
            ),
        )
        for threshold in thresholds
    ]
    throughputs = []
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        throughputs.append(run.throughput_rps)
        result.rows.append(
            {
                "threshold": point.key[1],
                "throughput_rps": run.throughput_rps,
                "session_checkpoints": run.session_checkpoints,
            }
        )
    no_ckpt = throughputs[-1]
    smallest = throughputs[0]
    result.claim(
        "even a 64KB threshold leads to only a small throughput reduction (<10%)",
        smallest > 0.90 * no_ckpt,
    )
    big = throughputs[thresholds.index(4 * MB)]
    result.claim(
        "4MB threshold is close to the no-checkpointing case (<2%)",
        abs(big - no_ckpt) < 0.02 * no_ckpt,
    )
    return result


# ---------------------------------------------------------------------------
# Figure 15(b): throughput versus crash rate
# ---------------------------------------------------------------------------


def fig15b_crash_throughput(
    scale: float = 1.0,
    seed: int = 0,
    crash_rates: tuple = (None, 2000, 1500, 1000),
    jobs=None,
    progress=None,
) -> ExperimentResult:
    """Fig. 15(b): throughput under forced MSP2 crashes.

    ``scale`` shrinks both the run length and the crash intervals
    together, preserving the crashes-per-request ratios.
    """
    result = ExperimentResult(
        experiment="fig15b",
        description="Throughput (req/s) vs crash rate (one crash per N requests)",
    )
    series: dict[str, list[float]] = {"LoOptimistic": [], "Pessimistic": []}
    requests = max(200, int(6_000 * scale))
    points = [
        WorkloadPointSpec(
            key=(
                "fig15b",
                configuration,
                None if rate is None else max(20, int(rate * scale)),
            ),
            params=WorkloadParams(
                configuration=configuration,
                requests_per_client=requests,
                crash_every_n=None if rate is None else max(20, int(rate * scale)),
                seed=seed,
            ),
            verify_exactly_once=True,
        )
        for configuration in series
        for rate in crash_rates
    ]
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        _name, configuration, scaled_rate = point.key
        series[configuration].append(run.throughput_rps)
        result.rows.append(
            {
                "configuration": configuration,
                "crash_every_n": scaled_rate,
                "throughput_rps": run.throughput_rps,
                "crashes": run.crashes,
                "orphan_recoveries": run.orphan_recoveries,
                "replayed_requests": run.replayed_requests,
            }
        )
    lo, pe = series["LoOptimistic"], series["Pessimistic"]
    result.claim(
        "locally optimistic always has higher throughput than pessimistic",
        all(a > b for a, b in zip(lo, pe)),
    )
    result.claim(
        "throughput decreases as the crash rate increases (both methods)",
        lo[0] > lo[-1] and pe[0] > pe[-1],
    )
    result.claim(
        "LoOptimistic's decrease is larger (extra orphan-recovery cost)",
        (lo[0] - lo[-1]) / lo[0] > (pe[0] - pe[-1]) / pe[0],
    )
    return result


# ---------------------------------------------------------------------------
# Figure 16 (table): maximum response times
# ---------------------------------------------------------------------------

PAPER_FIG16_TABLE = {
    ("LoOptimistic", "Crash"): 3245.0,
    ("LoOptimistic", "NoCrash"): 490.0,
    ("LoOptimistic", "NoCp"): 123.0,
    ("Pessimistic", "Crash"): 2360.0,
    ("Pessimistic", "NoCrash"): 150.0,
    ("Pessimistic", "NoCp"): 133.0,
}


def fig16_max_response_table(
    scale: float = 1.0, seed: int = 0, jobs=None, progress=None
) -> ExperimentResult:
    """Fig. 16 table: maximum response time under crashes/checkpointing."""
    requests = max(400, int(6_000 * scale))
    crash_rate = max(50, int(1000 * scale))
    result = ExperimentResult(
        experiment="fig16-table",
        description="Maximum response time (ms)",
        paper={f"{cfg}/{col}": v for (cfg, col), v in PAPER_FIG16_TABLE.items()},
    )
    measured: dict[tuple[str, str], float] = {}
    means: dict[tuple[str, str], float] = {}
    points = []
    for configuration in ("LoOptimistic", "Pessimistic"):
        scenarios = {
            "Crash": WorkloadParams(
                configuration=configuration,
                requests_per_client=requests,
                crash_every_n=crash_rate,
                seed=seed,
            ),
            "NoCrash": WorkloadParams(
                configuration=configuration, requests_per_client=requests, seed=seed
            ),
            "NoCp": WorkloadParams(
                configuration=configuration,
                requests_per_client=requests,
                session_ckpt_threshold=None,
                seed=seed,
            ),
        }
        points.extend(
            WorkloadPointSpec(key=("fig16-table", configuration, column), params=params)
            for column, params in scenarios.items()
        )
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        _name, configuration, column = point.key
        measured[(configuration, column)] = run.max_response_ms
        means[(configuration, column)] = run.mean_response_ms
        result.rows.append(
            {
                "configuration": configuration,
                "scenario": column,
                "max_response_ms": run.max_response_ms,
                "mean_response_ms": run.mean_response_ms,
                "paper_max_ms": PAPER_FIG16_TABLE[(configuration, column)],
            }
        )
    result.claim(
        "crashes raise the maximum response time substantially (both methods)",
        measured[("LoOptimistic", "Crash")] > 3 * measured[("LoOptimistic", "NoCrash")]
        and measured[("Pessimistic", "Crash")] > 3 * measured[("Pessimistic", "NoCrash")],
    )
    result.claim(
        "LoOptimistic's crash maximum exceeds Pessimistic's (SE1 orphan replay)",
        measured[("LoOptimistic", "Crash")] > measured[("Pessimistic", "Crash")],
    )
    result.claim(
        "average response stays low even with crashes",
        means[("LoOptimistic", "Crash")] < 2.0 * PAPER_FIG14_TABLE["LoOptimistic"]
        and means[("Pessimistic", "Crash")] < 2.0 * PAPER_FIG14_TABLE["Pessimistic"],
    )
    return result


# ---------------------------------------------------------------------------
# Figure 16 (chart): optimal checkpointing threshold under crashes
# ---------------------------------------------------------------------------


def fig16_optimal_threshold(
    scale: float = 1.0,
    seed: int = 0,
    thresholds: tuple = (64 * KB, 256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB),
    jobs=None,
    progress=None,
) -> ExperimentResult:
    """Fig. 16 chart: throughput at crash rate 1/1000 vs threshold."""
    requests = max(400, int(8_000 * scale))
    crash_rate = max(50, int(1000 * scale))
    result = ExperimentResult(
        experiment="fig16-chart",
        description="Throughput (req/s) at crash rate 1/1000 vs checkpoint threshold",
    )
    points = [
        WorkloadPointSpec(
            key=("fig16-chart", f"{threshold // KB}KB"),
            params=WorkloadParams(
                configuration="LoOptimistic",
                requests_per_client=requests,
                session_ckpt_threshold=threshold,
                crash_every_n=crash_rate,
                seed=seed,
            ),
            verify_exactly_once=True,
        )
        for threshold in thresholds
    ]
    throughputs = []
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        throughputs.append(run.throughput_rps)
        result.rows.append(
            {
                "threshold": point.key[1],
                "throughput_rps": run.throughput_rps,
                "replayed_requests": run.replayed_requests,
                "session_checkpoints": run.session_checkpoints,
            }
        )
    best_index = max(range(len(throughputs)), key=throughputs.__getitem__)
    result.claim(
        "very large thresholds hurt throughput (longer recovery replay)",
        throughputs[-1] < max(throughputs) * 0.999,
    )
    result.claim(
        "the best threshold is below the largest tested (an optimum exists)",
        best_index < len(thresholds) - 1,
    )
    return result


# ---------------------------------------------------------------------------
# Figure 17: multiple clients and batch flushing
# ---------------------------------------------------------------------------


def fig17_multiclient(
    scale: float = 1.0,
    seed: int = 0,
    client_counts: tuple = (1, 2, 3, 4, 6, 8),
    jobs=None,
    progress=None,
) -> ExperimentResult:
    """Fig. 17: throughput and response vs #clients, +/- batch flushing."""
    requests = max(40, int(1_500 * scale))
    result = ExperimentResult(
        experiment="fig17",
        description="Throughput and response time vs number of clients",
    )
    points = [
        WorkloadPointSpec(
            key=("fig17", configuration, batch, clients),
            params=WorkloadParams(
                configuration=configuration,
                requests_per_client=requests,
                num_clients=clients,
                batch_flush_timeout_ms=8.0 if batch else 0.0,
                seed=seed,
            ),
        )
        for configuration in ("Pessimistic", "LoOptimistic")
        for batch in (False, True)
        for clients in client_counts
    ]
    curves: dict[tuple[str, bool], list[float]] = {}
    responses: dict[tuple[str, bool], list[float]] = {}
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        _name, configuration, batch, clients = point.key
        curves.setdefault((configuration, batch), []).append(run.throughput_rps)
        responses.setdefault((configuration, batch), []).append(run.mean_response_ms)
        result.rows.append(
            {
                "configuration": configuration,
                "batch": batch,
                "clients": clients,
                "throughput_rps": run.throughput_rps,
                "mean_response_ms": run.mean_response_ms,
                "msp1_cpu_utilization": run.msp1_cpu_utilization,
                "msp1_disk_utilization": run.msp1_disk_utilization,
            }
        )

    def peak(configuration: str, batch: bool) -> float:
        return max(curves[(configuration, batch)])

    result.claim(
        "batch flushing raises the peak throughput of pessimistic logging "
        "substantially (paper: ~30%)",
        peak("Pessimistic", True) > 1.10 * peak("Pessimistic", False),
    )
    result.claim(
        "with batch flushing LoOptimistic still beats Pessimistic by >=30%",
        peak("LoOptimistic", True) > 1.30 * peak("Pessimistic", True),
    )
    result.claim(
        "response time grows with the number of clients (all curves)",
        all(v[-1] > v[0] for v in responses.values()),
    )
    few = client_counts.index(2) if 2 in client_counts else 0
    many = len(client_counts) - 1
    result.claim(
        "batch flushing hurts response at few clients but helps at many",
        responses[("Pessimistic", True)][few] > responses[("Pessimistic", False)][few]
        and responses[("Pessimistic", True)][many]
        < responses[("Pessimistic", False)][many],
    )
    result.claim(
        "without batching, throughput saturates (peak not at the highest "
        "client count, or within 5% of the previous point)",
        all(
            curves[(cfg, False)][-1] <= max(curves[(cfg, False)]) * 1.02
            and max(curves[(cfg, False)]) < curves[(cfg, False)][few] * (
                client_counts[many] / client_counts[few]
            )
            for cfg in ("Pessimistic", "LoOptimistic")
        ),
    )
    return result


# ---------------------------------------------------------------------------
# §5.2 analysis: flush and sector accounting
# ---------------------------------------------------------------------------


def analysis_flush_accounting(
    scale: float = 1.0, seed: int = 0, jobs=None, progress=None
) -> ExperimentResult:
    """§5.2 analysis: flush counts and sector usage per request.

    Paper: pessimistic logging needs three sequential flushes per end
    client request (2+3+2 sectors); locally optimistic logging needs one
    distributed flush (3 and 3 sectors in parallel), saving roughly one
    sector per request.
    """
    requests = max(100, int(2_000 * scale))
    result = ExperimentResult(
        experiment="analysis-flush",
        description="Flush and sector accounting per end-client request",
        paper={
            "pessimistic_flushes_per_request": 3,
            "looptimistic_flushes_per_request": 2,
            "pessimistic_sectors_per_request": 7,
            "looptimistic_sectors_per_request": 6,
        },
    )
    measured = {}
    points = [
        WorkloadPointSpec(
            key=("analysis-flush", configuration),
            params=WorkloadParams(
                configuration=configuration, requests_per_client=requests, seed=seed
            ),
        )
        for configuration in ("Pessimistic", "LoOptimistic")
    ]
    for point, run in zip(points, _sweep(points, jobs=jobs, progress=progress)):
        configuration = point.key[1]
        flushes = (run.msp1_flushes + run.msp2_flushes) / run.completed_requests
        sectors = (
            run.msp1_flushed_sectors + run.msp2_flushed_sectors
        ) / run.completed_requests
        measured[configuration] = (flushes, sectors)
        result.rows.append(
            {
                "configuration": configuration,
                "flushes_per_request": flushes,
                "sectors_per_request": sectors,
            }
        )
    result.claim(
        "pessimistic needs ~3 flushes per request, locally optimistic ~2 "
        "(1 distributed = 2 parallel)",
        2.7 <= measured["Pessimistic"][0] <= 3.4
        and 1.8 <= measured["LoOptimistic"][0] <= 2.4,
    )
    result.claim(
        "locally optimistic writes about one sector less per request",
        0.4 <= (measured["Pessimistic"][1] - measured["LoOptimistic"][1]) <= 2.0,
    )
    return result
