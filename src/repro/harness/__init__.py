"""Experiment harness: regenerate every table and figure of §5.

Each ``fig*`` function in :mod:`repro.harness.experiments` runs the
corresponding experiment at a configurable scale and returns an
:class:`~repro.harness.experiments.ExperimentResult` carrying the
measured rows, the paper's reference numbers, and the checked shape
claims.  :mod:`repro.harness.report` renders them as text tables.
"""

from repro.harness.ablations import (
    ablation_dv_granularity,
    ablation_parallel_recovery,
    ablation_value_vs_access_order,
)
from repro.harness.experiments import (
    ExperimentResult,
    analysis_flush_accounting,
    fig14_calls_chart,
    fig14_response_table,
    fig15a_checkpoint_overhead,
    fig15b_crash_throughput,
    fig16_max_response_table,
    fig16_optimal_threshold,
    fig17_multiclient,
)
from repro.harness.metrics import ResponseStats
from repro.harness.report import render_result

__all__ = [
    "ExperimentResult",
    "ResponseStats",
    "ablation_dv_granularity",
    "ablation_parallel_recovery",
    "ablation_value_vs_access_order",
    "analysis_flush_accounting",
    "fig14_calls_chart",
    "fig14_response_table",
    "fig15a_checkpoint_overhead",
    "fig15b_crash_throughput",
    "fig16_max_response_table",
    "fig16_optimal_threshold",
    "fig17_multiclient",
    "render_result",
]
