"""Response-time statistics helpers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ResponseStats:
    """Summary of a set of response times (ms)."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float
    minimum: float

    @staticmethod
    def from_samples(samples: Sequence[float]) -> "ResponseStats":
        if not samples:
            return ResponseStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        n = len(ordered)

        def percentile(p: float) -> float:
            index = min(n - 1, max(0, math.ceil(p * n) - 1))
            return ordered[index]

        return ResponseStats(
            count=n,
            mean=sum(ordered) / n,
            median=percentile(0.50),
            p95=percentile(0.95),
            p99=percentile(0.99),
            maximum=ordered[-1],
            minimum=ordered[0],
        )
