"""Plain-text rendering of experiment results (tables like the paper's)."""

from __future__ import annotations

from repro.harness.experiments import ExperimentResult


def _format_value(value, float_format: str = ".3f") -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:{float_format}}"
    if value is None:
        return "-"
    return str(value)


def _column_float_format(values) -> str:
    """One float precision for a whole column.

    Mixing ``.3f`` and ``.1f`` inside a column (the old per-value rule)
    misaligns comparisons; instead the column's widest magnitude picks
    the precision for every cell in it.
    """
    floats = [v for v in values if isinstance(v, float) and not isinstance(v, bool)]
    if floats and max(abs(v) for v in floats) >= 100:
        return ".1f"
    return ".3f"


def table_columns(rows) -> list[str]:
    """Ordered union of keys across *all* rows.

    Heterogeneous rows (scenario matrices where later cells add
    measurements) must not silently lose columns just because the first
    row lacks them: keys appear in first-seen order across the whole
    row list.
    """
    columns: list[str] = []
    seen: set = set()
    for row in rows:
        for key in row.keys():
            if key not in seen:
                seen.add(key)
                columns.append(key)
    return columns


def render_table(rows) -> list[str]:
    """Aligned text table over the ordered union of row keys."""
    if not rows:
        return []
    columns = table_columns(rows)
    formats = {
        col: _column_float_format(row.get(col) for row in rows) for col in columns
    }
    table = [
        [_format_value(row.get(col), formats[col]) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in table))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines = [header, "-" * len(header)]
    for line in table:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return lines


def render_result(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table with its claims."""
    lines = [f"== {result.experiment}: {result.description} =="]
    lines.extend(render_table(result.rows))
    if result.paper:
        lines.append("")
        lines.append("paper reference values:")
        for key, value in result.paper.items():
            lines.append(f"  {key}: {value}")
    if result.claims:
        lines.append("")
        lines.append("shape claims:")
        for claim, ok in result.claims:
            marker = "PASS" if ok else "FAIL"
            lines.append(f"  [{marker}] {claim}")
    return "\n".join(lines)
