"""Plain-text rendering of experiment results (tables like the paper's)."""

from __future__ import annotations

from repro.harness.experiments import ExperimentResult


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:.1f}"
    if value is None:
        return "-"
    return str(value)


def render_result(result: ExperimentResult) -> str:
    """Render one experiment as an aligned text table with its claims."""
    lines = [f"== {result.experiment}: {result.description} =="]
    if result.rows:
        columns = list(result.rows[0].keys())
        table = [[_format_value(row.get(col)) for col in columns] for row in result.rows]
        widths = [
            max(len(col), *(len(line[i]) for line in table))
            for i, col in enumerate(columns)
        ]
        header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
        lines.append(header)
        lines.append("-" * len(header))
        for line in table:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    if result.paper:
        lines.append("")
        lines.append("paper reference values:")
        for key, value in result.paper.items():
            lines.append(f"  {key}: {value}")
    if result.claims:
        lines.append("")
        lines.append("shape claims:")
        for claim, ok in result.claims:
            marker = "PASS" if ok else "FAIL"
            lines.append(f"  [{marker}] {claim}")
    return "\n".join(lines)
