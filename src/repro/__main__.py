"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``list`` — list the available experiments;
- ``run <experiment> [--scale S] [--seed N] [--jobs N]`` — regenerate
  one of the paper's tables/figures (or an ablation) and print it;
- ``all [--scale S] [--jobs N]`` — regenerate everything;
- ``workload <configuration> [--requests N] [--clients N] [--m N]
  [--crash-every N] [--batch MS]`` — run one paper workload and print
  the measurements;
- ``bench [--scale S] [--repeat N] [--smoke] [--jobs N] [--out PATH]
  [--baseline PATH]`` — run the wall-clock log-pipeline benchmarks and
  emit a machine-readable ``BENCH_*.json`` report; ``--fanout`` instead
  measures the parallel runner itself (sequential vs ``--jobs N`` wall
  time plus verdict-identity checks, the ``BENCH_PR3.json`` artifact);
- ``fuzz [--mode exhaustive|random] [--seeds N] [--replay SEED] ...`` —
  the deterministic crash-schedule explorer (see :mod:`repro.fuzz.cli`):
  systematically kill an MSP at every enumerated crash site (or at
  seeded random multi-crash schedules with network faults), recover,
  and check the exactly-once invariant battery; failures report a
  replayable ``(seed, schedule)`` pair;
- ``scenarios [--matrix PATH] [--jobs N] [--out MD] [--html PATH]
  [--json PATH]`` — run a declarative scenario matrix (fault family ×
  topology × seed: crashes, correlated rack loss, partition windows,
  whole-domain disasters with warm-standby failover) under the process
  pool and emit a fuzzbench-style report with per-cell invariant
  verdicts and recovery-time distributions; report bytes are identical
  at any ``--jobs`` value;
- ``trace [configuration] [--requests N] [--crash-every N] [--out
  PATH] [--jsonl PATH]`` — run a paper workload with structured tracing
  on (:mod:`repro.trace`) and export the sim-time timeline as a Chrome
  ``trace_event`` file (loadable in ``chrome://tracing``/Perfetto) plus
  an optional JSON-lines artifact, printing the recovery-time breakdown
  and flush-latency histogram the trace contains.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness import (
    ablation_dv_granularity,
    ablation_parallel_recovery,
    ablation_value_vs_access_order,
    analysis_flush_accounting,
    fig14_calls_chart,
    fig14_response_table,
    fig15a_checkpoint_overhead,
    fig15b_crash_throughput,
    fig16_max_response_table,
    fig16_optimal_threshold,
    fig17_multiclient,
    render_result,
)
from repro.workloads import CONFIGURATIONS, PaperWorkload, WorkloadParams

EXPERIMENTS = {
    "fig14-table": fig14_response_table,
    "fig14-chart": fig14_calls_chart,
    "fig15a": fig15a_checkpoint_overhead,
    "fig15b": fig15b_crash_throughput,
    "fig16-table": fig16_max_response_table,
    "fig16-chart": fig16_optimal_threshold,
    "fig17": fig17_multiclient,
    "analysis-flush": analysis_flush_accounting,
    "ablation-parallel-recovery": ablation_parallel_recovery,
    "ablation-dv-granularity": ablation_dv_granularity,
    "ablation-sv-logging": ablation_value_vs_access_order,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Log-based recovery for middleware servers (SIGMOD 2007) "
        "— reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    def add_jobs_argument(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=None,
            help="worker processes (default: REPRO_JOBS or all cores; "
            "1 = in-process)",
        )

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", type=float, default=0.1)
    run.add_argument("--seed", type=int, default=0)
    add_jobs_argument(run)

    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--scale", type=float, default=0.05)
    everything.add_argument("--seed", type=int, default=0)
    add_jobs_argument(everything)

    workload = sub.add_parser("workload", help="run one paper workload")
    workload.add_argument("configuration", choices=CONFIGURATIONS)
    workload.add_argument("--requests", type=int, default=500)
    workload.add_argument("--clients", type=int, default=1)
    workload.add_argument("--m", type=int, default=1, help="calls to ServiceMethod2")
    workload.add_argument("--crash-every", type=int, default=None)
    workload.add_argument("--batch", type=float, default=0.0, help="batch flush ms")
    workload.add_argument(
        "--atomic-sv", action="store_true",
        help="increment shared counters with atomic update_shared RMWs "
        "(the paper's separate read+write accesses lose updates under "
        "concurrent clients, failing exactly-once verification)",
    )
    workload.add_argument(
        "--no-truncation", action="store_true",
        help="disable checkpoint-driven log truncation (the log then "
        "grows without bound — the PR 4 log_space benchmark's off mode)",
    )
    workload.add_argument(
        "--segment-bytes", type=int, default=None,
        help="log segment size in bytes (default 64 KiB); truncation "
        "recycles whole segments below the checkpoint floor",
    )
    workload.add_argument(
        "--partitions", type=int, default=1,
        help="log partitions (default 1 = classical single log); sessions "
        "hash to partitions, each with its own group-commit flusher",
    )
    workload.add_argument(
        "--recovery-mode", choices=("eager", "lazy"), default="eager",
        help="crash-recovery mode: eager replays every session before "
        "serving (the paper's restart); lazy opens after the analysis "
        "scan and replays each session's log chain on demand",
    )
    workload.add_argument(
        "--pump-concurrency", type=int, default=4,
        help="lazy mode: background recovery workers draining "
        "not-yet-recovered sessions hot-first (default 4)",
    )
    workload.add_argument(
        "--logging-mode", choices=("value", "command", "adaptive"),
        default="value",
        help="request logging mode: value logs per-variable deltas "
        "(paper §3.3); command logs the request and re-executes it at "
        "replay; adaptive switches per session from observed log volume "
        "vs estimated replay cost",
    )
    workload.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench", help="run the log-pipeline perf benchmarks")
    bench.add_argument("--scale", type=float, default=1.0, help="iteration-count multiplier")
    bench.add_argument("--repeat", type=int, default=3, help="runs per benchmark (best kept)")
    bench.add_argument(
        "--only", action="append", default=None, metavar="NAME",
        help="run only the named benchmark cell (repeatable); "
        "see repro.perf.bench.BENCHMARKS for the cell names",
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny single iteration, completion check only (CI mode)",
    )
    bench.add_argument(
        "--logging-mode", choices=("value", "command", "adaptive"), default=None,
        help="restrict the log_volume spectrum cell to one logging mode "
        "(default: run the full value/adaptive/command spectrum)",
    )
    add_jobs_argument(bench)
    bench.add_argument(
        "--fanout", action="store_true",
        help="measure the parallel runner: sequential vs --jobs wall time "
        "with verdict-identity checks (writes BENCH_PR3.json by default)",
    )
    bench.add_argument(
        "--out", default=None,
        help="JSON report path (default BENCH_PR1.json, "
        "or BENCH_PR3.json with --fanout)",
    )
    bench.add_argument(
        "--baseline", default=None,
        help="earlier BENCH json to embed and compute speedups against",
    )

    fuzz = sub.add_parser("fuzz", help="run the crash-schedule explorer")
    from repro.fuzz.cli import add_fuzz_arguments

    add_fuzz_arguments(fuzz)

    fleet = sub.add_parser(
        "fleet",
        help="run a sharded multi-MSP fleet under open-loop traffic",
    )
    fleet.add_argument("--msps", type=int, default=8, help="MSP count")
    fleet.add_argument(
        "--domains", type=int, default=2, help="service-domain count"
    )
    fleet.add_argument(
        "--shards", type=int, default=1,
        help="simulation shards (part of the spec: whole domains per "
        "shard, results identical at any --jobs)",
    )
    add_jobs_argument(fleet)
    fleet.add_argument(
        "--sessions", type=int, default=200, help="open-loop session count"
    )
    fleet.add_argument(
        "--duration", type=float, default=10_000.0, metavar="MS",
        help="arrival window in simulated ms",
    )
    fleet.add_argument(
        "--chain-depth", type=int, default=1,
        help="downstream hops chained per request",
    )
    fleet.add_argument(
        "--cross-fraction", type=float, default=0.5,
        help="probability a hop crosses a domain boundary (the "
        "pessimistic flush-before-send path)",
    )
    fleet.add_argument(
        "--crash", action="append", default=None, metavar="MS:MSP",
        help="crash + restart MSP at simulated time (repeatable), "
        "e.g. --crash 2000:m003",
    )
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the canonical (timing-free, byte-stable) result JSON",
    )
    fleet.add_argument(
        "--trace", default=None, metavar="PATH",
        help="attach structured tracers (requires --jobs 1) and write "
        "the merged Chrome trace_event file",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="run a declarative scenario matrix (fault family × topology) "
        "and emit a fuzzbench-style report",
    )
    scenarios.add_argument(
        "--matrix", default=None, metavar="PATH",
        help="scenario matrix YAML (default: the built-in matrix; the "
        "committed ones live under scenarios/)",
    )
    add_jobs_argument(scenarios)
    scenarios.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the markdown report (byte-identical at any --jobs)",
    )
    scenarios.add_argument(
        "--html", default=None, metavar="PATH",
        help="write the standalone HTML report",
    )
    scenarios.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the canonical (timing-free) report JSON "
        "(the perf_gate --scenario-matrix input)",
    )
    scenarios.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-cell wall-clock deadline in seconds",
    )

    trace = sub.add_parser(
        "trace", help="run a workload with structured tracing and export it"
    )
    trace.add_argument(
        "configuration", nargs="?", choices=CONFIGURATIONS, default="LoOptimistic"
    )
    trace.add_argument("--requests", type=int, default=200)
    trace.add_argument("--clients", type=int, default=1)
    trace.add_argument("--m", type=int, default=1, help="calls to ServiceMethod2")
    trace.add_argument(
        "--crash-every", type=int, default=60,
        help="crash msp2 every N completed ServiceMethod2 calls so the "
        "timeline contains recoveries (0 disables crashes)",
    )
    trace.add_argument("--batch", type=float, default=0.0, help="batch flush ms")
    trace.add_argument(
        "--recovery-mode", choices=("eager", "lazy"), default="eager",
        help="crash-recovery mode for the traced workload; lazy adds the "
        "chain-walk and pump spans to the recovery breakdown",
    )
    trace.add_argument(
        "--logging-mode", choices=("value", "command", "adaptive"),
        default="value",
        help="request logging mode for the traced workload; command and "
        "adaptive add the per-mode append counters and mode-switch "
        "instants to the timeline",
    )
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--max-events", type=int, default=1_000_000,
        help="bound on retained trace events (drops beyond it)",
    )
    trace.add_argument(
        "--out", default="trace.json",
        help="Chrome trace_event output path (default trace.json)",
    )
    trace.add_argument(
        "--jsonl", default=None, metavar="PATH",
        help="also write the JSON-lines artifact",
    )
    return parser


def _progress(label: str):
    from repro.parallel import ProgressReporter

    reporter = ProgressReporter(f"  {label}").start()
    # The key is deliberately unreported: rate-limited count/ETA lines
    # only, details stay on the fuzz front end where they mark failures.
    return lambda done, total, key: reporter.update(done, total)


def _run_fanout(args: argparse.Namespace, out: str) -> int:
    from repro.perf import write_report
    from repro.perf.fanout import format_fanout_report, run_fanout_report

    if args.smoke:
        report = run_fanout_report(
            jobs=args.jobs, fuzz_stride=64, pair_schedules=8, random_cases=4,
            bench_scale=0.002, sweep_scale=0.01,
            progress=_progress("fanout (smoke)"),
        )
    else:
        report = run_fanout_report(jobs=args.jobs, progress=_progress("fanout"))
    write_report(report, out)
    print(format_fanout_report(report))
    print(f"wrote {out}")
    return 0 if report["all_identical"] else 1


def _run_bench(args: argparse.Namespace) -> int:
    from repro.perf import run_benchmarks, write_report
    from repro.perf.bench import attach_baseline, format_report

    out = args.out or ("BENCH_PR3.json" if args.fanout else "BENCH_PR1.json")
    if args.fanout:
        return _run_fanout(args, out)
    baseline = None
    if args.baseline:
        # Validate up front so a bad path fails before the timed runs.
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
    if args.only:
        from repro.perf.bench import BENCHMARKS

        unknown = [name for name in args.only if name not in BENCHMARKS]
        if unknown:
            print(
                f"error: unknown benchmark cell(s) {', '.join(unknown)}; "
                f"available: {', '.join(BENCHMARKS)}",
                file=sys.stderr,
            )
            return 2
    scale = 0.002 if args.smoke else args.scale
    repeat = 1 if args.smoke else args.repeat
    report = run_benchmarks(
        scale=scale, repeat=repeat, only=args.only, jobs=args.jobs,
        progress=_progress("bench"), logging_mode=args.logging_mode,
    )
    if baseline is not None:
        attach_baseline(report, baseline)
    write_report(report, out)
    print(format_report(report))
    print(f"wrote {out}")
    return 0


def _run_workload(args: argparse.Namespace) -> int:
    params = WorkloadParams(
        configuration=args.configuration,
        requests_per_client=args.requests,
        num_clients=args.clients,
        calls_to_sm2=args.m,
        crash_every_n=args.crash_every,
        batch_flush_timeout_ms=args.batch,
        atomic_sv_updates=args.atomic_sv,
        log_truncation=not args.no_truncation,
        log_segment_bytes=args.segment_bytes,
        log_partitions=args.partitions,
        recovery_mode=args.recovery_mode,
        recovery_pump_concurrency=args.pump_concurrency,
        logging_mode=args.logging_mode,
        seed=args.seed,
    )
    workload = PaperWorkload(params)
    result = workload.run()
    print(f"configuration:      {result.configuration}")
    print(f"completed requests: {result.completed_requests}")
    print(f"mean response:      {result.mean_response_ms:.3f} ms")
    print(f"max response:       {result.max_response_ms:.1f} ms")
    print(f"throughput:         {result.throughput_rps:.2f} req/s")
    print(f"crashes:            {result.crashes}")
    if args.recovery_mode == "lazy":
        stats = [workload.msp1.stats, workload.msp2.stats]
        print(
            f"lazy recoveries:    "
            f"{sum(s.lazy_recoveries for s in stats)} "
            f"({sum(s.inline_recoveries for s in stats)} inline, "
            f"{sum(s.pump_recoveries for s in stats)} pump)"
        )
    if args.logging_mode != "value":
        stats = [workload.msp1.stats, workload.msp2.stats]
        print(
            f"command logging:    "
            f"{sum(s.command_requests for s in stats)} command requests, "
            f"{sum(s.replayed_commands for s in stats)} replayed, "
            f"{sum(s.mode_switches for s in stats)} mode switches"
        )
    print(f"orphan recoveries:  {result.orphan_recoveries}")
    print(f"replayed requests:  {result.replayed_requests}")
    print(f"MSP1 cpu/disk util: {result.msp1_cpu_utilization:.2f} / "
          f"{result.msp1_disk_utilization:.2f}")
    stores = workload.msp1.stores
    print(f"MSP1 log space:     {sum(s.live_bytes for s in stores)} live bytes, "
          f"{sum(s.truncated_bytes for s in stores)} truncated "
          f"({sum(s.recycled_segments for s in stores)} segments recycled)")
    if args.configuration in ("LoOptimistic", "Pessimistic"):
        workload.verify_exactly_once()
        print("exactly-once:       verified")
    return 0


def _run_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetSpec, fleet_fingerprint, run_fleet
    from repro.fleet.runner import canonical_result_bytes
    from repro.parallel import resolve_jobs

    crash_plan = []
    for entry in args.crash or ():
        try:
            when, _, target = entry.partition(":")
            crash_plan.append((float(when), target))
        except ValueError:
            print(f"error: bad --crash {entry!r} (want MS:MSP)", file=sys.stderr)
            return 2
    spec = FleetSpec(
        msps=args.msps,
        domains=args.domains,
        shards=args.shards,
        seed=args.seed,
        sessions=args.sessions,
        duration_ms=args.duration,
        chain_depth=args.chain_depth,
        cross_domain_fraction=args.cross_fraction,
        crash_plan=tuple(crash_plan),
    )
    jobs = min(resolve_jobs(args.jobs), spec.shards)

    tracer_factory = None
    traced_shards = []
    if args.trace is not None:
        if jobs != 1:
            print("error: --trace requires --jobs 1", file=sys.stderr)
            return 2
        from repro.trace import Tracer

        def tracer_factory(shard):
            traced_shards.append((shard, Tracer(shard.sim).attach()))

    result = run_fleet(
        spec,
        jobs=jobs,
        progress=lambda message: print(f"  {message}", file=sys.stderr),
        tracer_factory=tracer_factory,
    )
    if traced_shards:
        from repro.trace import collect_component_metrics, write_chrome_trace

        stem = (
            args.trace[:-5] if args.trace.endswith(".json") else args.trace
        )
        for shard, tracer in traced_shards:
            tracer.finalize()
            collect_component_metrics(
                tracer.metrics,
                msps=tuple(shard.msps.values()),
                network=shard.network,
                shard=shard,
            )
            path = (
                args.trace
                if len(traced_shards) == 1
                else f"{stem}.shard{shard.index}.json"
            )
            write_chrome_trace(tracer, path)
            print(f"wrote {path}", file=sys.stderr)
    verdicts = result["verdicts"]
    totals = result["totals"]
    timing = result["timing"]
    print(
        f"fleet: {spec.msps} MSPs / {spec.domains} domains / "
        f"{spec.shards} shard(s), jobs={jobs}"
    )
    print(
        f"sessions:           {totals['completed_sessions']}/"
        f"{totals['expected_sessions']} completed "
        f"({totals['completed_calls']} calls, "
        f"{totals['cross_domain_calls']} cross-domain hops)"
    )
    print(
        f"latency (ms):       mean={result['latency_ms']['mean']:.3f} "
        f"p50<={result['latency_ms']['p50']:g} "
        f"p95<={result['latency_ms']['p95']:g} "
        f"p99<={result['latency_ms']['p99']:g}"
    )
    print(
        f"sim time:           {result['sim_time_ms']:.0f} ms in "
        f"{result['epochs']} epochs "
        f"({result['cross_shard_messages']} cross-shard messages)"
    )
    print(
        f"throughput:         {timing['sim_req_per_s']:.1f} req/sim-s, "
        f"{timing['wall_req_per_s']:.1f} req/wall-s "
        f"({timing['wall_s']:.2f} s wall)"
    )
    print(f"fingerprint:        {fleet_fingerprint(result)}")
    print(
        "verdicts:           "
        + " ".join(f"{k}={'ok' if v else 'FAIL'}" for k, v in verdicts.items())
    )
    for violation in result["violations"][:10]:
        print(f"  violation: {violation}", file=sys.stderr)
    if args.out is not None:
        with open(args.out, "wb") as fh:
            fh.write(canonical_result_bytes(result))
        print(f"wrote {args.out}")
    return 0 if verdicts["clean"] else 1


def _run_scenarios(args: argparse.Namespace) -> int:
    from repro.parallel import resolve_jobs
    from repro.scenarios import (
        DEFAULT_MATRIX,
        ScenarioSpec,
        canonical_report_bytes,
        render_html,
        render_markdown,
        run_matrix,
    )

    if args.matrix is not None:
        spec = ScenarioSpec.load(args.matrix)
    else:
        spec = ScenarioSpec.from_dict(DEFAULT_MATRIX)
    cells = spec.expand()
    jobs = min(resolve_jobs(args.jobs), len(cells))
    families = sorted({c.family for c in cells})
    print(
        f"scenario matrix {spec.name!r}: {len(cells)} cells "
        f"({', '.join(families)}), jobs={jobs}"
    )
    report = run_matrix(
        spec,
        jobs=jobs,
        progress=lambda done, total, outcome: print(
            f"  [{done}/{total}] {outcome.spec.cell_id}"
            + ("" if outcome.error is None else f" ERROR: {outcome.error}"),
            file=sys.stderr,
        ),
        task_timeout_s=args.timeout,
    )
    verdicts = report["verdicts"]
    print(f"fingerprint:        {report['fingerprint']}")
    print(
        "verdicts:           "
        + " ".join(f"{k}={'ok' if v else 'FAIL'}" for k, v in verdicts.items())
    )
    for cell_id in report["failing_cells"]:
        print(f"  failing cell: {cell_id}", file=sys.stderr)
    if args.out is not None:
        with open(args.out, "w") as fh:
            fh.write(render_markdown(report))
        print(f"wrote {args.out}")
    if args.html is not None:
        with open(args.html, "w") as fh:
            fh.write(render_html(report))
        print(f"wrote {args.html}")
    if args.json is not None:
        with open(args.json, "wb") as fh:
            fh.write(canonical_report_bytes(report))
        print(f"wrote {args.json}")
    if args.out is None and args.html is None and args.json is None:
        print()
        print(render_markdown(report))
    return 0 if all(verdicts.values()) else 1


def _run_trace(args: argparse.Namespace) -> int:
    from repro.trace import (
        Tracer,
        chrome_trace,
        collect_component_metrics,
        jsonl_lines,
        validate_chrome_trace,
        validate_jsonl_lines,
        write_chrome_trace,
        write_jsonl,
    )

    params = WorkloadParams(
        configuration=args.configuration,
        requests_per_client=args.requests,
        num_clients=args.clients,
        calls_to_sm2=args.m,
        crash_every_n=args.crash_every or None,
        batch_flush_timeout_ms=args.batch,
        recovery_mode=args.recovery_mode,
        logging_mode=args.logging_mode,
        seed=args.seed,
    )
    workload = PaperWorkload(params)
    tracer = Tracer(workload.sim, max_events=args.max_events).attach()
    result = workload.run()
    tracer.finalize()
    collect_component_metrics(
        tracer.metrics,
        msps=(workload.msp1, workload.msp2),
        network=workload.network,
    )
    # Self-check before writing: the CI smoke job re-validates the files,
    # but a malformed trace should fail loudly right here.
    problems = validate_chrome_trace(chrome_trace(tracer))
    problems += validate_jsonl_lines(jsonl_lines(tracer))
    write_chrome_trace(tracer, args.out)
    if args.jsonl:
        write_jsonl(tracer, args.jsonl)

    summary = tracer.summary()
    print(f"configuration:      {result.configuration}")
    print(f"completed requests: {result.completed_requests}")
    print(f"crashes:            {result.crashes}")
    print(
        f"trace events:       {summary['events']} "
        f"({summary['dropped_events']} dropped, "
        f"{summary['open_spans']} left open)"
    )
    histograms = tracer.metrics.histograms
    rows = [
        (name, histograms.get(f"span.{name}_ms"))
        for name in (
            "recovery",
            "recovery.anchor",
            "recovery.scan",
            "recovery.analyze",
            "recovery.checkpoint",
            "recovery.session",
            "recovery.session.chainwalk",
        )
    ]
    if any(h is not None and h.count for _name, h in rows):
        print("recovery-time breakdown (sim ms):")
        for name, h in rows:
            if h is not None and h.count:
                print(
                    f"  {name:26s} n={h.count:<4d} mean={h.mean:10.3f} "
                    f"max={h.max:10.3f}"
                )
    flush_wait = histograms.get("log.flush.wait_ms")
    if flush_wait is not None and flush_wait.count:
        print(
            f"flush latency:      n={flush_wait.count} "
            f"mean={flush_wait.mean:.3f} ms p99<={flush_wait.quantile(0.99):g} ms"
        )
    counters = tracer.metrics.counters
    stale = counters.get("flush.stale_acks")
    if stale is not None:
        print(f"stale flush acks:   {stale.value}")
    ledger = workload.network.ledger()
    print(
        f"network ledger:     sent={ledger['messages_sent']} "
        f"dup={ledger['messages_duplicated']} "
        f"delivered={ledger['messages_delivered']} "
        f"dropped={ledger['messages_dropped']} "
        f"in_flight={ledger['messages_in_flight']}"
    )
    print(f"wrote {args.out}" + (f" and {args.jsonl}" if args.jsonl else ""))
    if problems:
        for problem in problems:
            print(f"trace validation: {problem}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.command == "run":
        result = EXPERIMENTS[args.experiment](
            scale=args.scale, seed=args.seed, jobs=args.jobs,
            progress=_progress(args.experiment),
        )
        print(render_result(result))
        return 0 if result.all_claims_hold else 1
    if args.command == "all":
        failures = 0
        for name in sorted(EXPERIMENTS):
            result = EXPERIMENTS[name](
                scale=args.scale, seed=args.seed, jobs=args.jobs,
                progress=_progress(name),
            )
            print(render_result(result))
            print()
            failures += 0 if result.all_claims_hold else 1
        return min(failures, 1)
    if args.command == "workload":
        return _run_workload(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "fuzz":
        from repro.fuzz.cli import run_fuzz

        return run_fuzz(args)
    if args.command == "fleet":
        return _run_fleet(args)
    if args.command == "scenarios":
        return _run_scenarios(args)
    if args.command == "trace":
        return _run_trace(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
