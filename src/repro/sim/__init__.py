"""Deterministic discrete-event simulation kernel.

This package is the substrate on which the reproduced middleware servers
run.  Real threads, sockets and disks are replaced by generator-coroutine
processes scheduled on a simulated clock, which makes every experiment in
the paper reproducible bit-for-bit from a seed while exercising the *real*
recovery logic (real log records, real dependency vectors, real replay).

Public surface:

- :class:`~repro.sim.kernel.Simulator` — the event loop and clock.
- :class:`~repro.sim.kernel.Process` — a spawned coroutine.
- :class:`~repro.sim.kernel.Event` — one-shot synchronization points.
- :class:`~repro.sim.kernel.ProcessGroup` — kill-together groups used for
  crash injection.
- :class:`~repro.sim.resources.Resource` — FIFO queued server (CPUs, disks).
- :class:`~repro.sim.resources.Store` — blocking FIFO queue (inboxes,
  request queues).
- :class:`~repro.sim.resources.RWLock` — reader/writer lock for shared
  variables.
- :mod:`~repro.sim.rng` — named deterministic random streams.
"""

from repro.sim.kernel import (
    Event,
    Process,
    ProcessGroup,
    ProcessKilled,
    SimTimeoutError,
    Simulator,
    first_of,
    wait_with_timeout,
)
from repro.sim.resources import Resource, RWLock, Store, StoreClosed
from repro.sim.rng import RngRegistry

__all__ = [
    "Event",
    "Process",
    "ProcessGroup",
    "ProcessKilled",
    "Resource",
    "RngRegistry",
    "RWLock",
    "SimTimeoutError",
    "Simulator",
    "Store",
    "StoreClosed",
    "first_of",
    "wait_with_timeout",
]
