"""Named deterministic random streams.

Every stochastic component (disk seek jitter, network fault injection,
workload think times) draws from its own named stream derived from a
single experiment seed, so adding randomness to one component never
perturbs another and every run is exactly reproducible.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Hands out independent :class:`random.Random` streams by name."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) stream for ``name``.

        The stream seed is a stable hash of ``(seed, name)`` so it does
        not depend on creation order or on Python's randomized string
        hashing.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream
