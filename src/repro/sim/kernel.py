"""Event loop, processes and events for the discrete-event simulator.

The kernel is deliberately small: a binary heap of timed callbacks plus a
generator-coroutine process abstraction.  A process is an ordinary Python
generator that *yields effects*:

- a number — sleep for that many simulated milliseconds;
- an :class:`Event` — suspend until the event is triggered; the ``yield``
  expression evaluates to the event's value (or raises its exception);
- another :class:`Process` — join it; the ``yield`` evaluates to its
  result (or re-raises its failure);
- ``None`` — relinquish control and resume at the same simulated time
  (after any already-scheduled work at that time).

Sub-routines compose with ``yield from``.  Determinism is guaranteed by
tie-breaking simultaneous events with a monotone sequence number.

Processes can be killed (used for crash injection).  A kill closes the
generator, so ``try/finally`` blocks run; finalizers must not yield.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

#: Effects a process generator may yield; see module docstring.
Effect = Any


class SimError(Exception):
    """Base class for simulator kernel errors."""


class ProcessKilled(SimError):
    """Raised when joining a process that was killed rather than finished."""


class SimTimeoutError(SimError):
    """Raised by :func:`wait_with_timeout` when the deadline passes first."""


class _Handle:
    """A cancelable scheduled callback."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self.cancelled = True

    def __lt__(self, other: "_Handle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Event:
    """A one-shot synchronization point carrying a value or an exception.

    Triggering is level-style: waiters registered after the trigger are
    resumed immediately.  Triggering twice is an error, which catches
    protocol bugs early.
    """

    __slots__ = ("_sim", "_triggered", "_value", "_exception", "_waiters", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self._sim = sim
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: list[Callable[["Event"], None]] = []
        self.name = name

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimError(f"event {self.name!r} not yet triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event with ``value``, waking all waiters."""
        if self._triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._dispatch()

    def fail(self, exception: BaseException) -> None:
        """Fire the event with an exception; waiters will have it raised."""
        if self._triggered:
            raise SimError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._exception = exception
        self._dispatch()

    def _dispatch(self) -> None:
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self._sim._call_soon(lambda cb=callback: cb(self))

    def subscribe(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run when the event fires.

        If the event already fired, the callback is scheduled immediately
        (at the current simulated time).
        """
        if self._triggered:
            self._sim._call_soon(lambda: callback(self))
        else:
            self._waiters.append(callback)

    def unsubscribe(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback if still pending."""
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Process:
    """A running coroutine inside the simulator.

    Created via :meth:`Simulator.spawn`.  Join by yielding the process
    object from another process, or inspect :attr:`done_event`.
    """

    __slots__ = (
        "sim",
        "name",
        "_gen",
        "done_event",
        "_result",
        "_failure",
        "_finished",
        "_killed",
        "_pending_handle",
        "_waiting_event",
        "_event_callback",
        "_group",
    )

    def __init__(self, sim: "Simulator", gen: Generator, name: str):
        self.sim = sim
        self.name = name
        self._gen = gen
        self.done_event = Event(sim, name=f"done:{name}")
        self._result: Any = None
        self._failure: Optional[BaseException] = None
        self._finished = False
        self._killed = False
        self._pending_handle: Optional[_Handle] = None
        self._waiting_event: Optional[Event] = None
        self._event_callback: Optional[Callable[[Event], None]] = None
        self._group: Optional["ProcessGroup"] = None

    # -- introspection -------------------------------------------------

    @property
    def alive(self) -> bool:
        return not self._finished

    @property
    def killed(self) -> bool:
        return self._killed

    @property
    def result(self) -> Any:
        """The return value of the generator; raises if it failed."""
        if not self._finished:
            raise SimError(f"process {self.name!r} still running")
        if self._failure is not None:
            raise self._failure
        return self._result

    # -- lifecycle ------------------------------------------------------

    def kill(self) -> None:
        """Terminate the process immediately (crash injection).

        The generator is closed so ``finally`` blocks run *now*; they must
        not yield.  Joiners see :class:`ProcessKilled`.
        """
        if self._finished:
            return
        self._detach_waits()
        self._killed = True
        try:
            self._gen.close()
        finally:
            self._complete(failure=ProcessKilled(f"process {self.name!r} killed"))

    def _detach_waits(self) -> None:
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        if self._waiting_event is not None and self._event_callback is not None:
            self._waiting_event.unsubscribe(self._event_callback)
        self._waiting_event = None
        self._event_callback = None

    def _complete(self, result: Any = None, failure: Optional[BaseException] = None) -> None:
        if self._finished:
            return
        self._finished = True
        self._result = result
        self._failure = failure
        if self._group is not None:
            self._group._discard(self)
        if failure is None:
            self.done_event.trigger(result)
        else:
            self.done_event.fail(failure)

    # -- stepping -------------------------------------------------------

    def _resume(self, value: Any = None) -> None:
        self._step(lambda: self._gen.send(value))

    def _throw(self, exc: BaseException) -> None:
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Effect]) -> None:
        if self._finished:
            return
        self._pending_handle = None
        self._waiting_event = None
        self._event_callback = None
        try:
            effect = advance()
        except StopIteration as stop:
            self._complete(result=stop.value)
            return
        except ProcessKilled as exc:
            self._complete(failure=exc)
            return
        except Exception as exc:  # noqa: BLE001 - propagate via join
            self._complete(failure=exc)
            return
        self._interpret(effect)

    def _interpret(self, effect: Effect) -> None:
        if effect is None:
            self._pending_handle = self.sim._call_soon(lambda: self._resume(None))
        elif isinstance(effect, (int, float)):
            if effect < 0:
                self._throw(SimError(f"negative timeout {effect!r}"))
                return
            self._pending_handle = self.sim.call_later(float(effect), lambda: self._resume(None))
        elif isinstance(effect, Event):
            self._wait_on(effect)
        elif isinstance(effect, Process):
            self._wait_on(effect.done_event)
        else:
            self._throw(SimError(f"process {self.name!r} yielded bad effect {effect!r}"))

    def _wait_on(self, event: Event) -> None:
        def callback(ev: Event) -> None:
            if ev._exception is not None:
                self._throw(ev._exception)
            else:
                self._resume(ev._value)

        self._waiting_event = event
        self._event_callback = callback
        event.subscribe(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self._finished else "running"
        return f"<Process {self.name!r} {state}>"


class ProcessGroup:
    """A set of processes that can be killed together (one MSP's 'threads')."""

    def __init__(self, name: str = ""):
        self.name = name
        # Insertion-ordered on purpose: Process objects hash by identity,
        # so a set here would make kill_all() iterate in memory-address
        # order — nondeterministic across runs and processes.  Crash
        # teardown must happen in spawn order for runs to be replayable.
        self._members: dict[Process, None] = {}

    def add(self, process: Process) -> Process:
        process._group = self
        self._members[process] = None
        return process

    def _discard(self, process: Process) -> None:
        self._members.pop(process, None)

    def kill_all(self) -> None:
        """Kill every live member.  Used to model a process crash."""
        for process in list(self._members):
            process.kill()

    def __len__(self) -> int:
        return len(self._members)


class Simulator:
    """The discrete-event loop: a clock plus a heap of timed callbacks."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Handle] = []
        self._seq = itertools.count()
        self._process_count = itertools.count()
        #: Callbacks executed so far — the per-shard work measure the
        #: fleet harness reports (``fleet.shard<i>.steps``).
        self.steps = 0
        self._probe_listeners: list[Callable[[str, Optional[str]], None]] = []
        #: Optional structured tracer (see :mod:`repro.trace`).  ``None``
        #: unless a harness attaches one; instrumentation sites guard
        #: with ``if sim.tracer is not None`` so the disabled cost is a
        #: single attribute load.  Typed loosely to keep the kernel free
        #: of higher-layer imports.
        self.tracer: Optional[object] = None

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    # -- crash-site probes ----------------------------------------------

    def probe(self, site: str, owner: Optional[str] = None) -> None:
        """Announce that execution reached crash site ``site``.

        Probes are the instrumentation the crash-schedule explorer
        (:mod:`repro.fuzz`) enumerates and kills at: every log append,
        flush boundary, checkpoint phase, message delivery and recovery
        step calls ``sim.probe(...)`` with the owning MSP's name.  With
        no listener registered this is a near-free no-op, so production
        paths stay uninstrumented-cost.
        """
        if not self._probe_listeners:
            return
        for listener in tuple(self._probe_listeners):
            listener(site, owner)

    def add_probe_listener(
        self, listener: Callable[[str, Optional[str]], None]
    ) -> None:
        """Register ``listener(site, owner)`` for every probe firing."""
        self._probe_listeners.append(listener)

    def remove_probe_listener(
        self, listener: Callable[[str, Optional[str]], None]
    ) -> None:
        """Unregister a probe listener (idempotent)."""
        try:
            self._probe_listeners.remove(listener)
        except ValueError:
            pass

    # -- scheduling -----------------------------------------------------

    def call_at(self, time: float, callback: Callable[[], None]) -> _Handle:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimError(f"cannot schedule in the past ({time} < {self._now})")
        handle = _Handle(time, next(self._seq), callback)
        heapq.heappush(self._heap, handle)
        return handle

    def call_later(self, delay: float, callback: Callable[[], None]) -> _Handle:
        """Schedule ``callback`` to run ``delay`` ms from now."""
        return self.call_at(self._now + delay, callback)

    def _call_soon(self, callback: Callable[[], None]) -> _Handle:
        return self.call_at(self._now, callback)

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot :class:`Event`."""
        return Event(self, name=name)

    # -- processes ------------------------------------------------------

    def spawn(
        self,
        gen: Generator,
        name: str = "",
        group: Optional[ProcessGroup] = None,
    ) -> Process:
        """Start a new process from generator ``gen``.

        The first step runs at the current simulated time, not inline, so
        spawning from within a process is race-free.
        """
        if not name:
            name = f"proc-{next(self._process_count)}"
        process = Process(self, gen, name)
        if group is not None:
            group.add(process)
            # A crash site: an MSP that just spawned a thread can die
            # before that thread ever runs.  Ungrouped (harness-level)
            # processes are not crash units and stay unprobed.
            self.probe("kernel.spawn", owner=group.name)
        self._call_soon(lambda: process._resume(None))
        return process

    # -- running --------------------------------------------------------

    def step(self) -> bool:
        """Run the next scheduled callback.  Returns False when idle."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            self.steps += 1
            handle.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or the clock passes ``until``."""
        if until is None:
            while self.step():
                pass
            return
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > until:
                break
            self.step()
        self._now = max(self._now, until)

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn ``gen``, run the simulation to quiescence, return its result."""
        process = self.spawn(gen, name=name)
        self.run()
        return process.result

    def run_until_process(self, process: Process, limit: Optional[float] = None) -> None:
        """Run until ``process`` finishes (daemons would otherwise keep
        the loop alive forever).  ``limit`` bounds runaway simulations."""
        while process.alive:
            if limit is not None and self._now > limit:
                break
            if not self.step():
                break


def first_of(sim: Simulator, events: Iterable[Event], name: str = "first") -> Event:
    """An event that fires when the first of ``events`` fires.

    Its value is ``(index, value)`` of the winning event.  Failures win
    too: the combined event fails with the same exception.
    """
    events = list(events)
    combined = sim.event(name=name)

    def make_callback(index: int) -> Callable[[Event], None]:
        def callback(ev: Event) -> None:
            if combined.triggered:
                return
            if ev._exception is not None:
                combined.fail(ev._exception)
            else:
                combined.trigger((index, ev._value))

        return callback

    for i, event in enumerate(events):
        event.subscribe(make_callback(i))
    return combined


def wait_with_timeout(sim: Simulator, event: Event, timeout: float):
    """Wait for ``event`` or ``timeout`` ms, whichever comes first.

    A generator for use with ``yield from``; returns the event's value or
    raises :class:`SimTimeoutError`.
    """
    timer = sim.event(name="timeout")
    handle = sim.call_later(timeout, lambda: timer.trigger(None) if not timer.triggered else None)
    winner = first_of(sim, [event, timer])
    index, value = yield winner
    handle.cancel()
    if index == 1:
        raise SimTimeoutError(f"timed out after {timeout} ms")
    return value
