"""Queued resources for the simulator: FIFO servers, stores and RW locks.

These model contended hardware and software resources: a CPU or a disk is
a :class:`Resource` (requests queue in FIFO order and are served with a
simulated service time chosen by the caller), an inbox or request queue is
a :class:`Store`, and shared-variable access locks are :class:`RWLock`.

All waiting primitives are generators used with ``yield from`` and are
kill-safe: a process killed while waiting simply disappears from the
queue (its ticket is cancelled by the ``finally`` block of the waiting
generator).
"""

from __future__ import annotations

import collections
from typing import Any, Optional

from repro.sim.kernel import Event, SimError, Simulator


class StoreClosed(SimError):
    """Raised to getters when a :class:`Store` is closed."""


class _Ticket:
    """A cancellable waiting slot in a resource/lock/store queue."""

    __slots__ = ("event", "cancelled")

    def __init__(self, event: Event):
        self.event = event
        self.cancelled = False


class Resource:
    """A FIFO server with fixed capacity (a CPU core pool, a disk).

    Usage::

        yield from resource.acquire()
        try:
            yield service_time_ms
        finally:
            resource.release()

    Utilization is tracked so experiments can report busy fractions
    (paper §5.5 reports CPU utilization).
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._queue: collections.deque[_Ticket] = collections.deque()
        self._busy_time = 0.0
        self._busy_since: Optional[float] = None

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def acquire(self):
        """Wait for a free slot (generator; use with ``yield from``)."""
        if self._in_use < self.capacity:
            self._grant()
            return
        ticket = _Ticket(self.sim.event(name=f"{self.name}.acquire"))
        self._queue.append(ticket)
        consumed = False
        try:
            yield ticket.event
            consumed = True
        finally:
            if not ticket.event.triggered:
                ticket.cancelled = True
            elif not consumed:
                # Killed between the grant and resuming: hand the slot
                # on, or it would leak and deadlock the resource.
                self.release()

    def release(self) -> None:
        """Free one slot and hand it to the next waiter, if any."""
        if self._in_use <= 0:
            raise SimError(f"resource {self.name!r} released while free")
        self._in_use -= 1
        if self._in_use == 0 and self._busy_since is not None:
            self._busy_time += self.sim.now - self._busy_since
            self._busy_since = None
        while self._queue:
            ticket = self._queue.popleft()
            if ticket.cancelled:
                continue
            self._grant()
            ticket.event.trigger(None)
            break

    def _grant(self) -> None:
        if self._in_use == 0:
            self._busy_since = self.sim.now
        self._in_use += 1

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of wall-clock time at least one slot was busy."""
        busy = self._busy_time
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, busy / elapsed)


class Store:
    """An unbounded FIFO queue with blocking ``get`` (inboxes, work queues)."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: collections.deque[Any] = collections.deque()
        self._getters: collections.deque[_Ticket] = collections.deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Append ``item``; wakes the longest-waiting getter, if any."""
        if self._closed:
            raise StoreClosed(f"store {self.name!r} is closed")
        while self._getters:
            ticket = self._getters.popleft()
            if ticket.cancelled:
                continue
            ticket.event.trigger(item)
            return
        self._items.append(item)

    def get(self):
        """Wait for and remove the oldest item (generator)."""
        if self._items:
            return self._items.popleft()
        if self._closed:
            raise StoreClosed(f"store {self.name!r} is closed")
        ticket = _Ticket(self.sim.event(name=f"{self.name}.get"))
        self._getters.append(ticket)
        consumed = False
        try:
            item = yield ticket.event
            consumed = True
        finally:
            if not ticket.event.triggered:
                ticket.cancelled = True
            elif not consumed and self._delivered(ticket):
                # Killed between delivery and resuming: put the item
                # back (or hand it straight to the next getter) so it is
                # not silently lost.
                self._requeue_front(ticket.event.value)
        return item

    def _requeue_front(self, item: Any) -> None:
        while self._getters:
            ticket = self._getters.popleft()
            if ticket.cancelled:
                continue
            ticket.event.trigger(item)
            return
        self._items.appendleft(item)

    def _delivered(self, ticket: _Ticket) -> bool:
        try:
            ticket.event.value
        except Exception:  # noqa: BLE001 - failed events carry no item
            return False
        return True

    def get_with_timeout(self, timeout: float):
        """Like :meth:`get`, but raises
        :class:`~repro.sim.kernel.SimTimeoutError` after ``timeout`` ms."""
        from repro.sim.kernel import SimTimeoutError

        if self._items:
            return self._items.popleft()
        if self._closed:
            raise StoreClosed(f"store {self.name!r} is closed")
        ticket = _Ticket(self.sim.event(name=f"{self.name}.get"))
        self._getters.append(ticket)

        def expire() -> None:
            if not ticket.event.triggered:
                ticket.cancelled = True
                ticket.event.fail(SimTimeoutError(f"{self.name}: get timed out after {timeout} ms"))

        handle = self.sim.call_later(timeout, expire)
        consumed = False
        try:
            item = yield ticket.event
            consumed = True
        finally:
            handle.cancel()
            if not ticket.event.triggered:
                ticket.cancelled = True
            elif not consumed and self._delivered(ticket):
                self._requeue_front(ticket.event.value)
        return item

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get: returns ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def close(self) -> None:
        """Reject future puts and fail all pending getters."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            ticket = self._getters.popleft()
            if not ticket.cancelled:
                ticket.event.fail(StoreClosed(f"store {self.name!r} closed"))

    def drain(self) -> list[Any]:
        """Remove and return all queued items (used at crash time)."""
        items = list(self._items)
        self._items.clear()
        return items


class RWLock:
    """A fair reader/writer lock for shared-variable access (paper §3.3).

    Readers share; writers are exclusive.  Fairness is FIFO between the
    reader and writer queues: a writer arriving before later readers is
    served first, matching the short access-duration locks of the paper
    (locks are released as soon as the access finishes, so no deadlocks).
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._readers = 0
        self._writer = False
        self._waiters: collections.deque[tuple[str, _Ticket]] = collections.deque()

    def acquire_read(self):
        """Take a shared lock (generator)."""
        if not self._writer and not self._waiters:
            self._readers += 1
            return
        ticket = _Ticket(self.sim.event(name=f"{self.name}.read"))
        self._waiters.append(("r", ticket))
        consumed = False
        try:
            yield ticket.event
            consumed = True
        finally:
            if not ticket.event.triggered:
                ticket.cancelled = True
            elif not consumed:
                self.release_read()  # granted but killed: hand it on

    def acquire_write(self):
        """Take an exclusive lock (generator)."""
        if not self._writer and self._readers == 0 and not self._waiters:
            self._writer = True
            return
        ticket = _Ticket(self.sim.event(name=f"{self.name}.write"))
        self._waiters.append(("w", ticket))
        consumed = False
        try:
            yield ticket.event
            consumed = True
        finally:
            if not ticket.event.triggered:
                ticket.cancelled = True
            elif not consumed:
                self.release_write()  # granted but killed: hand it on

    def release_read(self) -> None:
        if self._readers <= 0:
            raise SimError(f"rwlock {self.name!r}: release_read while unheld")
        self._readers -= 1
        self._wake()

    def release_write(self) -> None:
        if not self._writer:
            raise SimError(f"rwlock {self.name!r}: release_write while unheld")
        self._writer = False
        self._wake()

    def _wake(self) -> None:
        while self._waiters:
            kind, ticket = self._waiters[0]
            if ticket.cancelled:
                self._waiters.popleft()
                continue
            if kind == "w":
                if self._readers == 0 and not self._writer:
                    self._waiters.popleft()
                    self._writer = True
                    ticket.event.trigger(None)
                return
            # Grant a run of consecutive readers.
            if self._writer:
                return
            self._waiters.popleft()
            self._readers += 1
            ticket.event.trigger(None)
