"""Deterministic crash-schedule exploration (systematic crash fuzzing).

The paper's core claim (§4) is that an MSP can fail-stop at *any*
point — mid-append, mid-flush, mid-checkpoint, even during recovery
itself — and the system still delivers exactly-once semantics.  This
package turns that claim into an executable search problem: enumerate
every instrumented crash site the workload reaches, kill the MSP there,
run recovery, and check an invariant battery; then fuzz multi-crash and
network-fault compositions from replayable integer seeds.

- :mod:`repro.fuzz.sites` — site traces and the crash injector;
- :mod:`repro.fuzz.invariants` — the battery every schedule must pass;
- :mod:`repro.fuzz.explorer` — exhaustive and random modes, schedules,
  seed derivation, reports;
- :mod:`repro.fuzz.minimize` — greedy shrinking of failing schedules;
- :mod:`repro.fuzz.cli` — the ``python -m repro fuzz`` command.
"""

from repro.fuzz.explorer import (
    CrashSchedule,
    FaultSpec,
    FuzzParams,
    FuzzReport,
    ScheduleResult,
    case_seed_for,
    discover_sites,
    enumerate_schedules,
    explore_exhaustive,
    fleet_fuzz_params,
    fuzz_random,
    run_random_case,
    run_schedule,
    schedule_from_seed,
)
from repro.fuzz.invariants import check_fleet, check_msp, check_world
from repro.fuzz.minimize import minimize_schedule
from repro.fuzz.sites import CrashInjector, SiteEvent, TraceRecorder

__all__ = [
    "CrashInjector",
    "CrashSchedule",
    "FaultSpec",
    "FuzzParams",
    "FuzzReport",
    "ScheduleResult",
    "SiteEvent",
    "TraceRecorder",
    "case_seed_for",
    "check_fleet",
    "check_msp",
    "check_world",
    "discover_sites",
    "enumerate_schedules",
    "explore_exhaustive",
    "fleet_fuzz_params",
    "fuzz_random",
    "minimize_schedule",
    "run_random_case",
    "run_schedule",
    "schedule_from_seed",
]
