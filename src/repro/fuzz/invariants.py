"""The invariant battery a crash schedule must not break.

Every schedule the explorer executes ends with these checks over the
quiesced world.  Each checker returns a list of violation strings (empty
= invariant holds) so one run can report every broken property at once:

- **exactly-once** — every completed client call took effect exactly
  once (shared counters equal completed-call counts) and every client
  finished its script (a stall is a liveness violation);
- **no surviving orphans** — after quiesce, no session and no shared
  variable still depends on state lost in a crash;
- **shared-variable undo chains** — each variable's backward write chain
  walks through type-correct records with strictly decreasing LSNs down
  to a checkpoint or the chain's start;
- **durable-log well-formedness** — the crash-proof prefix parses as
  complete, checksummed, decodable frames ending exactly at the durable
  boundary, and the durable anchor points at a complete, durable MSP
  checkpoint record;
- **recovered and serving** — every MSP is back up (a crash during
  recovery must itself be recoverable);
- **network counter ledger** — every copy the fabric created is exactly
  one of delivered, dropped, or in flight (under loss and duplication
  faults alike);
- **lazy recovery** — no request ever executed against a session whose
  chain was still unreplayed, and no session is left awaiting its
  on-demand replay after quiesce (DESIGN.md §15).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.plsn import plsn_offset, plsn_partition
from repro.core.records import (
    NO_LSN,
    MspCheckpointRecord,
    SvCheckpointRecord,
    SvUpdateRecord,
    SvWriteRecord,
    decode_record,
)
from repro.core.session import SessionStatus
from repro.wire.framing import CorruptRecordError, unframe

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.msp import MiddlewareServer


def check_exactly_once(workload) -> list[str]:
    """Completed calls vs shared counters, and no stalled client."""
    violations: list[str] = []
    params = workload.params
    expected_calls = params.num_clients * params.requests_per_client
    completed = workload.client.stats.calls
    if completed != expected_calls:
        violations.append(
            f"liveness: clients completed {completed}/{expected_calls} calls"
        )
    try:
        counters = workload.shared_counters()
    except Exception as exc:  # noqa: BLE001 - a torn world is a finding
        violations.append(
            f"exactly-once: shared counters unreadable after quiesce ({exc!r})"
        )
        return violations
    expected = {
        "SV0": completed,
        "SV1": completed,
        "SV2": completed * params.calls_to_sm2,
        "SV3": completed * params.calls_to_sm2,
    }
    if counters != expected:
        violations.append(
            f"exactly-once: shared counters {counters}, expected {expected}"
        )
    return violations


def check_no_orphans(msp: "MiddlewareServer") -> list[str]:
    """No session or shared variable may remain an orphan after quiesce."""
    violations: list[str] = []
    if not msp.running:
        # check_running reports this; orphan state is unreadable anyway.
        return violations
    for session in msp.sessions.values():
        if session.is_orphan(msp.table):
            violations.append(
                f"orphan: {msp.name} session {session.id} still orphaned "
                f"(dv={session.dv!r})"
            )
        if session.status is not SessionStatus.NORMAL:
            violations.append(
                f"orphan: {msp.name} session {session.id} stuck in "
                f"{session.status.name} after quiesce"
            )
        if session.lazy_pending:
            violations.append(
                f"lazy: {msp.name} session {session.id} still awaiting "
                "its on-demand replay after quiesce (pump stalled)"
            )
    for sv in msp.shared.values():
        if sv.is_orphan(msp.table):
            violations.append(
                f"orphan: {msp.name} shared variable {sv.name} still orphaned "
                f"(dv={sv.dv!r})"
            )
    return violations


def check_sv_chains(msp: "MiddlewareServer", max_hops: int = 100_000) -> list[str]:
    """Undo chains must be type-correct and strictly backward.

    "Backward" is per partition: a partitioned chain hops between the
    writes' session partitions and the checkpoints' control partition,
    whose offsets are mutually unordered — but within any one partition
    the walk must strictly descend (that is what makes it terminate and
    what roll-back relies on).
    """
    violations: list[str] = []
    if not msp.running or msp.log is None:
        return violations
    for sv in msp.shared.values():
        cursor = sv.last_write_lsn
        previous_offsets: dict[int, int] = {}
        hops = 0
        while cursor != NO_LSN:
            partition = plsn_partition(cursor)
            offset = plsn_offset(cursor)
            previous = previous_offsets.get(partition)
            if previous is not None and offset >= previous:
                violations.append(
                    f"sv-chain: {msp.name}.{sv.name} chain not strictly "
                    f"decreasing ({previous} -> {offset} in partition "
                    f"{partition})"
                )
                break
            if hops > max_hops:
                violations.append(
                    f"sv-chain: {msp.name}.{sv.name} chain exceeds {max_hops} hops"
                )
                break
            try:
                record, _next = msp.log.record_at(cursor)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                violations.append(
                    f"sv-chain: {msp.name}.{sv.name} unreadable record at "
                    f"LSN {cursor}: {exc}"
                )
                break
            if isinstance(record, SvCheckpointRecord):
                if record.variable != sv.name:
                    violations.append(
                        f"sv-chain: {msp.name}.{sv.name} chain ends at a "
                        f"checkpoint of {record.variable!r}"
                    )
                break
            if not isinstance(record, (SvWriteRecord, SvUpdateRecord)):
                violations.append(
                    f"sv-chain: {msp.name}.{sv.name} chain hit "
                    f"{type(record).__name__} at LSN {cursor}"
                )
                break
            if record.variable != sv.name:
                violations.append(
                    f"sv-chain: {msp.name}.{sv.name} chain hit a write of "
                    f"{record.variable!r} at LSN {cursor}"
                )
                break
            previous_offsets[partition] = offset
            cursor = record.prev_write_lsn
            hops += 1
    return violations


def check_durable_log(msp: "MiddlewareServer") -> list[str]:
    """The live durable suffix must be a clean sequence of decodable frames.

    With checkpoint-driven truncation the log below ``truncate_lsn`` is
    recycled, so the walk starts at the floor.  The floor itself is
    checked too: it must trail the durable boundary, and the anchored
    checkpoint (which justified it) must sit at or above it.
    """
    violations: list[str] = []
    store = msp.store
    stores = getattr(msp, "stores", None) or [store]
    for partition, pstore in enumerate(stores):
        label = msp.name if partition == 0 else f"{msp.name}.p{partition}"
        durable = pstore.durable_end
        floor = pstore.truncate_lsn
        if floor > durable:
            violations.append(
                f"durable-log: {label} truncation floor {floor} ahead of the "
                f"durable boundary {durable}"
            )
            return violations
        offset = floor
        count = 0
        view = pstore.view(floor, durable - floor)
        try:
            while offset < durable:
                payload, next_offset = unframe(view, offset - floor)
                if payload is None:
                    violations.append(
                        f"durable-log: {label} torn frame at offset {offset} "
                        f"inside the durable prefix (durable_end={durable})"
                    )
                    break
                try:
                    decode_record(payload)
                except Exception as exc:  # noqa: BLE001 - report, don't crash
                    violations.append(
                        f"durable-log: {label} undecodable record at "
                        f"LSN {offset}: {exc}"
                    )
                    break
                offset = floor + next_offset
                count += 1
            else:
                if offset != durable:
                    violations.append(
                        f"durable-log: {label} frame at {offset} straddles "
                        f"the durable boundary {durable}"
                    )
        except CorruptRecordError as exc:
            violations.append(f"durable-log: {label} {exc}")
        finally:
            del view  # release the memoryview before any append can run

    durable = store.durable_end
    floor = store.truncate_lsn
    anchor_raw = store.read_anchor()
    if anchor_raw is not None:
        anchor = int.from_bytes(anchor_raw, "big")
        if anchor >= durable:
            violations.append(
                f"durable-log: {msp.name} anchor {anchor} points past the "
                f"durable boundary {durable}"
            )
        elif anchor < floor:
            violations.append(
                f"durable-log: {msp.name} anchor {anchor} below the "
                f"truncation floor {floor}"
            )
        elif msp.log is not None:
            try:
                record, _next = msp.log.record_at(anchor)
            except Exception as exc:  # noqa: BLE001
                violations.append(
                    f"durable-log: {msp.name} anchor {anchor} unreadable: {exc}"
                )
            else:
                if not isinstance(record, MspCheckpointRecord):
                    violations.append(
                        f"durable-log: {msp.name} anchor {anchor} points at "
                        f"{type(record).__name__}, not an MSP checkpoint"
                    )
                elif not msp.log.is_durable(anchor):
                    violations.append(
                        f"durable-log: {msp.name} anchor {anchor} points at a "
                        "non-durable checkpoint record"
                    )
                elif len(stores) == 1 and record.min_lsn(anchor) < floor:
                    # Truncation safety itself: a floor above the
                    # anchored checkpoint's minimal LSN means recovery
                    # would need recycled bytes.
                    violations.append(
                        f"durable-log: {msp.name} anchored checkpoint min_lsn "
                        f"{record.min_lsn(anchor)} below the truncation "
                        f"floor {floor}"
                    )
                elif len(stores) > 1 and record.partition_ends:
                    # Partitioned truncation safety: every partition's
                    # floor must sit at or below the scan start this
                    # anchored checkpoint implies for it.
                    scan_floors = record.partition_floors(anchor)
                    for partition, pstore in enumerate(stores):
                        if scan_floors[partition] < pstore.truncate_lsn:
                            violations.append(
                                f"durable-log: {msp.name} anchored checkpoint "
                                f"scan start {scan_floors[partition]} of "
                                f"partition {partition} below its truncation "
                                f"floor {pstore.truncate_lsn}"
                            )
    return violations


def check_running(msp: "MiddlewareServer") -> list[str]:
    """Every crash — including one during recovery — must be recovered."""
    if msp.running:
        return []
    return [f"recovery: {msp.name} is not serving after quiesce"]


def check_lazy_recovery(msp: "MiddlewareServer") -> list[str]:
    """Lazy mode (DESIGN.md §15): no request may ever have executed
    against a session whose chain was still unreplayed."""
    if msp.stats.served_before_recovery:
        return [
            f"lazy: {msp.name} executed {msp.stats.served_before_recovery} "
            "request(s) against not-yet-replayed sessions"
        ]
    return []


def check_msp(msp: "MiddlewareServer") -> list[str]:
    """The full per-MSP battery."""
    violations = check_running(msp)
    violations += check_no_orphans(msp)
    violations += check_sv_chains(msp)
    violations += check_durable_log(msp)
    violations += check_lazy_recovery(msp)
    return violations


def check_network_ledger(workload) -> list[str]:
    """The fabric's counter ledger must balance at all times:
    ``sent + duplicated == delivered + dropped + in_flight``."""
    try:
        workload.network.check_ledger()
    except AssertionError as exc:
        return [f"network-ledger: {exc}"]
    return []


def check_world(workload, msps: Iterable["MiddlewareServer"]) -> list[str]:
    """The full battery over a quiesced workload run."""
    violations = check_exactly_once(workload)
    violations += check_network_ledger(workload)
    for msp in msps:
        violations += check_msp(msp)
    return violations


def check_fleet(world) -> list[str]:
    """The battery over a quiesced fleet world (multi-domain topology).

    On top of the per-MSP battery and the network ledger, a fleet run
    must satisfy the domain-boundary properties the paper's topology
    cannot exercise: every completed call hit its whole chain exactly
    once (including hops that crossed a domain boundary through the
    pessimistic flush-before-send path), no DV ever leaked past a
    domain boundary, and recovery knowledge stayed inside the crashed
    MSP's domain.
    """
    shard = world.shard
    violations: list[str] = []
    if shard.completed_sessions != shard.expected_sessions:
        violations.append(
            f"liveness: fleet completed {shard.completed_sessions}/"
            f"{shard.expected_sessions} sessions"
        )
    if shard.call_errors:
        violations.append(
            f"liveness: {shard.call_errors} fleet call(s) returned an error"
        )
    for name in shard.local_names:
        msp = shard.msps[name]
        if not msp.running:
            continue  # check_running reports it; the counter is unreadable
        sv = msp.shared.get("hits")
        actual = int.from_bytes(sv.value, "big") if sv is not None else 0
        expected = shard.expected_hits.get(name, 0)
        if actual != expected:
            violations.append(
                f"exactly-once: {name} counted {actual} hits, "
                f"client oracle expected {expected}"
            )
    violations += check_network_ledger(world)
    for msp in world.fuzz_msps:
        violations += check_msp(msp)
    # Domain isolation: no DV and no recovery knowledge past a boundary.
    violations += shard.check_invariants()
    return violations
