"""The deterministic crash-schedule explorer.

Two modes over the paper workload (§5.1 topology: client, MSP1, MSP2 in
one service domain):

- **exhaustive** single-crash enumeration: one instrumented discovery
  run records every crash site the workload reaches; then, for each
  enumerated site, a fresh world is built and the target MSP is
  fail-stopped exactly there, recovery runs, and the invariant battery
  (:mod:`repro.fuzz.invariants`) is checked;
- **random** multi-crash/fault fuzzing: each case is fully determined by
  one integer ``case_seed`` — it seeds the world, the kill ordinals
  (1–3 crashes, possibly landing *inside* recovery) and the link-fault
  model (loss/duplication/reordering via :mod:`repro.net.faults`).
  A failing case therefore replays byte-for-byte from its seed alone:
  ``python -m repro fuzz --replay <seed>``.

Schedules are expressed in per-owner probe ordinals ("the k-th crash
site MSP2 reaches"), the coordinate system of :mod:`repro.fuzz.sites`.

Every schedule is an independent seeded simulation, so both modes fan
out across cores (``jobs``/``REPRO_JOBS``, :mod:`repro.parallel`):
workers rebuild their world from the serialized schedule alone and the
parent merges verdicts in schedule order, so a ``--jobs 8`` run
produces the byte-identical report of a ``--jobs 1`` run.  Exhaustive
mode additionally offers a bounded two-crash *pair* product
(``enumerate_pair_schedules``) whose quadratic schedule count is only
practical multi-core.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional

from repro.core.session import SessionStatus
from repro.fuzz.invariants import check_world
from repro.fuzz.sites import CrashInjector, TraceRecorder
from repro.net.faults import FaultModel
from repro.workloads.paper import (
    BANDWIDTH_BYTES_PER_MS,
    CLIENT_LINK_LATENCY_MS,
    MSP_LINK_LATENCY_MS,
    PaperWorkload,
    WorkloadParams,
)

#: Case-seed derivation for random mode: ``master_seed * _SEED_STRIDE + i``.
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class FaultSpec:
    """Link faults a schedule composes into the run (both workload links)."""

    loss_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_max_delay_ms: float = 5.0

    def to_model(self) -> FaultModel:
        return FaultModel(
            loss_prob=self.loss_prob,
            duplicate_prob=self.duplicate_prob,
            reorder_prob=self.reorder_prob,
            reorder_max_delay_ms=self.reorder_max_delay_ms,
        )


@dataclass(frozen=True)
class CrashSchedule:
    """One replayable crash/fault schedule.

    ``kills`` are per-owner probe ordinals at which ``target`` is
    fail-stopped (and restarted).  Ordinals beyond the run's trace never
    fire — a no-op kill, which the minimizer prunes.
    """

    target: str
    kills: tuple[int, ...]
    seed: int
    faults: Optional[FaultSpec] = None

    def to_dict(self) -> dict:
        data = {
            "target": self.target,
            "kills": list(self.kills),
            "seed": self.seed,
        }
        if self.faults is not None:
            data["faults"] = asdict(self.faults)
        return data

    @staticmethod
    def from_dict(data: dict) -> "CrashSchedule":
        faults = data.get("faults")
        return CrashSchedule(
            target=data["target"],
            kills=tuple(int(k) for k in data["kills"]),
            seed=int(data["seed"]),
            faults=FaultSpec(**faults) if faults else None,
        )


@dataclass
class FuzzParams:
    """Shape of the fuzzed workload and execution bounds."""

    num_clients: int = 2
    requests_per_client: int = 6
    calls_to_sm2: int = 1
    #: Small thresholds/periods so checkpoint phases appear in traces.
    session_ckpt_threshold: int = 4 * 1024
    msp_ckpt_interval_ms: float = 40.0
    #: Simulated-time budget; a schedule that exceeds it is a liveness
    #: failure (clients stalled), not a hang of the explorer.
    limit_ms: float = 60_000.0
    #: Extra simulated time after the run for in-flight recoveries.
    quiesce_ms: float = 2_000.0
    #: Random mode samples kill ordinals from ``[0, kill_horizon)``.
    kill_horizon: int = 600
    targets: tuple[str, ...] = ("msp1", "msp2")
    #: Checkpoint-driven log truncation, with segments small enough —
    #: and sv/forced checkpoints frequent enough that the minimal LSN
    #: actually advances — that the short fuzz workloads recycle real
    #: segments, so the truncate-step crash probes guard genuine
    #: recycling, not no-op truncations.
    log_truncation: bool = True
    log_segment_bytes: int = 2048
    sv_ckpt_write_threshold: int = 6
    forced_ckpt_msp_count: int = 2
    #: Log partition count (1 = classical single log); >1 exercises the
    #: per-partition group commit and DV-ordered recovery merge.
    log_partitions: int = 1
    #: Crash-recovery mode: ``eager`` (historical, byte-identical) or
    #: ``lazy`` (on-demand chain replay, DESIGN.md §15).  Lazy mode adds
    #: crash sites inside the lazy machinery (analysis hand-off, chain
    #: walks, pump steps), so the exhaustive battery enumerates
    #: crash-during-lazy-replay and crash-while-partially-recovered.
    recovery_mode: str = "eager"
    #: Request logging mode: ``value`` (historical, byte-identical),
    #: ``command`` (log the request, not the deltas — DESIGN.md §16) or
    #: ``adaptive`` (the runtime policy switching per session).  The
    #: non-value modes exercise command replay, the (lsn, ordinal)
    #: idempotence frontier and the in-memory rollback history under
    #: arbitrary crash schedules.
    logging_mode: str = "value"
    #: World shape: ``paper`` (the §5.1 three-node topology) or
    #: ``fleet`` (a single-shard multi-domain fleet, DESIGN.md §17,
    #: whose request chains cross domain boundaries — crash probes can
    #: then land mid-chain while a cross-domain pessimistic flush is in
    #: flight).  The ``fleet_*`` fields apply only to the latter.
    topology: str = "paper"
    fleet_msps: int = 4
    fleet_domains: int = 2
    fleet_sessions: int = 10
    fleet_duration_ms: float = 400.0
    fleet_chain_depth: int = 2
    fleet_cross_domain_fraction: float = 0.75

    def workload_params(self, seed: int) -> WorkloadParams:
        return WorkloadParams(
            configuration="LoOptimistic",
            num_clients=self.num_clients,
            requests_per_client=self.requests_per_client,
            calls_to_sm2=self.calls_to_sm2,
            session_ckpt_threshold=self.session_ckpt_threshold,
            msp_ckpt_interval_ms=self.msp_ckpt_interval_ms,
            log_truncation=self.log_truncation,
            log_segment_bytes=self.log_segment_bytes,
            sv_ckpt_write_threshold=self.sv_ckpt_write_threshold,
            forced_ckpt_msp_count=self.forced_ckpt_msp_count,
            log_partitions=self.log_partitions,
            recovery_mode=self.recovery_mode,
            logging_mode=self.logging_mode,
            # Atomic RMW counters: with the paper's separate read + write
            # accesses, two concurrent clients can interleave and lose an
            # increment with no crash at all (the fuzzer's first find),
            # which would make the counter oracle unsound.
            atomic_sv_updates=True,
            seed=seed,
        )

    def fleet_spec(self, seed: int):
        """The single-shard fleet this parameter set fuzzes."""
        from repro.fleet.topology import FleetSpec

        return FleetSpec(
            msps=self.fleet_msps,
            domains=self.fleet_domains,
            shards=1,
            seed=seed,
            sessions=self.fleet_sessions,
            duration_ms=self.fleet_duration_ms,
            chain_depth=self.fleet_chain_depth,
            cross_domain_fraction=self.fleet_cross_domain_fraction,
            think_ms=2.0,
            session_ckpt_threshold=self.session_ckpt_threshold,
            msp_ckpt_interval_ms=self.msp_ckpt_interval_ms,
            log_segment_bytes=self.log_segment_bytes,
            sv_ckpt_write_threshold=self.sv_ckpt_write_threshold,
            log_partitions=self.log_partitions,
            recovery_mode=self.recovery_mode,
            logging_mode=self.logging_mode,
        )


def fleet_fuzz_params(**overrides) -> FuzzParams:
    """FuzzParams for the multi-domain fleet topology.

    Targets default to *every* fleet MSP, so exhaustive mode enumerates
    crash sites across all domains — upstreams mid cross-domain call,
    downstreams mid flush-serve.
    """
    params = FuzzParams(topology="fleet", **overrides)
    if "targets" not in overrides:
        params.targets = tuple(f"m{i:03d}" for i in range(params.fleet_msps))
    return params


@dataclass
class ScheduleResult:
    """Outcome of executing one schedule."""

    schedule: CrashSchedule
    violations: list[str]
    crashes_injected: int
    sites_in_trace: int
    completed_requests: int
    elapsed_sim_ms: float
    #: The structured tracer of the run, present only when the schedule
    #: was executed with ``trace=True`` (replay/diagnosis paths).  Not
    #: part of the fingerprint: tracing must never affect outcomes.
    tracer: Optional[object] = None

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def fingerprint(self) -> tuple:
        """Deterministic digest two replays of one case must agree on."""
        return (
            tuple(self.violations),
            self.crashes_injected,
            self.sites_in_trace,
            self.completed_requests,
            round(self.elapsed_sim_ms, 6),
        )


@dataclass
class FuzzFailure:
    """A reported failure: everything needed to reproduce it."""

    schedule: dict
    violations: list[str]
    case_seed: Optional[int] = None

    def to_dict(self) -> dict:
        return {
            "schedule": self.schedule,
            "violations": self.violations,
            "case_seed": self.case_seed,
            "replay": (
                f"python -m repro fuzz --replay {self.case_seed}"
                if self.case_seed is not None
                else "python -m repro fuzz --replay-file <artifact> --index <n>"
            ),
        }


@dataclass
class FuzzReport:
    """Summary of one explorer invocation (the CI artifact on failure)."""

    mode: str
    sites_discovered: dict[str, int] = field(default_factory=dict)
    schedules_run: int = 0
    crashes_injected: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "sites_discovered": dict(self.sites_discovered),
            "total_sites": sum(self.sites_discovered.values()),
            "schedules_run": self.schedules_run,
            "crashes_injected": self.crashes_injected,
            "failures": [f.to_dict() for f in self.failures],
        }


# ---------------------------------------------------------------------------
# world construction and schedule execution
# ---------------------------------------------------------------------------


def build_world(params: FuzzParams, seed: int, faults: Optional[FaultSpec]):
    """A fresh world for one schedule: the paper workload, or a
    single-shard fleet when ``params.topology == "fleet"``; schedule
    faults go on every inter-MSP link either way."""
    if params.topology == "fleet":
        from repro.fleet.fuzzworld import FleetFuzzWorld

        return FleetFuzzWorld(
            params.fleet_spec(seed),
            faults=faults.to_model() if faults is not None else None,
        )
    workload = PaperWorkload(params.workload_params(seed))
    if faults is not None:
        model = faults.to_model()
        workload.network.set_link(
            "client",
            "msp1",
            latency_ms=CLIENT_LINK_LATENCY_MS,
            bandwidth_bytes_per_ms=BANDWIDTH_BYTES_PER_MS,
            faults=model,
        )
        workload.network.set_link(
            "msp1",
            "msp2",
            latency_ms=MSP_LINK_LATENCY_MS,
            bandwidth_bytes_per_ms=BANDWIDTH_BYTES_PER_MS,
            faults=model,
        )
    return workload


def _world_msps(workload) -> list:
    """Every MSP of the world, whatever its topology."""
    msps = getattr(workload, "fuzz_msps", None)
    if msps is not None:
        return list(msps)
    return [workload.msp1, workload.msp2]


def _quiesced(workload) -> bool:
    """All MSPs serving and no session replay still in flight.

    Recovery opens for business *before* the parallel session replays
    finish (paper §4.3), so ``running`` alone is not quiescence.
    """
    for msp in _world_msps(workload):
        if not msp.running:
            return False
        for session in msp.sessions.values():
            if session.recovery_pending or session.status is not SessionStatus.NORMAL:
                return False
    return True


def _crash_and_restart(workload, target: str):
    named = getattr(workload, "msp_named", None)
    if named is not None:
        msp = named(target)
    else:
        msp = {"msp1": workload.msp1, "msp2": workload.msp2}[target]

    def crash() -> None:
        msp.crash()
        msp.restart_process()

    return crash


def discover_sites(params: FuzzParams, seed: int = 0) -> TraceRecorder:
    """One uninjected run; returns the recorder holding the site trace."""
    workload = build_world(params, seed, faults=None)
    recorder = TraceRecorder(workload.sim).attach()
    workload.run(limit_ms=params.limit_ms)
    workload.sim.run(until=workload.sim.now + params.quiesce_ms)
    recorder.detach()
    return recorder


def run_schedule(
    schedule: CrashSchedule, params: FuzzParams, trace: bool = False
) -> ScheduleResult:
    """Execute one schedule in a fresh world and check every invariant.

    ``trace=True`` attaches a structured tracer (:mod:`repro.trace`) to
    the run's simulator and returns it on the result — the artifact a
    failure replay dumps so the failing schedule's timeline can be read
    in ``chrome://tracing``.
    """
    workload = build_world(params, schedule.seed, schedule.faults)
    tracer = None
    if trace:
        from repro.trace import Tracer

        tracer = Tracer(workload.sim).attach()
    recorder = TraceRecorder(workload.sim).attach()
    injector = CrashInjector(
        workload.sim,
        schedule.target,
        schedule.kills,
        _crash_and_restart(workload, schedule.target),
    ).attach()
    result = workload.run(limit_ms=params.limit_ms)
    workload.sim.run(until=workload.sim.now + params.quiesce_ms)
    # A kill that lands at the very edge of the quiesce window leaves its
    # recovery or session replays in flight; grant bounded extra time so
    # the battery judges a recovered world, not a mid-recovery snapshot.
    # (A recovery that cannot finish within this budget is a genuine
    # liveness violation.)
    settle_deadline = workload.sim.now + params.quiesce_ms
    while workload.sim.now < settle_deadline and not _quiesced(workload):
        if not workload.sim.step():
            break
    injector.detach()
    recorder.detach()
    checker = getattr(workload, "fuzz_check", None)
    if checker is not None:
        violations = checker()
    else:
        violations = check_world(workload, _world_msps(workload))
    if tracer is not None:
        tracer.finalize()
        from repro.trace import collect_component_metrics

        collect_component_metrics(
            tracer.metrics,
            msps=tuple(_world_msps(workload)),
            network=workload.network,
        )
    return ScheduleResult(
        schedule=schedule,
        violations=violations,
        crashes_injected=injector.crashes_injected,
        sites_in_trace=len(recorder.events),
        completed_requests=result.completed_requests,
        elapsed_sim_ms=result.elapsed_ms,
        tracer=tracer,
    )


# ---------------------------------------------------------------------------
# exhaustive single-crash enumeration
# ---------------------------------------------------------------------------


def enumerate_schedules(
    params: FuzzParams,
    seed: int = 0,
    targets: Optional[Iterable[str]] = None,
    stride: int = 1,
    max_schedules: Optional[int] = None,
) -> tuple[list[CrashSchedule], dict[str, int]]:
    """All single-crash schedules from one discovery run.

    ``stride`` and ``max_schedules`` bound CI smoke passes; the
    truncation is evenly spaced so bounded runs still sample every phase
    of the workload rather than only its warm-up.
    """
    recorder = discover_sites(params, seed)
    counts = {t: recorder.count_for(t) for t in (targets or params.targets)}
    schedules: list[CrashSchedule] = []
    for target, count in sorted(counts.items()):
        for ordinal in range(0, count, max(1, stride)):
            schedules.append(CrashSchedule(target=target, kills=(ordinal,), seed=seed))
    if max_schedules is not None and len(schedules) > max_schedules:
        step = len(schedules) / max_schedules
        schedules = [schedules[int(i * step)] for i in range(max_schedules)]
    return schedules, counts


def enumerate_pair_schedules(
    params: FuzzParams,
    seed: int = 0,
    targets: Optional[Iterable[str]] = None,
    stride: int = 1,
    max_schedules: Optional[int] = None,
) -> tuple[list[CrashSchedule], dict[str, int]]:
    """The bounded two-crash product over one discovery run's sites.

    For each target, every ordered pair ``a < b`` of (strided) ordinals
    becomes a two-kill schedule — the second kill often lands *inside*
    the recovery the first one triggered, the interleaving single-crash
    enumeration cannot reach.  The pair space is quadratic (~850k for
    the default workload's 1306 sites), so bounded runs sample it
    evenly via ``max_schedules``; pairs are constructed lazily so a
    bounded run never materializes the full product.
    """
    recorder = discover_sites(params, seed)
    counts = {t: recorder.count_for(t) for t in (targets or params.targets)}
    index: list[tuple[str, int, int]] = []
    for target, count in sorted(counts.items()):
        ordinals = list(range(0, count, max(1, stride)))
        for i, a in enumerate(ordinals):
            for b in ordinals[i + 1 :]:
                index.append((target, a, b))
    if max_schedules is not None and len(index) > max_schedules:
        step = len(index) / max_schedules
        index = [index[int(i * step)] for i in range(max_schedules)]
    schedules = [
        CrashSchedule(target=target, kills=(a, b), seed=seed)
        for target, a, b in index
    ]
    return schedules, counts


def _trim_error(error: str) -> str:
    """The last non-blank line of a worker traceback, for reports."""
    lines = [line.strip() for line in error.strip().splitlines() if line.strip()]
    return lines[-1] if lines else "unknown worker error"


def _execute_all(
    schedules: list[CrashSchedule],
    params: FuzzParams,
    jobs: Optional[int],
    progress,
    case_seeds: Optional[list[int]] = None,
) -> list[tuple[Optional[ScheduleResult], Optional[str]]]:
    """Run every schedule, sequentially or fanned across cores.

    Returns ``(result, error)`` pairs **in schedule order** — the merge
    discipline that keeps parallel reports byte-identical to sequential
    ones.  ``error`` is set only when a worker died or hung; such tasks
    surface as failures carrying their replayable spec downstream.
    """
    from repro.parallel import resolve_jobs, run_tasks
    from repro.parallel.tasks import FuzzTaskSpec, run_fuzz_schedule

    total = len(schedules)
    if resolve_jobs(jobs) == 1:
        executed: list[tuple[Optional[ScheduleResult], Optional[str]]] = []
        for i, schedule in enumerate(schedules):
            result = run_schedule(schedule, params)
            executed.append((result, None))
            if progress is not None:
                progress(i + 1, total, result)
        return executed
    specs = [
        FuzzTaskSpec(
            schedule=schedule.to_dict(),
            params=params,
            case_seed=case_seeds[i] if case_seeds is not None else None,
        )
        for i, schedule in enumerate(schedules)
    ]
    outcomes = run_tasks(
        run_fuzz_schedule,
        specs,
        jobs=jobs,
        progress=(
            None
            if progress is None
            else lambda done, n, outcome: progress(done, n, outcome.result)
        ),
    )
    return [(outcome.result, outcome.error) for outcome in outcomes]


def _merge_outcomes(
    report: FuzzReport,
    schedules: list[CrashSchedule],
    executed: list[tuple[Optional[ScheduleResult], Optional[str]]],
    case_seeds: Optional[list[int]] = None,
) -> FuzzReport:
    """Fold ordered per-schedule outcomes into the report."""
    for i, (schedule, (result, error)) in enumerate(zip(schedules, executed)):
        case_seed = case_seeds[i] if case_seeds is not None else None
        report.schedules_run += 1
        if error is not None:
            report.failures.append(
                FuzzFailure(
                    schedule=schedule.to_dict(),
                    violations=[f"worker-failure: {_trim_error(error)}"],
                    case_seed=case_seed,
                )
            )
            continue
        report.crashes_injected += result.crashes_injected
        if result.failed:
            report.failures.append(
                FuzzFailure(
                    schedule=schedule.to_dict(),
                    violations=result.violations,
                    case_seed=case_seed,
                )
            )
    return report


def explore_exhaustive(
    params: Optional[FuzzParams] = None,
    seed: int = 0,
    targets: Optional[Iterable[str]] = None,
    stride: int = 1,
    max_schedules: Optional[int] = None,
    progress=None,
    jobs: Optional[int] = None,
    pairs: bool = False,
) -> FuzzReport:
    """Run every enumerated single-crash (or two-crash) schedule."""
    params = params or FuzzParams()
    enumerate_fn = enumerate_pair_schedules if pairs else enumerate_schedules
    schedules, counts = enumerate_fn(
        params, seed=seed, targets=targets, stride=stride, max_schedules=max_schedules
    )
    report = FuzzReport(
        mode="exhaustive-pairs" if pairs else "exhaustive", sites_discovered=counts
    )
    executed = _execute_all(schedules, params, jobs, progress)
    return _merge_outcomes(report, schedules, executed)


# ---------------------------------------------------------------------------
# seeded random multi-crash / fault fuzzing
# ---------------------------------------------------------------------------


def case_seed_for(master_seed: int, index: int) -> int:
    return master_seed * _SEED_STRIDE + index


def schedule_from_seed(case_seed: int, params: FuzzParams) -> CrashSchedule:
    """Derive the full schedule for one case, from its seed alone."""
    rng = random.Random(case_seed)
    target = rng.choice(sorted(params.targets))
    n_kills = rng.randint(1, 3)
    kills = tuple(sorted(rng.sample(range(params.kill_horizon), n_kills)))
    faults: Optional[FaultSpec] = None
    if rng.random() < 0.5:
        faults = FaultSpec(
            loss_prob=rng.choice([0.0, 0.02, 0.05]),
            duplicate_prob=rng.choice([0.0, 0.02, 0.05]),
            reorder_prob=rng.choice([0.0, 0.1, 0.25]),
            reorder_max_delay_ms=rng.choice([2.0, 5.0]),
        )
    return CrashSchedule(target=target, kills=kills, seed=case_seed, faults=faults)


def run_random_case(
    case_seed: int, params: Optional[FuzzParams] = None, trace: bool = False
) -> ScheduleResult:
    """Execute (or replay) the case identified by ``case_seed``."""
    params = params or FuzzParams()
    return run_schedule(schedule_from_seed(case_seed, params), params, trace=trace)


def fuzz_random(
    master_seed: int = 0,
    runs: int = 50,
    params: Optional[FuzzParams] = None,
    progress=None,
    jobs: Optional[int] = None,
) -> FuzzReport:
    """``runs`` independent seeded cases; failures report their case seed."""
    params = params or FuzzParams()
    report = FuzzReport(mode="random")
    case_seeds = [case_seed_for(master_seed, i) for i in range(runs)]
    schedules = [schedule_from_seed(seed, params) for seed in case_seeds]
    executed = _execute_all(schedules, params, jobs, progress, case_seeds=case_seeds)
    return _merge_outcomes(report, schedules, executed, case_seeds=case_seeds)
