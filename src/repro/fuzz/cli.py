"""``python -m repro fuzz`` — the crash-schedule explorer front end.

Modes:

- ``--mode exhaustive`` (default): enumerate every crash site of the
  default paper workload and execute one single-crash schedule per site
  (``--stride``/``--max-schedules`` bound smoke passes);
- ``--mode random``: ``--seeds N`` seeded multi-crash/fault cases from
  ``--seed``; every failure prints its case seed;
- ``--replay <case_seed>``: re-execute exactly one random case;
- ``--replay-file <artifact> [--index N]``: re-execute a schedule
  recorded in a failure artifact (covers exhaustive-mode failures).

On failure the full ``(seed, schedule)`` list is written to ``--out``
(JSON) so CI can upload it, each failure is optionally minimized with
``--minimize``, and the exit status is 1.  The first failure is re-run
with structured tracing (:mod:`repro.trace`) and its timeline dumped as
``<out>.trace.json`` / ``.trace.jsonl``; a ``--replay`` that reproduces
violations dumps the same pair.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Optional

from repro.fuzz.explorer import (
    CrashSchedule,
    FuzzParams,
    FuzzReport,
    explore_exhaustive,
    fleet_fuzz_params,
    fuzz_random,
    run_random_case,
    run_schedule,
    schedule_from_seed,
)
from repro.fuzz.minimize import minimize_recorded_failure
from repro.parallel import ProgressReporter, resolve_jobs, run_tasks
from repro.parallel.tasks import FuzzTaskSpec, minimize_fuzz_failure

#: Pairs mode samples this many two-crash schedules when no explicit
#: ``--max-schedules`` bounds the (quadratic) pair product.
DEFAULT_PAIR_SCHEDULES = 2000


def add_fuzz_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mode", choices=("exhaustive", "random"), default="exhaustive"
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: REPRO_JOBS or all cores; "
        "1 = in-process)",
    )
    parser.add_argument(
        "--pairs", action="store_true",
        help="exhaustive mode: bounded two-crash pair product instead of "
        "single crashes",
    )
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument(
        "--seeds", type=int, default=50, help="random mode: number of cases"
    )
    parser.add_argument(
        "--replay", type=int, default=None, metavar="CASE_SEED",
        help="re-execute one random case byte-for-byte",
    )
    parser.add_argument(
        "--replay-file", default=None, metavar="ARTIFACT",
        help="re-execute a schedule from a failure artifact JSON",
    )
    parser.add_argument(
        "--index", type=int, default=0, help="failure index inside --replay-file"
    )
    parser.add_argument(
        "--topology", choices=("paper", "fleet"), default="paper",
        help="world shape: the paper's three-node workload (default) or "
        "a single-shard multi-domain fleet whose request chains cross "
        "domain boundaries",
    )
    parser.add_argument(
        "--fleet-msps", type=int, default=None, metavar="N",
        help="fleet topology: MSP count (default 4)",
    )
    parser.add_argument(
        "--fleet-domains", type=int, default=None, metavar="N",
        help="fleet topology: service-domain count (default 2)",
    )
    parser.add_argument(
        "--fleet-sessions", type=int, default=None, metavar="N",
        help="fleet topology: session count (default 10)",
    )
    parser.add_argument(
        "--target", default="both",
        help="exhaustive mode: which MSP to kill (msp1/msp2 for the "
        "paper topology, m000..mNNN for the fleet; default: all)",
    )
    parser.add_argument("--stride", type=int, default=1, help="site stride")
    parser.add_argument("--max-schedules", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument(
        "--partitions", type=int, default=None, metavar="N",
        help="log partitions (default 1 = classical single log)",
    )
    parser.add_argument(
        "--recovery-mode", choices=("eager", "lazy"), default=None,
        help="crash-recovery mode (default eager; lazy adds on-demand "
        "chain-replay crash sites to the enumeration)",
    )
    parser.add_argument(
        "--logging-mode", choices=("value", "command", "adaptive"), default=None,
        help="request logging mode (default value; command logs the "
        "request instead of per-variable deltas, adaptive switches per "
        "session at runtime)",
    )
    parser.add_argument(
        "--minimize", action="store_true", help="shrink failures before reporting"
    )
    parser.add_argument(
        "--out", default="fuzz-artifact.json", help="failure artifact path"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="no per-schedule progress"
    )


def _params(args: argparse.Namespace) -> FuzzParams:
    if getattr(args, "topology", "paper") == "fleet":
        overrides = {}
        if getattr(args, "fleet_msps", None) is not None:
            overrides["fleet_msps"] = args.fleet_msps
        if getattr(args, "fleet_domains", None) is not None:
            overrides["fleet_domains"] = args.fleet_domains
        if getattr(args, "fleet_sessions", None) is not None:
            overrides["fleet_sessions"] = args.fleet_sessions
        params = fleet_fuzz_params(**overrides)
    else:
        params = FuzzParams()
    if args.requests is not None:
        params.requests_per_client = args.requests
    if args.clients is not None:
        params.num_clients = args.clients
    if getattr(args, "partitions", None) is not None:
        params.log_partitions = args.partitions
    if getattr(args, "recovery_mode", None) is not None:
        params.recovery_mode = args.recovery_mode
    if getattr(args, "logging_mode", None) is not None:
        params.logging_mode = args.logging_mode
    return params


def _progress(quiet: bool, label: str):
    if quiet:
        return None
    reporter = ProgressReporter(f"  {label}").start()

    def report(done: int, total: int, result) -> None:
        detail = None
        if result is not None and result.failed:
            detail = f"FAIL {result.schedule.to_dict()}"
        reporter.update(done, total, detail)

    return report


def _minimize_failures(
    report: FuzzReport, params: FuzzParams, quiet: bool, jobs: Optional[int]
) -> None:
    """Shrink every failure; independent failures shrink in parallel.

    Worker-failure reports (a died/hung worker, not an invariant
    violation) carry no reproducible violation to shrink against and are
    left untouched.
    """
    shrinkable = [
        f for f in report.failures
        if not any(v.startswith("worker-failure:") for v in f.violations)
    ]
    if not shrinkable:
        return
    if resolve_jobs(jobs) > 1 and len(shrinkable) > 1:
        specs = [
            FuzzTaskSpec(schedule=f.schedule, params=params) for f in shrinkable
        ]
        outcomes = run_tasks(minimize_fuzz_failure, specs, jobs=jobs)
        minimized_list = [
            (o.result["schedule"], o.result["attempts"]) if o.ok
            else (o.spec.schedule, 0)  # keep the unshrunk, replayable spec
            for o in outcomes
        ]
    else:
        minimized_list = [
            minimize_recorded_failure(f.schedule, params) for f in shrinkable
        ]
    for failure, (minimized, attempts) in zip(shrinkable, minimized_list):
        original = failure.schedule
        failure.schedule = minimized
        if not quiet:
            print(
                f"  minimized {original} -> {minimized} "
                f"({attempts} oracle runs)"
            )


def _trace_paths(out: str) -> tuple[str, str]:
    stem = out[:-5] if out.endswith(".json") else out
    return f"{stem}.trace.json", f"{stem}.trace.jsonl"


def _dump_trace(tracer, out: str) -> None:
    """Write a failing run's trace (Chrome + JSONL) next to ``out``."""
    from repro.trace import write_chrome_trace, write_jsonl

    chrome_path, jsonl_path = _trace_paths(out)
    write_chrome_trace(tracer, chrome_path)
    write_jsonl(tracer, jsonl_path)
    print(
        f"wrote failure trace {chrome_path} (chrome://tracing) "
        f"and {jsonl_path}",
        file=sys.stderr,
    )


def _finish(report: FuzzReport, args: argparse.Namespace, wall_s: float) -> int:
    total_sites = sum(report.sites_discovered.values())
    print(
        f"fuzz {report.mode}: {report.schedules_run} schedules, "
        f"{report.crashes_injected} crashes injected"
        + (f", {total_sites} sites discovered" if report.sites_discovered else "")
        + f", {len(report.failures)} failures, {wall_s:.1f}s"
    )
    if report.ok:
        return 0
    artifact = report.to_dict()
    # Embed the run's workload shape: a replay from this artifact must
    # reproduce the same modes (partitions, recovery, logging), not
    # whatever the replaying invocation's flags default to.
    artifact["params"] = dataclasses.asdict(_params(args))
    with open(args.out, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
    print(f"wrote failure artifact {args.out}", file=sys.stderr)
    for failure in report.failures:
        print(f"  failure: {failure.to_dict()['replay']}", file=sys.stderr)
    # Re-run the first failure with structured tracing on and dump its
    # timeline, so the artifact upload carries not just the replayable
    # schedule but the trace of what the failing run actually did.
    first = report.failures[0]
    try:
        schedule = CrashSchedule.from_dict(first.schedule)
        result = run_schedule(schedule, _params(args), trace=True)
        if result.tracer is not None:
            _dump_trace(result.tracer, args.out)
    except Exception as exc:  # tracing must never mask the failure exit
        print(f"trace dump failed: {exc}", file=sys.stderr)
    return 1


def _run_replay(args: argparse.Namespace, params: FuzzParams) -> int:
    if args.replay is not None:
        schedule = schedule_from_seed(args.replay, params)
        print(f"replaying case seed {args.replay}: {schedule.to_dict()}")
        result = run_random_case(args.replay, params, trace=True)
    else:
        with open(args.replay_file) as fh:
            artifact = json.load(fh)
        recorded = artifact.get("params")
        if recorded is not None:
            # Reproduce the recorded run's workload shape exactly; the
            # replaying invocation's own shape flags do not apply.
            recorded["targets"] = tuple(recorded.get("targets", ()))
            params = FuzzParams(**recorded)
            print(f"using recorded params: {dataclasses.asdict(params)}")
        failures = artifact.get("failures", [])
        if not failures:
            print("artifact holds no failures", file=sys.stderr)
            return 2
        if not 0 <= args.index < len(failures):
            print(
                f"--index {args.index} out of range (artifact holds "
                f"{len(failures)} failures)",
                file=sys.stderr,
            )
            return 2
        schedule = CrashSchedule.from_dict(failures[args.index]["schedule"])
        print(f"replaying recorded schedule: {schedule.to_dict()}")
        result = run_schedule(schedule, params, trace=True)
    if result.violations:
        print("reproduced violations:")
        for violation in result.violations:
            print(f"  - {violation}")
        # The replay ran traced: dump the failing schedule's timeline so
        # the violation can be read step by step in chrome://tracing.
        if result.tracer is not None:
            _dump_trace(result.tracer, args.out)
        return 1
    print("schedule ran clean (no invariant violations)")
    return 0


def run_fuzz(args: argparse.Namespace) -> int:
    params = _params(args)
    if args.replay is not None or args.replay_file is not None:
        return _run_replay(args, params)

    started = time.monotonic()
    targets: Optional[tuple[str, ...]] = None
    if args.target != "both":
        targets = (args.target,)
    jobs = resolve_jobs(args.jobs)
    if args.mode == "exhaustive":
        max_schedules = args.max_schedules
        if args.pairs and max_schedules is None:
            max_schedules = DEFAULT_PAIR_SCHEDULES
        label = "fuzz pairs" if args.pairs else "fuzz exhaustive"
        report = explore_exhaustive(
            params,
            seed=args.seed,
            targets=targets,
            stride=args.stride,
            max_schedules=max_schedules,
            progress=_progress(args.quiet, f"{label} (jobs={jobs})"),
            jobs=jobs,
            pairs=args.pairs,
        )
    else:
        report = fuzz_random(
            master_seed=args.seed,
            runs=args.seeds,
            params=params,
            progress=_progress(args.quiet, f"fuzz random (jobs={jobs})"),
            jobs=jobs,
        )
    if report.failures and args.minimize:
        _minimize_failures(report, params, args.quiet, jobs)
    return _finish(report, args, time.monotonic() - started)
