"""Greedy schedule minimization.

A failure found by random multi-crash fuzzing usually carries baggage:
kills that never fired, faults that don't matter, crashes that happen
after the bug already triggered.  :func:`minimize_schedule` shrinks a
failing schedule to its shortest reproducing prefix by re-executing
candidate simplifications against a ``still_fails`` oracle (in real use,
``lambda s: run_schedule(s, params).failed``):

1. drop the fault model entirely;
2. keep only the shortest failing *prefix* of the kill list;
3. drop remaining individual kills one at a time;
4. soften remaining fault probabilities to zero, one field at a time.

Each pass restarts after an improvement, so the result is a local
minimum: no single further deletion still reproduces the failure.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.fuzz.explorer import CrashSchedule, FaultSpec, FuzzParams


def minimize_recorded_failure(
    schedule_dict: dict, params: FuzzParams, max_attempts: int = 200
) -> tuple[dict, int]:
    """Minimize one serialized failing schedule against the real oracle.

    The module-level, fully-picklable form of :func:`minimize_schedule`
    (the oracle is rebuilt here instead of closed over), so each failure
    of a fuzz run can shrink in its own pool worker.  Returns the
    minimized schedule in the same serialized form, plus oracle calls.
    """
    from repro.fuzz.explorer import run_schedule

    schedule = CrashSchedule.from_dict(schedule_dict)
    minimized, attempts = minimize_schedule(
        schedule,
        lambda candidate: run_schedule(candidate, params).failed,
        max_attempts=max_attempts,
    )
    return minimized.to_dict(), attempts


def minimize_schedule(
    schedule: CrashSchedule,
    still_fails: Callable[[CrashSchedule], bool],
    max_attempts: int = 200,
) -> tuple[CrashSchedule, int]:
    """Shrink ``schedule``; returns ``(minimized, oracle_calls)``.

    ``still_fails`` must be deterministic (it is, for explorer runs —
    that is the point of seeded schedules).  The input schedule is
    assumed to fail; it is returned unchanged if nothing smaller does.
    """
    attempts = 0

    def check(candidate: CrashSchedule) -> bool:
        nonlocal attempts
        attempts += 1
        return still_fails(candidate)

    best = schedule
    improved = True
    while improved and attempts < max_attempts:
        improved = False

        # 1. The whole fault model.
        if best.faults is not None:
            candidate = replace(best, faults=None)
            if check(candidate):
                best = candidate
                improved = True
                continue

        # 2. Shortest failing prefix of the kill list.
        for length in range(1, len(best.kills)):
            candidate = replace(best, kills=best.kills[:length])
            if check(candidate):
                best = candidate
                improved = True
                break
        if improved:
            continue

        # 3. Individual kills (order-preserving deletion).
        if len(best.kills) > 1:
            for i in range(len(best.kills)):
                candidate = replace(
                    best, kills=best.kills[:i] + best.kills[i + 1 :]
                )
                if check(candidate):
                    best = candidate
                    improved = True
                    break
        if improved:
            continue

        # 4. Soften remaining fault fields one at a time.
        if best.faults is not None:
            for fields in (
                {"loss_prob": 0.0},
                {"duplicate_prob": 0.0},
                {"reorder_prob": 0.0},
            ):
                key, value = next(iter(fields.items()))
                if getattr(best.faults, key) == value:
                    continue
                candidate = replace(best, faults=replace(best.faults, **fields))
                if check(candidate):
                    best = candidate
                    improved = True
                    break

    return best, attempts
