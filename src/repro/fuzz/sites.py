"""Crash-site tracing and deterministic crash injection.

The simulator's probe API (:meth:`repro.sim.Simulator.probe`) fires at
every instrumented crash site: log appends, flush boundaries, checkpoint
phases, message deliveries, thread spawns and recovery steps.  This
module provides the two probe listeners the explorer composes:

- :class:`TraceRecorder` — records every firing as a
  :class:`SiteEvent`, giving the *site trace* whose per-owner ordinals
  are the coordinate system crash schedules are expressed in;
- :class:`CrashInjector` — counts firings attributed to one target MSP
  and, at the scheduled ordinals, fail-stops that MSP (kill every
  thread, lose all volatile state) and spawns its restart.

Ordinals, not wall-clock times, identify crash points: the simulation is
deterministic, so "the k-th probe firing owned by msp2" names the same
instant in every run of the same seeded world — which is what makes a
``(seed, schedule)`` pair replayable byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim import Simulator


@dataclass(frozen=True)
class SiteEvent:
    """One probe firing in a run's site trace."""

    #: Global 0-based position in the run's full trace.
    index: int
    #: Per-owner 0-based ordinal (the schedule coordinate).
    ordinal: int
    site: str
    owner: Optional[str]
    time: float


class TraceRecorder:
    """Probe listener that records the full site trace of a run."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.events: list[SiteEvent] = []
        self._per_owner: dict[Optional[str], int] = {}
        self._attached = False

    def attach(self) -> "TraceRecorder":
        if not self._attached:
            self.sim.add_probe_listener(self._on_probe)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.sim.remove_probe_listener(self._on_probe)
            self._attached = False

    def _on_probe(self, site: str, owner: Optional[str]) -> None:
        ordinal = self._per_owner.get(owner, 0)
        self._per_owner[owner] = ordinal + 1
        self.events.append(
            SiteEvent(
                index=len(self.events),
                ordinal=ordinal,
                site=site,
                owner=owner,
                time=self.sim.now,
            )
        )

    # -- summaries -------------------------------------------------------

    def count_for(self, owner: str) -> int:
        """Number of crash sites attributed to ``owner`` so far."""
        return self._per_owner.get(owner, 0)

    def owners(self) -> list[str]:
        return sorted(o for o in self._per_owner if o is not None)

    def site_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for event in self.events:
            histogram[event.site] = histogram.get(event.site, 0) + 1
        return histogram

    def fingerprint(self) -> tuple[tuple[str, Optional[str], float], ...]:
        """Order-sensitive digest of the trace, for determinism checks."""
        return tuple((e.site, e.owner, e.time) for e in self.events)


class CrashInjector:
    """Probe listener that fail-stops one MSP at scheduled ordinals.

    ``kill_ordinals`` are per-owner ordinals (see :class:`SiteEvent`).
    A probe fires *inside* the victim's own executing process, where a
    synchronous kill is impossible (a generator cannot close itself), so
    the injector schedules the crash at the current simulated time: the
    fail-stop lands at the process's next suspension point — exactly the
    granularity at which a real fail-stop crash is observable.

    Counting continues across crashes, so ordinals landing inside the
    subsequent recovery express "crash again *during* recovery", and
    multi-element schedules compose arbitrarily many crashes.
    """

    def __init__(
        self,
        sim: Simulator,
        target: str,
        kill_ordinals,
        crash: Callable[[], None],
    ):
        self.sim = sim
        self.target = target
        self.kill_ordinals = frozenset(kill_ordinals)
        self._crash = crash
        self._count = 0
        self._crash_pending = False
        self.crashes_injected = 0
        self._attached = False

    def attach(self) -> "CrashInjector":
        if not self._attached:
            self.sim.add_probe_listener(self._on_probe)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.sim.remove_probe_listener(self._on_probe)
            self._attached = False

    def _on_probe(self, site: str, owner: Optional[str]) -> None:
        if owner != self.target:
            return
        ordinal = self._count
        self._count += 1
        if ordinal in self.kill_ordinals and not self._crash_pending:
            self._crash_pending = True
            self.sim.call_at(self.sim.now, self._do_crash)

    def _do_crash(self) -> None:
        self._crash_pending = False
        self.crashes_injected += 1
        self._crash()
