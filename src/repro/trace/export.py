"""Trace exporters: JSON-lines and Chrome ``trace_event`` format.

The JSONL file is the canonical artifact (one event object per line,
header line first); the Chrome file is the same events converted to the
``{"traceEvents": [...]}`` shape ``chrome://tracing`` and Perfetto load
— spans become ``"X"`` complete events, instants ``"i"``, timestamps in
microseconds of simulated time, one thread lane per owner.

The ``validate_*`` functions are the schema checks the CI trace-smoke
job runs (via ``scripts/check_trace.py``); they return a list of
problems, empty when the artifact is well-formed.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.trace.tracer import Tracer

#: JSONL header schema tag, bumped on breaking schema changes.
JSONL_SCHEMA = "repro-trace-v1"

#: Required keys per JSONL event line, by phase.
_REQUIRED = {"name", "ph", "ts"}
_PHASES = {"X", "i"}


def jsonl_lines(tracer: Tracer) -> Iterable[str]:
    """The JSONL artifact: a header line, then one line per event."""
    header = {
        "schema": JSONL_SCHEMA,
        "clock": "sim-ms",
        "events": len(tracer.events),
        "dropped_events": tracer.dropped_events,
    }
    yield json.dumps(header, sort_keys=True)
    for event in tracer.events:
        yield json.dumps(event.to_dict(), sort_keys=True)


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        for line in jsonl_lines(tracer):
            fh.write(line + "\n")


def chrome_trace(tracer: Tracer) -> dict:
    """Convert to the Chrome trace_event JSON object format.

    Owners map to thread lanes (``tid``) in first-seen order, with
    ``thread_name`` metadata events so the viewer labels them; sim-ms
    timestamps become microseconds, the unit the format specifies.
    """
    lanes: dict[str, int] = {}

    def tid(owner) -> int:
        key = owner if owner is not None else "(sim)"
        lane = lanes.get(key)
        if lane is None:
            lane = lanes[key] = len(lanes) + 1
        return lane

    trace_events = []
    for event in tracer.events:
        entry = {
            "name": event.name,
            "ph": event.ph,
            "ts": round(event.ts * 1000.0, 3),  # sim ms -> "us"
            "pid": 1,
            "tid": tid(event.owner),
            "args": dict(event.args),
        }
        if event.ph == "X":
            entry["dur"] = round(event.dur * 1000.0, 3)
        else:
            entry["s"] = "t"  # thread-scoped instant
        trace_events.append(entry)
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": lane,
            "args": {"name": owner},
        }
        for owner, lane in lanes.items()
    ]
    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": JSONL_SCHEMA, "clock": "sim-ms"},
    }


def write_chrome_trace(tracer: Tracer, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer), fh, indent=1, sort_keys=True)
        fh.write("\n")


# -- validators (the trace-smoke checks) ------------------------------------


def validate_jsonl_lines(lines: Iterable[str]) -> list[str]:
    """Schema-check a JSONL artifact; returns problems (empty = valid)."""
    problems: list[str] = []
    lines = list(lines)
    if not lines:
        return ["empty file"]
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        return [f"header is not JSON: {exc}"]
    if header.get("schema") != JSONL_SCHEMA:
        problems.append(f"header schema {header.get('schema')!r} != {JSONL_SCHEMA!r}")
    if header.get("events") != len(lines) - 1:
        problems.append(
            f"header declares {header.get('events')} events, file has {len(lines) - 1}"
        )
    for i, line in enumerate(lines[1:], start=2):
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {i}: not JSON: {exc}")
            continue
        missing = _REQUIRED - event.keys()
        if missing:
            problems.append(f"line {i}: missing keys {sorted(missing)}")
            continue
        if event["ph"] not in _PHASES:
            problems.append(f"line {i}: unknown phase {event['ph']!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            problems.append(f"line {i}: bad ts {event['ts']!r}")
        if event["ph"] == "X" and event.get("dur", -1) < 0:
            problems.append(f"line {i}: span without a non-negative dur")
    return problems


def validate_chrome_trace(obj: dict) -> list[str]:
    """Loadability check for the Chrome trace_event object format."""
    problems: list[str] = []
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        if len(problems) >= 20:
            problems.append("... (truncated)")
            break
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if ph == "M":
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        if ph not in ("X", "i"):
            problems.append(f"event {i}: unexpected phase {ph!r}")
        elif ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"event {i}: X event without numeric dur")
    return problems
