"""Counters and histograms over *simulated* quantities.

The registry subsumes the scattered per-component counters
(``LogStats``, ``MspStats``, the network ledger): components keep their
cheap plain-int counters on the hot path, and
:func:`collect_component_metrics` folds a finished run's values into one
namespaced view next to the tracer-fed histograms (flush latency,
recovery-phase durations, per-kind log volume).
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Default histogram bucket bounds in simulated milliseconds: flush
#: latencies sit around 5-20 ms (one disk write), recovery phases reach
#: seconds on long logs.
DEFAULT_BOUNDS_MS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1_000.0, 2_500.0, 10_000.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Histogram:
    """Fixed-bound bucket histogram with exact count/sum/min/max."""

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Iterable[float] = DEFAULT_BOUNDS_MS):
        self.name = name
        self.bounds = tuple(bounds)
        # One bucket per bound plus the +inf overflow bucket.
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile from the buckets."""
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, bound in enumerate(self.bounds):
            seen += self.buckets[i]
            if seen >= rank:
                return bound
        return self.max

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": round(self.min, 6) if self.count else None,
            "max": round(self.max, 6) if self.count else None,
            "mean": round(self.mean, 6),
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": {
                **{f"le_{b:g}": n for b, n in zip(self.bounds, self.buckets)},
                "le_inf": self.buckets[-1],
            },
        }


class MetricsRegistry:
    """Named counters and histograms, created on first touch."""

    def __init__(self):
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set(self, name: str, value: int) -> None:
        """Overwrite a counter with an externally tracked value."""
        self.counter(name).value = value

    def histogram(
        self, name: str, bounds: Iterable[float] = DEFAULT_BOUNDS_MS
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(name, bounds)
        return histogram

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def to_dict(self) -> dict:
        return {
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
        }


def collect_component_metrics(
    registry: MetricsRegistry,
    msps: Iterable = (),
    network: Optional[object] = None,
    shard=None,
) -> MetricsRegistry:
    """Fold component counters into ``registry`` under stable namespaces.

    ``msp.<name>.<field>`` for :class:`MspStats`, ``log.<name>.<field>``
    for :class:`LogStats`, ``net.<field>`` for the network ledger, plus
    the aggregate ``flush.stale_acks``.  With a fleet ``shard``, adds the
    ``fleet.*`` namespace: per-shard step counts, session/call progress
    and the cross-shard export/import counters (barrier wait time is a
    wall-clock quantity and lives in the run result's ``timing`` section
    instead — metrics here are simulated-time only).  Call at the end of
    a run — the sources are plain ints, so this is a snapshot, not a
    subscription.
    """
    stale_acks = 0
    for msp in msps:
        for field, value in vars(msp.stats).items():
            if isinstance(value, (int, float)):
                registry.set(f"msp.{msp.name}.{field}", value)
        stale_acks += msp.stats.stale_flush_acks
        if msp.log is not None:
            for field, value in vars(msp.log.stats).items():
                if isinstance(value, (int, float)):
                    registry.set(f"log.{msp.name}.{field}", value)
            registry.set(
                f"log.{msp.name}.coalesced_flushes", msp.log.stats.coalesced_flushes
            )
            # Namespaced ``log.<msp>.p<N>.*`` — matching the partition
            # store/disk names and the ``log.write`` span's partition
            # attribution, so traces and metrics cross-reference without
            # a manual mapping.
            for index, counters in sorted(msp.log.stats.partitions.items()):
                for field, value in counters.items():
                    registry.set(f"log.{msp.name}.p{index}.{field}", value)
    registry.set("flush.stale_acks", stale_acks)
    if network is not None:
        for field, value in network.ledger().items():
            registry.set(f"net.{field}", value)
    if shard is not None:
        prefix = f"fleet.shard{shard.index}"
        registry.set(f"{prefix}.steps", shard.sim.steps)
        registry.set(f"{prefix}.expected_sessions", shard.expected_sessions)
        registry.set(f"{prefix}.completed_sessions", shard.completed_sessions)
        registry.set(f"{prefix}.completed_calls", shard.completed_calls)
        registry.set(f"{prefix}.cross_domain_calls", shard.cross_domain_calls)
        registry.set(
            f"{prefix}.messages_exported", shard.network.messages_exported
        )
        registry.set(
            f"{prefix}.messages_imported", shard.network.messages_imported
        )
    return registry
