"""Structured sim-time tracing and metrics (the observability layer).

The package has three pieces:

- :mod:`repro.trace.tracer` — the :class:`Tracer` a :class:`Simulator`
  optionally owns (``sim.tracer``), emitting typed span/instant records
  with owner/session/LSN attribution as simulated time advances;
- :mod:`repro.trace.metrics` — the :class:`MetricsRegistry` of counters
  and histograms the tracer feeds, plus the collector that folds today's
  component counters (``LogStats``, ``MspStats``, the network ledger)
  into one namespaced view;
- :mod:`repro.trace.export` — JSON-lines and Chrome ``trace_event``
  exporters with the validators the CI trace-smoke job runs.

Cost contract: tracing is **off by default** (``sim.tracer is None``)
and every instrumentation site guards with that None check — one
attribute load per site, the same near-free discipline as crash-site
probes.  Instrumentation deliberately does *not* add ``sim.probe``
call sites: probe ordinals are the fuzzer's crash-schedule coordinate
system and must not shift when tracing lands.
"""

from repro.trace.export import (
    JSONL_SCHEMA,
    chrome_trace,
    jsonl_lines,
    validate_chrome_trace,
    validate_jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.trace.metrics import Counter, Histogram, MetricsRegistry, collect_component_metrics
from repro.trace.tracer import Span, TraceEvent, Tracer

__all__ = [
    "JSONL_SCHEMA",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "collect_component_metrics",
    "jsonl_lines",
    "validate_chrome_trace",
    "validate_jsonl_lines",
    "write_chrome_trace",
    "write_jsonl",
]
