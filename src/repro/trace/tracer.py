"""The sim-time tracer (`sim.tracer`, ``None`` unless enabled).

Instrumented code emits two shapes:

- **instants** — a point event at the current simulated time
  (``tracer.instant("flush.stale-ack", owner="msp1", target="msp2")``);
- **spans** — an interval opened now and closed by ``span.end(...)``,
  whose duration lands in the ``span.<name>_ms`` histogram of the
  attached :class:`~repro.trace.metrics.MetricsRegistry`.

Every emission site in the tree guards with ``if sim.tracer is not
None`` so the disabled cost is one attribute load — the same contract
as crash-site probes (and, like probes, cheap enough for the log append
path).  The event list is bounded: once ``max_events`` is reached new
events are dropped and counted (``dropped_events``), never raised, so a
runaway workload degrades the trace instead of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.trace.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass
class TraceEvent:
    """One emitted event; ``ph`` follows Chrome trace phases
    (``"X"`` complete span, ``"i"`` instant)."""

    name: str
    ph: str
    ts: float  #: simulated ms at the event (span start for "X")
    dur: float = 0.0  #: simulated ms, "X" only
    owner: Optional[str] = None
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = {"name": self.name, "ph": self.ph, "ts": round(self.ts, 6)}
        if self.ph == "X":
            data["dur"] = round(self.dur, 6)
        if self.owner is not None:
            data["owner"] = self.owner
        if self.args:
            data["args"] = self.args
        return data


class Span:
    """An open interval; close it with :meth:`end` (idempotent)."""

    __slots__ = ("_tracer", "name", "owner", "start", "args", "closed")

    def __init__(self, tracer: "Tracer", name: str, owner: Optional[str], args: dict):
        self._tracer = tracer
        self.name = name
        self.owner = owner
        self.start = tracer.sim.now
        self.args = args
        self.closed = False

    def end(self, **extra) -> None:
        """Close the span at the current simulated time.

        ``extra`` keys are merged into the span's args — the idiom for
        attributes only known at completion (outcome, record counts).
        """
        if self.closed:
            return
        self.closed = True
        if extra:
            self.args.update(extra)
        self._tracer._finish(self)


class Tracer:
    """Collects :class:`TraceEvent` records against one simulator clock."""

    def __init__(
        self,
        sim: "Simulator",
        metrics: Optional[MetricsRegistry] = None,
        max_events: int = 1_000_000,
    ):
        self.sim = sim
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events: list[TraceEvent] = []
        self.max_events = max_events
        self.dropped_events = 0
        self._open: list[Span] = []

    def attach(self) -> "Tracer":
        """Install on the simulator (``sim.tracer = self``); returns self."""
        self.sim.tracer = self
        return self

    # -- emission --------------------------------------------------------

    def instant(self, name: str, owner: Optional[str] = None, **args) -> None:
        self._emit(TraceEvent(name=name, ph="i", ts=self.sim.now, owner=owner, args=args))

    def span(self, name: str, owner: Optional[str] = None, **args) -> Span:
        span = Span(self, name, owner, args)
        self._open.append(span)
        return span

    def _finish(self, span: Span) -> None:
        try:
            self._open.remove(span)
        except ValueError:
            pass
        duration = self.sim.now - span.start
        self.metrics.observe(f"span.{span.name}_ms", duration)
        self._emit(
            TraceEvent(
                name=span.name,
                ph="X",
                ts=span.start,
                dur=duration,
                owner=span.owner,
                args=span.args,
            )
        )

    def _emit(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    # -- lifecycle -------------------------------------------------------

    def open_spans(self) -> list[Span]:
        return list(self._open)

    def finalize(self) -> None:
        """Close spans left open (killed processes, truncated runs).

        Crashes kill generator processes without unwinding them, so
        spans opened inside a killed process never reach ``end()``;
        closing them here (marked ``truncated``) keeps the export
        complete without requiring every site to be crash-safe.
        """
        for span in list(self._open):
            span.args.setdefault("truncated", True)
            span.end()

    def summary(self) -> dict:
        """Machine-readable roll-up: event counts plus the metrics view."""
        by_name: dict[str, int] = {}
        for event in self.events:
            by_name[event.name] = by_name.get(event.name, 0) + 1
        return {
            "events": len(self.events),
            "dropped_events": self.dropped_events,
            "open_spans": len(self._open),
            "events_by_name": dict(sorted(by_name.items())),
            "metrics": self.metrics.to_dict(),
        }
