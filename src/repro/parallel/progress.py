"""The shared progress/ETA reporter for long fan-out runs.

One reporter serves the fuzz explorer, the benchmark suite and the
harness experiment sweeps, so every front end prints the same shape:

    fuzz exhaustive  [  50/1306]   3.8%  12.4/s  ETA 1:41

Lines are rate-limited (at most one per ``min_interval_s``, plus the
first and last), so a 10k-task sweep does not flood a CI log; failures
always print.  The reporter is driven from the parent process by
:func:`repro.parallel.pool.run_tasks`'s completion callback, so it
works identically for in-process and multi-core runs.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(round(seconds)))
    if seconds >= 3600:
        return f"{seconds // 3600}:{seconds % 3600 // 60:02d}:{seconds % 60:02d}"
    return f"{seconds // 60}:{seconds % 60:02d}"


class ProgressReporter:
    """Prints ``[done/total]`` progress with throughput and ETA."""

    def __init__(
        self,
        label: str,
        min_interval_s: float = 1.0,
        stream=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.label = label
        self.min_interval_s = min_interval_s
        self.stream = stream if stream is not None else sys.stdout
        self._clock = clock
        self._started: Optional[float] = None
        self._last_printed: Optional[float] = None

    def start(self) -> "ProgressReporter":
        self._started = self._clock()
        return self

    def update(self, done: int, total: int, detail: Optional[str] = None) -> None:
        """Report task ``done`` of ``total``; ``detail`` forces a line."""
        if self._started is None:
            self.start()
        now = self._clock()
        due = (
            self._last_printed is None
            or done == total
            or now - self._last_printed >= self.min_interval_s
        )
        if not due and detail is None:
            return
        self._last_printed = now
        elapsed = max(now - self._started, 1e-9)
        rate = done / elapsed
        eta = (total - done) / rate if rate > 0 and total > done else 0.0
        percent = 100.0 * done / total if total else 100.0
        line = (
            f"{self.label}  [{done:>{len(str(total))}}/{total}] "
            f"{percent:5.1f}%  {rate:6.1f}/s  ETA {_format_eta(eta)}"
        )
        if detail:
            line += f"  {detail}"
        print(line, file=self.stream)

    def finish(self, summary: Optional[str] = None) -> float:
        """Return elapsed seconds; optionally print a closing line."""
        elapsed = 0.0 if self._started is None else self._clock() - self._started
        if summary:
            print(f"{self.label}  {summary} ({elapsed:.1f}s)", file=self.stream)
        return elapsed
