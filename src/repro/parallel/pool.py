"""Process-pool work dispatch with a deterministic merge.

The contract (DESIGN.md §11):

- a *task* is ``worker(spec)`` where ``worker`` is a module-level
  callable and ``spec`` is picklable — workers rebuild their own world
  (e.g. a ``Simulator``) from the spec, so nothing live crosses the
  process boundary;
- results are merged in **task order** (the order of ``specs``),
  regardless of the order workers finish in, so a parallel run is
  byte-identical to a sequential one;
- a worker that raises returns a failed :class:`TaskOutcome` carrying
  the exception text; a worker that *dies* (segfault, OOM-kill) breaks
  the pool — completed results are kept, the unfinished tasks are
  retried once in a fresh pool, and tasks that break a pool twice are
  reported as failed with their spec; a pool that makes no progress for
  ``task_timeout_s`` is treated as hung and every unfinished task is
  failed with its spec.  No task is ever silently dropped.
- ``jobs=1`` runs everything in-process (no pool, no pickling), which
  is the debugging path and the reference behaviour.

``resolve_jobs`` implements the ``--jobs N`` / ``REPRO_JOBS`` /
auto-detect precedence shared by every CLI entry point.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

#: Environment variable consulted when no explicit ``--jobs`` is given.
JOBS_ENV_VAR = "REPRO_JOBS"


class WorkerFailure(Exception):
    """Raised by strict consumers when a task outcome carries an error."""


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """The effective worker count: ``--jobs`` > ``REPRO_JOBS`` > cores.

    ``0`` and negative values mean auto-detect, like ``None``.
    """
    if jobs is None:
        env = os.environ.get(JOBS_ENV_VAR, "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV_VAR} must be an integer, got {env!r}"
                ) from None
    if jobs is None or jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


@dataclass
class TaskOutcome:
    """The result slot of one task, at its spec's index."""

    index: int
    spec: Any
    result: Any = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The result, or :class:`WorkerFailure` if the task failed."""
        if self.error is not None:
            raise WorkerFailure(f"task {self.index} failed: {self.error}")
        return self.result


def _run_sequential(
    worker: Callable[[Any], Any],
    specs: Sequence[Any],
    progress: Optional[Callable[[int, int, TaskOutcome], None]],
) -> list[TaskOutcome]:
    """The ``jobs=1`` reference path: same process, same interpreter."""
    outcomes: list[TaskOutcome] = []
    for index, spec in enumerate(specs):
        try:
            outcome = TaskOutcome(index, spec, result=worker(spec))
        except Exception:
            outcome = TaskOutcome(index, spec, error=traceback.format_exc(limit=8))
        outcomes.append(outcome)
        if progress is not None:
            progress(index + 1, len(specs), outcome)
    return outcomes


def run_tasks(
    worker: Callable[[Any], Any],
    specs: Sequence[Any],
    jobs: Optional[int] = None,
    task_timeout_s: Optional[float] = None,
    progress: Optional[Callable[[int, int, TaskOutcome], None]] = None,
) -> list[TaskOutcome]:
    """Run ``worker`` over ``specs``; outcomes come back in spec order.

    ``progress(done, total, outcome)`` is invoked in the parent as tasks
    finish (completion order); the *returned list* is always in task
    order.  ``task_timeout_s`` is a stall deadline: if no task completes
    for that long, unfinished tasks are failed as hung.
    """
    jobs = resolve_jobs(jobs)
    specs = list(specs)
    if jobs == 1 or len(specs) <= 1:
        return _run_sequential(worker, specs, progress)

    total = len(specs)
    outcomes: list[Optional[TaskOutcome]] = [None] * total
    done_count = 0

    def record(outcome: TaskOutcome) -> None:
        nonlocal done_count
        outcomes[outcome.index] = outcome
        done_count += 1
        if progress is not None:
            progress(done_count, total, outcome)

    remaining = list(range(total))
    pool_breaks = 0
    while remaining:
        remaining, hung = _dispatch_round(
            worker, specs, remaining, jobs, task_timeout_s, record
        )
        if hung:
            for index in remaining:
                record(
                    TaskOutcome(
                        index,
                        specs[index],
                        error=f"worker hung: no task completed for "
                        f"{task_timeout_s}s (deadline exceeded)",
                    )
                )
            remaining = []
        elif remaining:
            pool_breaks += 1
            if pool_breaks > 1:
                for index in remaining:
                    record(
                        TaskOutcome(
                            index,
                            specs[index],
                            error="worker process died (pool broke twice); "
                            "task not retried again",
                        )
                    )
                remaining = []
    return outcomes  # type: ignore[return-value]  # every slot is filled


def _dispatch_round(
    worker: Callable[[Any], Any],
    specs: Sequence[Any],
    indices: list[int],
    jobs: int,
    task_timeout_s: Optional[float],
    record: Callable[[TaskOutcome], None],
) -> tuple[list[int], bool]:
    """One pool generation.  Returns ``(unfinished_indices, hung)``.

    ``unfinished_indices`` is non-empty only when the pool broke (a
    worker process died) or stalled past the deadline; the caller
    decides whether to retry or fail them.
    """
    # ``spawn`` everywhere: identical semantics on every platform, and no
    # forked copies of the parent's (unpicklable, half-initialized)
    # simulator state — workers import the code fresh and rebuild their
    # world from the spec alone.  That import-freshness is also what
    # makes parallel results trustworthy: nothing leaks between tasks.
    context = multiprocessing.get_context("spawn")
    pending: dict[Any, int] = {}
    broken: list[int] = []
    hung = False
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(indices)), mp_context=context
    ) as pool:
        for index in indices:
            pending[pool.submit(worker, specs[index])] = index
        while pending:
            done, _not_done = wait(
                pending, timeout=task_timeout_s, return_when=FIRST_COMPLETED
            )
            if not done:
                hung = True
                _terminate(pool)
                break
            for future in done:
                index = pending.pop(future)
                try:
                    record(TaskOutcome(index, specs[index], result=future.result()))
                except BrokenProcessPool:
                    # A worker process died; we cannot tell whose task
                    # killed it, so every victim goes back for a retry.
                    broken.append(index)
                except Exception:
                    record(
                        TaskOutcome(
                            index, specs[index], error=traceback.format_exc(limit=8)
                        )
                    )
            if broken:
                # Every sibling future fails with BrokenProcessPool too;
                # collect whichever still finished, return the rest.
                break
        unfinished = sorted(broken + list(pending.values()))
        if broken or hung:
            pool.shutdown(wait=False, cancel_futures=True)
    return (unfinished, hung) if (broken or hung) else ([], False)


def _terminate(pool: ProcessPoolExecutor) -> None:
    """Kill a hung pool's workers (best effort, private API guarded)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - platform specific
            pass
