"""Module-level worker entry points for the process pool.

A spawned worker imports this module by name and receives one picklable
spec; it rebuilds the whole seeded world (a fresh ``Simulator``) from
the spec and returns a picklable result.  Nothing live — no simulator,
no open generator, no probe listener — ever crosses the process
boundary, which is what makes ``--jobs N`` byte-identical to
``--jobs 1``: each task's world depends only on its spec.

Specs deliberately carry *serialized* schedules (the same
``CrashSchedule.to_dict`` form the failure artifacts use) so a spec
printed in an error report is directly replayable via
``python -m repro fuzz --replay`` / ``--replay-file``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


# ---------------------------------------------------------------------------
# fuzz: one crash schedule per task
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzTaskSpec:
    """One crash schedule to execute (serialized, replayable form)."""

    schedule: dict
    params: "object"  # repro.fuzz.explorer.FuzzParams (picklable dataclass)
    case_seed: Optional[int] = None


def run_fuzz_schedule(spec: FuzzTaskSpec):
    """Execute one schedule in a fresh world; returns ``ScheduleResult``."""
    from repro.fuzz.explorer import CrashSchedule, run_schedule

    return run_schedule(CrashSchedule.from_dict(spec.schedule), spec.params)


def minimize_fuzz_failure(spec: FuzzTaskSpec) -> dict:
    """Shrink one failing schedule against the deterministic oracle.

    Returns ``{"schedule": <minimized dict>, "attempts": N}``; runs in a
    worker so several failures minimize concurrently.
    """
    from repro.fuzz.minimize import minimize_recorded_failure

    minimized, attempts = minimize_recorded_failure(spec.schedule, spec.params)
    return {"schedule": minimized, "attempts": attempts}


# ---------------------------------------------------------------------------
# bench: one benchmark cell per task
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BenchCellSpec:
    """One named benchmark with its iteration scale and repeat count."""

    name: str
    scale: float = 1.0
    repeat: int = 3
    #: Restrict the ``log_volume`` spectrum cell to one logging mode
    #: (``repro bench --logging-mode``); other cells ignore it.
    logging_mode: Optional[str] = None


def run_bench_cell(spec: BenchCellSpec) -> dict:
    """Warm up and run one benchmark cell; returns its best-run dict."""
    from repro.perf.bench import run_benchmark_cell

    return run_benchmark_cell(
        spec.name,
        scale=spec.scale,
        repeat=spec.repeat,
        logging_mode=spec.logging_mode,
    )


# ---------------------------------------------------------------------------
# harness: one workload sweep point per task
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkloadPointSpec:
    """One paper-workload run inside an experiment sweep.

    ``key`` labels the point for error reports (e.g. ``("fig15a",
    "64KB")``); ``verify_exactly_once`` runs the shared-counter oracle
    in the worker, where the live workload still exists.
    """

    key: tuple
    params: "object"  # repro.workloads.WorkloadParams (picklable dataclass)
    verify_exactly_once: bool = False
    limit_ms: float = 36_000_000.0
    extra: dict = field(default_factory=dict)


def run_workload_point(spec: WorkloadPointSpec):
    """Build and run one paper workload; returns its ``PaperRunResult``."""
    from repro.workloads import PaperWorkload

    workload = PaperWorkload(spec.params)
    result = workload.run(limit_ms=spec.limit_ms)
    if spec.verify_exactly_once:
        workload.verify_exactly_once()
    return result


# ---------------------------------------------------------------------------
# scenarios: one matrix cell (a full fleet run) per task
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioCellSpec:
    """One scenario-matrix cell: a complete :class:`FleetSpec` plus its
    matrix coordinates.

    The worker runs the fleet at ``jobs=1`` — cell-level parallelism
    comes from the pool, and a fleet result is byte-identical at any
    jobs value anyway, so nesting pools would only add overhead.
    ``baseline_of`` links a cold-restart baseline cell to the disaster
    cell whose failover it calibrates.
    """

    cell_id: str
    family: str
    topology: str
    seed: int
    fleet: "object"  # repro.fleet.FleetSpec (picklable frozen dataclass)
    baseline_of: Optional[str] = None


def run_scenario_cell(spec: ScenarioCellSpec) -> dict:
    """Run one cell's fleet to quiescence; returns the trimmed,
    deterministic cell record the report is built from."""
    from repro.scenarios.runner import execute_cell

    return execute_cell(spec)
