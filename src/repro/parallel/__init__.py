"""Deterministic multi-core fan-out for independent seeded simulations.

Every crash schedule, benchmark cell and figure experiment in this repo
is an independent seeded simulation; this package fans them across
cores without changing a single result byte:

- :mod:`repro.parallel.pool` — the work-dispatch core: picklable task
  specs in, outcomes merged back in *task order* regardless of
  completion order, spawn-safe process pool, worker-crash and deadline
  handling (a dead or hung worker is reported as a failed task carrying
  its spec, never silently dropped), ``jobs=1`` falling back to today's
  in-process path for debugging;
- :mod:`repro.parallel.progress` — the shared progress/ETA reporter the
  fuzz, bench and harness front ends print through;
- :mod:`repro.parallel.tasks` — the module-level worker entry points
  (they must be importable by name in a spawned interpreter) that
  rebuild a ``Simulator`` world from a spec and run it.

The determinism contract is documented in DESIGN.md §11.
"""

from repro.parallel.pool import (
    TaskOutcome,
    WorkerFailure,
    resolve_jobs,
    run_tasks,
)
from repro.parallel.progress import ProgressReporter

__all__ = [
    "ProgressReporter",
    "TaskOutcome",
    "WorkerFailure",
    "resolve_jobs",
    "run_tasks",
]
