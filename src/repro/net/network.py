"""Nodes, ports and links of the simulated network.

A :class:`Node` is a computer (client machine, web server hosting an
MSP, state server).  Software on a node *binds* named ports to
:class:`~repro.sim.resources.Store` inboxes; the network delivers
envelopes into the bound store after the link's latency plus the
payload's transmission time at the link bandwidth.

Delivery to an unbound port silently drops the envelope — this is what a
crashed server looks like from the outside, and it is precisely why the
paper's clients must resend requests until a reply arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.faults import RELIABLE, FaultModel, PartitionWindow
from repro.sim import RngRegistry, Simulator, Store

#: Default one-way propagation latency (ms).  Calibrated so that a
#: request/reply round trip between two MSPs costs ~3.6 ms (paper §5.2
#: measured 3.596 ms) once transmission and CPU costs are added.
DEFAULT_LATENCY_MS = 0.35

#: 100 Mbps Ethernet (paper Fig. 13) = 12_500 bytes per ms.
DEFAULT_BANDWIDTH_BYTES_PER_MS = 12_500.0


@dataclass
class Envelope:
    """One message in flight."""

    source: str
    destination: str
    port: str
    payload: Any
    size_bytes: int
    sent_at: float = 0.0
    delivered_at: float = 0.0
    #: The destination node's incarnation when this copy was sent; a
    #: delivery into a later incarnation (the process crashed and
    #: restarted in flight) is dropped — port *names* are reused across
    #: restarts, port *bindings* are not.
    dest_incarnation: int = 0


@dataclass(frozen=True)
class Link:
    """Directed link parameters between two nodes."""

    latency_ms: float = DEFAULT_LATENCY_MS
    bandwidth_bytes_per_ms: float = DEFAULT_BANDWIDTH_BYTES_PER_MS
    faults: FaultModel = RELIABLE


class Node:
    """A computer attached to the network."""

    def __init__(self, network: "Network", name: str):
        self.network = network
        self.name = name
        self._ports: dict[str, Store] = {}
        #: Bumped by :meth:`unbind_all` (process crash): envelopes sent
        #: toward an earlier incarnation are dropped at delivery even if
        #: a restarted process has re-bound the same port name.
        self.incarnation = 0

    def bind(self, port: str) -> Store:
        """Create (or return) the inbox store for ``port``."""
        store = self._ports.get(port)
        if store is None:
            store = Store(self.network.sim, name=f"{self.name}:{port}")
            self._ports[port] = store
        return store

    def unbind(self, port: str) -> None:
        """Remove a port; in-flight messages to it will be dropped."""
        self._ports.pop(port, None)

    def unbind_all(self) -> None:
        """Drop every port (used when the hosted process crashes).

        Also advances the node's incarnation: in-flight messages
        addressed to the pre-crash process must not land in a
        post-restart inbox that merely reuses the port name.
        """
        self._ports.clear()
        self.incarnation += 1

    def inbox(self, port: str) -> Optional[Store]:
        return self._ports.get(port)

    def send(self, destination: str, port: str, payload: Any, size_bytes: int) -> None:
        """Fire-and-forget send over the network."""
        self.network.send(self.name, destination, port, payload, size_bytes)


class Network:
    """The message fabric connecting all nodes."""

    def __init__(self, sim: Simulator, rng: Optional[RngRegistry] = None):
        self.sim = sim
        self._rng = rng or RngRegistry(0)
        self._nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._default_link = Link()
        #: Counters for experiment reporting — an honest ledger: every
        #: copy the fabric ever created is exactly one of delivered,
        #: dropped or still in flight, so
        #: ``sent + duplicated == delivered + dropped + in_flight``
        #: holds at every instant (see :meth:`ledger`).
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Extra copies created by duplication faults (a duplicated send
        #: is one ``sent`` plus N-1 ``duplicated`` copies).
        self.messages_duplicated = 0
        #: Copies created but not yet delivered or dropped.
        self.messages_in_flight = 0
        #: Why drops happened: ``fault`` (the link's delivery plan),
        #: ``unbound`` (no node, port unbound or inbox closed),
        #: ``stale`` (destination crashed and restarted in flight),
        #: ``partition`` (an active partition window severed the link).
        self.drops_by_reason = {"fault": 0, "unbound": 0, "stale": 0, "partition": 0}
        #: Scheduled partition windows (see :meth:`add_partition`).
        self.partitions: list[PartitionWindow] = []
        self.bytes_sent = 0
        #: Sharded-fleet hook (DESIGN.md §17): when set, a send whose
        #: destination has no local node is handed to the router as
        #: ``router(envelope, arrival_time)`` instead of being dropped.
        #: The router captures it for the epoch-barrier exchange; the
        #: destination shard re-injects it via :meth:`import_remote`.
        self.remote_router: Optional[Callable[[Envelope, float], None]] = None
        #: Barrier-synced incarnation knowledge for nodes hosted on other
        #: shards, used to stamp ``dest_incarnation`` on exported copies.
        #: Knowledge lags by one epoch; a message stamped with a stale
        #: incarnation is dropped at the destination exactly like a local
        #: cross-incarnation delivery.
        self.remote_incarnations: dict[str, int] = {}
        #: Copies handed to the remote router / injected by it.  Both
        #: stay 0 outside fleet runs, so the ledger balance degenerates
        #: to the historical ``sent + duplicated == delivered + dropped +
        #: in_flight`` form.
        self.messages_exported = 0
        self.messages_imported = 0

    # -- topology ---------------------------------------------------------

    def node(self, name: str) -> Node:
        """Create (or fetch) the node called ``name``."""
        existing = self._nodes.get(name)
        if existing is not None:
            return existing
        node = Node(self, name)
        self._nodes[name] = node
        return node

    def set_link(
        self,
        source: str,
        destination: str,
        latency_ms: float = DEFAULT_LATENCY_MS,
        bandwidth_bytes_per_ms: float = DEFAULT_BANDWIDTH_BYTES_PER_MS,
        faults: FaultModel = RELIABLE,
        symmetric: bool = True,
    ) -> None:
        """Configure the link between two nodes."""
        link = Link(latency_ms, bandwidth_bytes_per_ms, faults)
        self._links[(source, destination)] = link
        if symmetric:
            self._links[(destination, source)] = link

    def link(self, source: str, destination: str) -> Link:
        return self._links.get((source, destination), self._default_link)

    def add_partition(self, window: PartitionWindow) -> None:
        """Schedule a partition window (deterministic, RNG-free).

        In a sharded fleet every shard installs the same schedule from
        the spec, so a cross-shard send is blacked out at the *sender's*
        fabric before export — both shards agree on the window purely
        from simulated time.
        """
        self.partitions.append(window)

    def partition_severs(self, source: str, destination: str) -> bool:
        """True when an active window severs ``source -> destination`` now."""
        now = self.sim.now
        return any(w.severs(source, destination, now) for w in self.partitions)

    # -- transmission ------------------------------------------------------

    def send(self, source: str, destination: str, port: str, payload: Any, size_bytes: int) -> None:
        """Queue ``payload`` for delivery; applies link faults and timing."""
        link = self.link(source, destination)
        # Fault draws come from the sim's named RNG streams (one per
        # directed link), in the single order delivery_plan defines —
        # this is what makes fuzz replays reproduce delivery orders
        # exactly (see repro.net.faults module docstring).
        rng = self._rng.stream(f"net:{source}->{destination}")
        self.messages_sent += 1
        self.bytes_sent += size_bytes

        extra_delays = link.faults.delivery_plan(rng)
        if self.partitions and self.partition_severs(source, destination):
            # The fault draws above ran regardless: partition windows
            # are RNG-free, so adding or removing one never shifts the
            # per-link streams and seeded replays of the surrounding
            # traffic stay byte-identical.  The whole planned delivery
            # (all copies) is blacked out as one dropped send.
            self._drop("partition")
            return
        if not extra_delays:
            self._drop("fault")
            return
        if len(extra_delays) > 1:
            self.messages_duplicated += len(extra_delays) - 1

        dest_node = self._nodes.get(destination)
        remote = dest_node is None and self.remote_router is not None
        if remote:
            dest_incarnation = self.remote_incarnations.get(destination, 0)
        else:
            dest_incarnation = dest_node.incarnation if dest_node is not None else 0
        for extra in extra_delays:
            delay = (
                link.latency_ms
                + size_bytes / link.bandwidth_bytes_per_ms
                + extra
            )
            envelope = Envelope(
                source=source,
                destination=destination,
                port=port,
                payload=payload,
                size_bytes=size_bytes,
                sent_at=self.sim.now,
                dest_incarnation=dest_incarnation,
            )
            if remote:
                # Cross-shard send: the fault draws above already came
                # from the sender's own stream (per-shard determinism);
                # the copy leaves this shard's ledger as "exported" and
                # becomes "imported + in_flight" on the destination shard
                # at the next epoch barrier.
                self.messages_exported += 1
                self.remote_router(envelope, self.sim.now + delay)
                continue
            self.messages_in_flight += 1
            self.sim.call_later(delay, lambda env=envelope: self._deliver(env))

    def import_remote(self, envelope: Envelope, arrival_time: float) -> None:
        """Inject a copy exported by another shard's network.

        Called at an epoch barrier, strictly before the simulator has
        advanced past ``arrival_time`` (the barrier protocol guarantees
        cross-shard latency ≥ one epoch, so the arrival is never in this
        shard's past).  The copy joins this ledger as imported and in
        flight; delivery then follows the exact local path, including
        incarnation and unbound-port drops.
        """
        self.messages_imported += 1
        self.messages_in_flight += 1
        self.sim.call_at(arrival_time, lambda env=envelope: self._deliver(env))

    def _drop(self, reason: str) -> None:
        self.messages_dropped += 1
        self.drops_by_reason[reason] += 1

    def _deliver(self, envelope: Envelope) -> None:
        # A crash site: the destination process can die exactly as a
        # message reaches it (before any handler runs).  The probe fires
        # before any drop decision so fuzz crash-site ordinals do not
        # depend on delivery outcomes.
        self.sim.probe("net.deliver", owner=envelope.destination)
        self.messages_in_flight -= 1
        tracer = self.sim.tracer
        node = self._nodes.get(envelope.destination)
        if node is None:
            self._drop("unbound")
            return
        if node.incarnation != envelope.dest_incarnation:
            # Sent toward a process incarnation that crashed while the
            # message was in flight: the restarted process may have
            # re-bound the same port name, but this envelope is not for
            # it (cross-incarnation delivery bug).
            self._drop("stale")
            if tracer is not None:
                tracer.instant(
                    "net.stale-drop",
                    owner=envelope.destination,
                    port=envelope.port,
                    source=envelope.source,
                )
            return
        inbox = node.inbox(envelope.port)
        if inbox is None or inbox.closed:
            # Destination process is down (crashed or not yet started):
            # the message is lost, exactly like a TCP RST in production.
            self._drop("unbound")
            return
        envelope.delivered_at = self.sim.now
        self.messages_delivered += 1
        if tracer is not None:
            tracer.metrics.observe(
                "net.delivery_latency_ms", self.sim.now - envelope.sent_at
            )
        inbox.put(envelope)

    def ledger(self) -> dict:
        """The counter ledger (all values non-negative ints)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_duplicated": self.messages_duplicated,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_in_flight": self.messages_in_flight,
            "dropped_fault": self.drops_by_reason["fault"],
            "dropped_unbound": self.drops_by_reason["unbound"],
            "dropped_stale": self.drops_by_reason["stale"],
            "dropped_partition": self.drops_by_reason["partition"],
            "messages_exported": self.messages_exported,
            "messages_imported": self.messages_imported,
            "bytes_sent": self.bytes_sent,
        }

    def check_ledger(self) -> None:
        """Raise if the counter ledger does not balance.

        Per shard, exported copies left this fabric and imported ones
        joined it, so the balance is ``sent + duplicated + imported ==
        delivered + dropped + in_flight + exported``; both new terms are
        0 outside fleet runs.
        """
        created = self.messages_sent + self.messages_duplicated + self.messages_imported
        accounted = (
            self.messages_delivered
            + self.messages_dropped
            + self.messages_in_flight
            + self.messages_exported
        )
        if created != accounted or self.messages_in_flight < 0:
            raise AssertionError(
                f"network ledger out of balance: sent {self.messages_sent} "
                f"+ duplicated {self.messages_duplicated} "
                f"+ imported {self.messages_imported} != delivered "
                f"{self.messages_delivered} + dropped {self.messages_dropped} "
                f"+ in_flight {self.messages_in_flight} "
                f"+ exported {self.messages_exported}"
            )
        if self.messages_dropped != sum(self.drops_by_reason.values()):
            raise AssertionError(
                f"drop reasons {self.drops_by_reason} do not sum to "
                f"messages_dropped {self.messages_dropped}"
            )

    def round_trip_ms(self, a: str, b: str, size_bytes: int = 100) -> float:
        """Analytic round-trip estimate (no queueing, no faults)."""
        there = self.link(a, b)
        back = self.link(b, a)
        return (
            there.latency_ms
            + size_bytes / there.bandwidth_bytes_per_ms
            + back.latency_ms
            + size_bytes / back.bandwidth_bytes_per_ms
        )
