"""Nodes, ports and links of the simulated network.

A :class:`Node` is a computer (client machine, web server hosting an
MSP, state server).  Software on a node *binds* named ports to
:class:`~repro.sim.resources.Store` inboxes; the network delivers
envelopes into the bound store after the link's latency plus the
payload's transmission time at the link bandwidth.

Delivery to an unbound port silently drops the envelope — this is what a
crashed server looks like from the outside, and it is precisely why the
paper's clients must resend requests until a reply arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.net.faults import RELIABLE, FaultModel
from repro.sim import RngRegistry, Simulator, Store

#: Default one-way propagation latency (ms).  Calibrated so that a
#: request/reply round trip between two MSPs costs ~3.6 ms (paper §5.2
#: measured 3.596 ms) once transmission and CPU costs are added.
DEFAULT_LATENCY_MS = 0.35

#: 100 Mbps Ethernet (paper Fig. 13) = 12_500 bytes per ms.
DEFAULT_BANDWIDTH_BYTES_PER_MS = 12_500.0


@dataclass
class Envelope:
    """One message in flight."""

    source: str
    destination: str
    port: str
    payload: Any
    size_bytes: int
    sent_at: float = 0.0
    delivered_at: float = 0.0


@dataclass(frozen=True)
class Link:
    """Directed link parameters between two nodes."""

    latency_ms: float = DEFAULT_LATENCY_MS
    bandwidth_bytes_per_ms: float = DEFAULT_BANDWIDTH_BYTES_PER_MS
    faults: FaultModel = RELIABLE


class Node:
    """A computer attached to the network."""

    def __init__(self, network: "Network", name: str):
        self.network = network
        self.name = name
        self._ports: dict[str, Store] = {}

    def bind(self, port: str) -> Store:
        """Create (or return) the inbox store for ``port``."""
        store = self._ports.get(port)
        if store is None:
            store = Store(self.network.sim, name=f"{self.name}:{port}")
            self._ports[port] = store
        return store

    def unbind(self, port: str) -> None:
        """Remove a port; in-flight messages to it will be dropped."""
        self._ports.pop(port, None)

    def unbind_all(self) -> None:
        """Drop every port (used when the hosted process crashes)."""
        self._ports.clear()

    def inbox(self, port: str) -> Optional[Store]:
        return self._ports.get(port)

    def send(self, destination: str, port: str, payload: Any, size_bytes: int) -> None:
        """Fire-and-forget send over the network."""
        self.network.send(self.name, destination, port, payload, size_bytes)


class Network:
    """The message fabric connecting all nodes."""

    def __init__(self, sim: Simulator, rng: Optional[RngRegistry] = None):
        self.sim = sim
        self._rng = rng or RngRegistry(0)
        self._nodes: dict[str, Node] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._default_link = Link()
        #: Counters for experiment reporting.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0

    # -- topology ---------------------------------------------------------

    def node(self, name: str) -> Node:
        """Create (or fetch) the node called ``name``."""
        existing = self._nodes.get(name)
        if existing is not None:
            return existing
        node = Node(self, name)
        self._nodes[name] = node
        return node

    def set_link(
        self,
        source: str,
        destination: str,
        latency_ms: float = DEFAULT_LATENCY_MS,
        bandwidth_bytes_per_ms: float = DEFAULT_BANDWIDTH_BYTES_PER_MS,
        faults: FaultModel = RELIABLE,
        symmetric: bool = True,
    ) -> None:
        """Configure the link between two nodes."""
        link = Link(latency_ms, bandwidth_bytes_per_ms, faults)
        self._links[(source, destination)] = link
        if symmetric:
            self._links[(destination, source)] = link

    def link(self, source: str, destination: str) -> Link:
        return self._links.get((source, destination), self._default_link)

    # -- transmission ------------------------------------------------------

    def send(self, source: str, destination: str, port: str, payload: Any, size_bytes: int) -> None:
        """Queue ``payload`` for delivery; applies link faults and timing."""
        link = self.link(source, destination)
        # Fault draws come from the sim's named RNG streams (one per
        # directed link), in the single order delivery_plan defines —
        # this is what makes fuzz replays reproduce delivery orders
        # exactly (see repro.net.faults module docstring).
        rng = self._rng.stream(f"net:{source}->{destination}")
        self.messages_sent += 1
        self.bytes_sent += size_bytes

        extra_delays = link.faults.delivery_plan(rng)
        if not extra_delays:
            self.messages_dropped += 1

        for extra in extra_delays:
            delay = (
                link.latency_ms
                + size_bytes / link.bandwidth_bytes_per_ms
                + extra
            )
            envelope = Envelope(
                source=source,
                destination=destination,
                port=port,
                payload=payload,
                size_bytes=size_bytes,
                sent_at=self.sim.now,
            )
            self.sim.call_later(delay, lambda env=envelope: self._deliver(env))

    def _deliver(self, envelope: Envelope) -> None:
        # A crash site: the destination process can die exactly as a
        # message reaches it (before any handler runs).
        self.sim.probe("net.deliver", owner=envelope.destination)
        node = self._nodes.get(envelope.destination)
        if node is None:
            self.messages_dropped += 1
            return
        inbox = node.inbox(envelope.port)
        if inbox is None or inbox.closed:
            # Destination process is down (crashed or not yet started):
            # the message is lost, exactly like a TCP RST in production.
            self.messages_dropped += 1
            return
        envelope.delivered_at = self.sim.now
        self.messages_delivered += 1
        inbox.put(envelope)

    def round_trip_ms(self, a: str, b: str, size_bytes: int = 100) -> float:
        """Analytic round-trip estimate (no queueing, no faults)."""
        there = self.link(a, b)
        back = self.link(b, a)
        return (
            there.latency_ms
            + size_bytes / there.bandwidth_bytes_per_ms
            + back.latency_ms
            + size_bytes / back.bandwidth_bytes_per_ms
        )
