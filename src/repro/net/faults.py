"""Message fault injection: loss, duplication and reorder delay."""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultModel:
    """Per-link fault probabilities, applied to every envelope.

    ``reorder_prob`` adds a random extra delay of up to
    ``reorder_max_delay_ms`` which lets later messages overtake earlier
    ones — the paper's "out of order" arrivals.
    """

    loss_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_max_delay_ms: float = 5.0

    def is_reliable(self) -> bool:
        return self.loss_prob == 0.0 and self.duplicate_prob == 0.0 and self.reorder_prob == 0.0

    def should_drop(self, rng: random.Random) -> bool:
        return self.loss_prob > 0.0 and rng.random() < self.loss_prob

    def should_duplicate(self, rng: random.Random) -> bool:
        return self.duplicate_prob > 0.0 and rng.random() < self.duplicate_prob

    def extra_delay(self, rng: random.Random) -> float:
        if self.reorder_prob > 0.0 and rng.random() < self.reorder_prob:
            return rng.uniform(0.0, self.reorder_max_delay_ms)
        return 0.0


RELIABLE = FaultModel()
