"""Message fault injection: loss, duplication and reorder delay.

Determinism contract (crash-schedule replay depends on it): every random
draw a :class:`FaultModel` makes must come from a stream handed out by
the simulation's :class:`~repro.sim.rng.RngRegistry` — never from the
module-level ``random`` state, which other code (or a second run in the
same interpreter) would perturb.  The draws for one envelope are made in
a single, fixed order by :meth:`FaultModel.delivery_plan`, so a replay
with the same registry seed consumes the stream identically and every
delivery order is reproduced byte-for-byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class FaultModel:
    """Per-link fault probabilities, applied to every envelope.

    ``reorder_prob`` adds a random extra delay of up to
    ``reorder_max_delay_ms`` which lets later messages overtake earlier
    ones — the paper's "out of order" arrivals.
    """

    loss_prob: float = 0.0
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0
    reorder_max_delay_ms: float = 5.0

    def is_reliable(self) -> bool:
        return self.loss_prob == 0.0 and self.duplicate_prob == 0.0 and self.reorder_prob == 0.0

    def should_drop(self, rng: random.Random) -> bool:
        return self.loss_prob > 0.0 and rng.random() < self.loss_prob

    def should_duplicate(self, rng: random.Random) -> bool:
        return self.duplicate_prob > 0.0 and rng.random() < self.duplicate_prob

    def extra_delay(self, rng: random.Random) -> float:
        if self.reorder_prob > 0.0 and rng.random() < self.reorder_prob:
            return rng.uniform(0.0, self.reorder_max_delay_ms)
        return 0.0

    def delivery_plan(self, rng: random.Random) -> tuple[float, ...]:
        """All fault decisions for one envelope, in one fixed draw order.

        Returns a tuple of extra delays, one per delivered copy: ``()``
        when the envelope is dropped, one entry normally, two when it is
        duplicated.  Centralizing the draws here (drop, then duplicate,
        then per-copy delay) pins the stream-consumption order so that
        seeded replays cannot drift even if call sites evolve.  ``rng``
        must be a :class:`~repro.sim.rng.RngRegistry` stream.
        """
        if self.should_drop(rng):
            return ()
        copies = 2 if self.should_duplicate(rng) else 1
        return tuple(self.extra_delay(rng) for _ in range(copies))


RELIABLE = FaultModel()


@dataclass(frozen=True)
class PartitionWindow:
    """A bidirectional link blackout between two node sets over a time
    interval (scenario fault family: network partition).

    Purely deterministic — the decision is a function of the envelope's
    source, destination and send time, so it draws *nothing* from the
    RNG registry.  That is what keeps seeded replays stable: the
    per-link :meth:`FaultModel.delivery_plan` draws are made first and
    identically whether or not a window is active (and reliable links
    still consume zero draws); the partition then drops the planned
    copies without touching any stream.  The decision is made at *send*
    time: an envelope that entered the fabric before the window opened
    is already past the blackout and will be delivered — model a cable
    cut from instant ``t`` by starting the window one max-latency
    earlier.

    The window is half-open: ``start_ms <= now < end_ms``.  Traffic
    within one side is never affected; both directions between the
    sides are.
    """

    side_a: tuple[str, ...]
    side_b: tuple[str, ...]
    start_ms: float
    end_ms: float

    def __post_init__(self):
        if self.end_ms <= self.start_ms:
            raise ValueError(
                f"empty partition window: [{self.start_ms}, {self.end_ms})"
            )
        overlap = set(self.side_a) & set(self.side_b)
        if overlap:
            raise ValueError(
                f"partition sides overlap: {sorted(overlap)}"
            )
        if not self.side_a or not self.side_b:
            raise ValueError("partition sides must be non-empty")

    def active_at(self, now: float) -> bool:
        return self.start_ms <= now < self.end_ms

    def severs(self, source: str, destination: str, now: float) -> bool:
        """True when this window blacks out ``source -> destination``."""
        if not self.active_at(now):
            return False
        if source in self.side_a:
            return destination in self.side_b
        if source in self.side_b:
            return destination in self.side_a
        return False
