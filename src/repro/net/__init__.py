"""Simulated network: nodes, ports, links with latency/bandwidth, faults.

The paper's message model (§2.1) is unreliable between clients and MSPs —
messages "may arrive out of order, may be duplicated, or get lost" — and
fast and reliable between MSPs inside a service domain.  Both regimes are
configurations of the same :class:`~repro.net.network.Network`: every
link has a latency and a bandwidth, and an optional
:class:`~repro.net.faults.FaultModel` that drops, duplicates or delays
envelopes using a seeded random stream.
"""

from repro.net.faults import FaultModel, PartitionWindow
from repro.net.network import Envelope, Network, Node

__all__ = ["Envelope", "FaultModel", "Network", "Node", "PartitionWindow"]
