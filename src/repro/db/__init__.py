"""A miniature transactional key-value store.

This is the substrate for the paper's *Psession* baseline (§5.2):
"persistent sessions via the web server storing session states inside a
local DBMS.  When a request is processed, the session state is fetched
from the database, and after processing, the session state is written
back" — i.e. one read transaction and one write transaction per request
per MSP.

The store is write-ahead logged on a simulated disk: commits force the
WAL (a real disk write with the paper's timing model), and recovery
replays the durable WAL prefix.  It is deliberately small but honest —
the transaction cost that makes Psession slow in the paper (a log force
per commit plus DB CPU) is exactly what this store charges.
"""

from repro.db.kvstore import KVStore, Transaction, TransactionError

__all__ = ["KVStore", "Transaction", "TransactionError"]
