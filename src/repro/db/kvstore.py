"""Write-ahead-logged key-value store on a simulated disk.

Supports begin / read / write / commit / abort with strict two-phase
locking at key granularity and a redo-only WAL:

- writes are staged in the transaction and logged at commit;
- commit appends a commit record and **forces the WAL to disk** before
  acknowledging (this is the per-transaction log force that dominates
  the Psession baseline's cost);
- recovery after a crash replays committed transactions from the
  durable WAL prefix; uncommitted staging is lost.

Read-only transactions commit without a log force (standard practice,
and what lets Psession's read transaction cost less than its write
transaction).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.sim import Resource, Simulator, Store
from repro.storage import Disk, StableStore
from repro.wire import Decoder, Encoder, FrameReader, frame


class TransactionError(Exception):
    """Misuse of the transaction API (use after commit, missing lock)."""


_REC_BEGIN = 1
_REC_WRITE = 2
_REC_COMMIT = 3


class Transaction:
    """One transaction; obtain via :meth:`KVStore.begin`."""

    def __init__(self, store: "KVStore", txn_id: int):
        self._store = store
        self.txn_id = txn_id
        self._writes: dict[str, bytes] = {}
        self._locks: set[str] = set()
        self._done = False

    def _check_open(self) -> None:
        if self._done:
            raise TransactionError(f"transaction {self.txn_id} already finished")

    def read(self, key: str):
        """Read ``key`` (generator; returns bytes or None)."""
        self._check_open()
        yield from self._store._lock_key(self, key)
        yield from self._store._charge_cpu()
        if key in self._writes:
            return self._writes[key]
        value = self._store._data.get(key)
        if value is not None and self._store.disk_reads:
            yield from self._store.disk.read_bytes(len(value), sequential=True)
        return value

    def write(self, key: str, value: bytes):
        """Stage a write of ``key`` (generator)."""
        self._check_open()
        yield from self._store._lock_key(self, key)
        yield from self._store._charge_cpu()
        self._writes[key] = bytes(value)

    def commit(self):
        """Commit (generator).  Forces the WAL when there are writes."""
        self._check_open()
        self._done = True
        try:
            if self._writes:
                yield from self._store._commit_writes(self)
            self._store.stats_commits += 1
        finally:
            self._store._release_locks(self)

    def abort(self):
        """Abort: discard staged writes, release locks (generator)."""
        self._check_open()
        self._done = True
        self._store._release_locks(self)
        self._store.stats_aborts += 1
        yield from ()


class KVStore:
    """The store: a dict, a WAL, key locks and a commit pipeline."""

    def __init__(
        self,
        sim: Simulator,
        disk: Disk,
        name: str = "kv",
        txn_cpu_ms: float = 0.5,
        cpu: Optional[Resource] = None,
        disk_reads: bool = False,
    ):
        self.sim = sim
        self.disk = disk
        self.name = name
        self.txn_cpu_ms = txn_cpu_ms
        self._cpu = cpu
        #: When True, reads of existing keys pay a random disk read of
        #: the value's size (no buffer pool — models a DB whose working
        #: set exceeds memory, as the Psession baseline requires).
        self.disk_reads = disk_reads
        self.wal = StableStore(name=f"{name}.wal")
        self._data: dict[str, bytes] = {}
        self._txn_ids = itertools.count(1)
        #: key -> owning txn_id; FIFO waiters per key.
        self._lock_owner: dict[str, int] = {}
        self._lock_waiters: dict[str, Store] = {}
        self.stats_commits = 0
        self.stats_aborts = 0
        self.stats_log_forces = 0

    # -- public API --------------------------------------------------------

    def begin(self) -> Transaction:
        return Transaction(self, next(self._txn_ids))

    def get_committed(self, key: str) -> Optional[bytes]:
        """Direct read of committed state (for assertions in tests)."""
        return self._data.get(key)

    def crash(self) -> None:
        """Lose all volatile state; the durable WAL prefix survives."""
        self.wal.crash()
        self._data = {}
        self._lock_owner = {}
        self._lock_waiters = {}

    def recover(self):
        """Rebuild committed state from the durable WAL (generator).

        Charges sequential disk reads for the WAL scan, then replays
        writes of committed transactions only.
        """
        nbytes = self.wal.durable_end
        if nbytes:
            yield from self.disk.read_bytes(nbytes, sequential=True)
        staged: dict[int, dict[str, bytes]] = {}
        for _offset, payload in FrameReader(self.wal.read(0, nbytes)):
            dec = Decoder(payload)
            kind = dec.uint()
            txn_id = dec.uint()
            if kind == _REC_BEGIN:
                staged[txn_id] = {}
            elif kind == _REC_WRITE:
                key = dec.text()
                value = dec.raw()
                staged.setdefault(txn_id, {})[key] = value
            elif kind == _REC_COMMIT:
                self._data.update(staged.pop(txn_id, {}))

    # -- internals ------------------------------------------------------------

    def _charge_cpu(self):
        if self._cpu is None:
            yield self.txn_cpu_ms  # plain delay when no shared CPU given
            return
        yield from self._cpu.acquire()
        try:
            yield self.txn_cpu_ms
        finally:
            self._cpu.release()

    def _lock_key(self, txn: Transaction, key: str):
        """Acquire an exclusive lock on ``key`` (generator, FIFO)."""
        if key in txn._locks:
            return
        while self._lock_owner.get(key) is not None:
            waiters = self._lock_waiters.setdefault(key, Store(self.sim, name=f"lock:{key}"))
            yield from waiters.get()
        self._lock_owner[key] = txn.txn_id
        txn._locks.add(key)

    def _release_locks(self, txn: Transaction) -> None:
        for key in txn._locks:
            if self._lock_owner.get(key) == txn.txn_id:
                del self._lock_owner[key]
                waiters = self._lock_waiters.get(key)
                if waiters is not None:
                    # Wake one waiter (it re-checks ownership).
                    waiters.put(None)
        txn._locks.clear()

    def _commit_writes(self, txn: Transaction):
        enc_begin = Encoder().uint(_REC_BEGIN).uint(txn.txn_id).finish()
        self.wal.append(frame(enc_begin))
        for key, value in txn._writes.items():
            enc = Encoder().uint(_REC_WRITE).uint(txn.txn_id).text(key).raw(value).finish()
            self.wal.append(frame(enc))
        enc_commit = Encoder().uint(_REC_COMMIT).uint(txn.txn_id).finish()
        end = self.wal.append(frame(enc_commit)) + len(frame(enc_commit))
        # Force the WAL: the transaction is durable before we ack.
        unflushed = end - self.wal.durable_end
        yield from self.disk.write_bytes(unflushed)
        self.wal.mark_durable(end)
        self.stats_log_forces += 1
        # Apply to committed state.
        self._data.update(txn._writes)
