"""Analytic cost model from the paper's §5.2 response-time analysis.

The paper predicts the response-time difference between pessimistic and
locally optimistic logging as::

    Δresponse = 2·TF2 + TF3 − max(TF3, TM + TF3) − TDV
              = 2·TF2 − TM − TDV

where ``TFn`` is the time to flush n sectors, ``TM`` the message round
trip between the MSPs and ``TDV`` the dependency-tracking overhead.
This module evaluates those formulas against the same
:class:`~repro.storage.disk.DiskModel` the simulator uses, so the
simulation and the paper's closed-form analysis can be cross-checked
(see ``tests/workloads/test_calibration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import CostModel
from repro.net.network import DEFAULT_BANDWIDTH_BYTES_PER_MS
from repro.storage import DiskModel
from repro.workloads.paper import CLIENT_LINK_LATENCY_MS, MSP_LINK_LATENCY_MS


@dataclass(frozen=True)
class AnalyticModel:
    """Closed-form §5.2 estimates for the Fig. 13 workload."""

    disk: DiskModel = field(default_factory=DiskModel)
    costs: CostModel = field(default_factory=CostModel)

    # -- §5.2 primitives ----------------------------------------------------

    def tf(self, sectors: int) -> float:
        """Expected flush time of ``sectors`` sectors (amortized seeks)."""
        return self.disk.expected_write_time_ms(sectors)

    def message_round_ms(self, payload_bytes: int = 300) -> float:
        """MSP-to-MSP round trip incl. protocol-stack CPU (paper: 3.596)."""
        transfer = payload_bytes / DEFAULT_BANDWIDTH_BYTES_PER_MS
        network = 2 * (MSP_LINK_LATENCY_MS + transfer)
        stacks = 4 * self.costs.message_stack_ms
        dispatch = self.costs.request_dispatch_ms
        return network + stacks + dispatch

    def client_round_ms(self, payload_bytes: int = 300) -> float:
        """Client-to-MSP round trip (paper: 3.9 ms)."""
        transfer = payload_bytes / DEFAULT_BANDWIDTH_BYTES_PER_MS
        network = 2 * (CLIENT_LINK_LATENCY_MS + transfer)
        return network + 2 * self.costs.client_stack_ms

    def tdv_ms(self, dv_operations: int = 6) -> float:
        """Dependency-tracking overhead per request."""
        return dv_operations * self.costs.dv_track_ms

    # -- §5.2 composite predictions --------------------------------------------

    def pessimistic_flush_span_ms(self) -> float:
        """Three sequential flushes: 2 + 3 + 2 sectors (paper §5.2)."""
        return self.tf(2) + self.tf(3) + self.tf(2)

    def looptimistic_flush_span_ms(self) -> float:
        """One distributed flush: max of the local 3-sector flush and the
        remote round + remote 3-sector flush, in parallel."""
        local = self.tf(3)
        remote = self.message_round_ms() + self.tf(3)
        return max(local, remote)

    def delta_response_ms(self) -> float:
        """The paper's Δresponse = 2·TF2 − TM − TDV (for m=1).

        The paper evaluates this at 12.404 ms with its crude TF2 = 8 ms
        estimate and measures 10.481 ms.
        """
        return 2 * self.tf(2) - self.message_round_ms() - self.tdv_ms()

    def delta_response_vs_m(self, m: int) -> float:
        """§5.2: with m calls, the difference grows ~ 2·m·TF − TM − TDV."""
        return 2 * m * self.tf(2) - self.message_round_ms() - self.tdv_ms()

    def recovery_read_ms_per_mb(self) -> float:
        """Sequential 64 KB recovery reads; paper: ~370 ms per MB."""
        per_chunk = self.disk.read_time_ms(128, sequential=True)
        return per_chunk * (1024 * 1024 / (64 * 1024))
