"""Workloads: the paper's experimental configuration (§5.1, Fig. 13).

:class:`~repro.workloads.paper.PaperWorkload` builds the full topology —
one end-client machine, MSP1 and MSP2 on separate server machines, the
five §5.2 configurations — and drives it with the paper's service
methods (ServiceMethod1/ServiceMethod2 with their shared-variable and
session-state access patterns), optional forced crashes (§5.4), multiple
concurrent clients and batch flushing (§5.5).
"""

from repro.workloads.paper import (
    CONFIGURATIONS,
    PaperRunResult,
    PaperWorkload,
    WorkloadParams,
)

__all__ = ["CONFIGURATIONS", "PaperRunResult", "PaperWorkload", "WorkloadParams"]
