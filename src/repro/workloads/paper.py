"""The paper's experimental workload (§5.1, Fig. 13).

Topology and sizes follow the paper exactly:

- one end client machine and two web-server machines (MSP1, MSP2) on a
  100 Mbps Ethernet;
- the client starts session SE1 with MSP1 and calls ServiceMethod1;
- ServiceMethod1 reads and writes shared variable SV0, calls
  ServiceMethod2 on MSP2 (``calls_to_sm2`` times — the paper's *m*),
  then reads and writes SV1 and finally modifies its session state;
- ServiceMethod2 reads and writes SV2 and SV3 and modifies its session
  state;
- request parameters and return values are 100 B, shared variables are
  128 B, total session state is 8 KB of which 512 B is written per
  request.

Link latencies are calibrated so the measured round trips of §5.2 come
out of the simulation: ~3.6 ms between the MSPs and ~3.9 ms between the
client and MSP1 (both including protocol-stack CPU).

The forced-crash mechanism is the paper's own (§5.4): every
``crash_every_n`` completed requests, "when the reply from
ServiceMethod2 is received by MSP1, MSP2 is instructed to kill itself",
losing MSP2's buffered log records, so the distributed flush at the end
of ServiceMethod1 fails and SE1 at MSP1 becomes an orphan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines import PsessionServer, StateServerNode, StateServerServer
from repro.core.client import EndClient
from repro.core.config import LoggingMode, RecoveryConfig
from repro.core.domain import ServiceDomainConfig
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator

CONFIGURATIONS = ("LoOptimistic", "Pessimistic", "NoLog", "Psession", "StateServer")

#: Calibrated one-way latencies (ms); see module docstring.
CLIENT_LINK_LATENCY_MS = 1.35
MSP_LINK_LATENCY_MS = 0.35

#: 100 Mbps Ethernet.
BANDWIDTH_BYTES_PER_MS = 12_500.0


@dataclass
class WorkloadParams:
    """Everything the §5 experiments vary."""

    configuration: str = "LoOptimistic"
    #: The paper's *m*: calls to ServiceMethod2 per ServiceMethod1.
    calls_to_sm2: int = 1
    num_clients: int = 1
    requests_per_client: int = 200
    #: Session checkpoint threshold in bytes (None = no checkpointing).
    session_ckpt_threshold: Optional[int] = 1024 * 1024
    #: Batch flushing timeout (0 = disabled; the paper uses 8 ms).
    batch_flush_timeout_ms: float = 0.0
    #: Fuzzy MSP checkpoint period override (None = RecoveryConfig
    #: default).  The crash-schedule fuzzer shortens it so checkpoint
    #: phase boundaries appear among the enumerated crash sites.
    msp_ckpt_interval_ms: Optional[float] = None
    #: Forced crash rate: one MSP2 kill per this many completed
    #: ServiceMethod1 executions (None = no crashes).
    crash_every_n: Optional[int] = None
    #: Increment the shared counters with atomic ``update_shared``
    #: read-modify-writes instead of the paper's separate read + write
    #: accesses.  The paper's per-access locks admit lost updates when
    #: concurrent sessions interleave between the read and the write —
    #: an application-level race, orthogonal to recovery.  The
    #: crash-schedule fuzzer turns this on so "counters == completed
    #: calls" is a sound exactly-once oracle under multi-client runs;
    #: the §5 performance experiments keep the paper's access pattern.
    atomic_sv_updates: bool = False
    #: Checkpoint-driven log truncation (segment recycling below the
    #: anchored checkpoint's minimal LSN).  Off reproduces the seed's
    #: grow-forever log, for the ``log_space`` comparison.
    log_truncation: bool = True
    #: Physical log segment size override (None = RecoveryConfig default).
    log_segment_bytes: Optional[int] = None
    #: Log partition count (1 = the classical single log).  Sessions
    #: hash to partitions; each partition group-commits independently.
    log_partitions: int = 1
    #: Shared-variable checkpoint threshold override (None = default).
    #: The fuzzer lowers it so sv scan starts stop pinning the minimal
    #: LSN and truncation advances within short runs.
    sv_ckpt_write_threshold: Optional[int] = None
    #: Forced-checkpoint staleness limit override (None = default).
    forced_ckpt_msp_count: Optional[int] = None
    #: Crash-recovery mode: ``eager`` (the paper's recover-everything
    #: restart) or ``lazy`` (on-demand per-session chain replay,
    #: DESIGN.md §15).
    recovery_mode: str = "eager"
    #: Lazy mode: background recovery pump concurrency budget.
    recovery_pump_concurrency: int = 4
    #: What sessions log: ``value`` (the paper's §3.3 per-SV records),
    #: ``command`` (one command record per request, replay re-executes)
    #: or ``adaptive`` (per-session runtime choice, DESIGN.md §16).
    logging_mode: str = "value"
    request_arg_bytes: int = 100
    reply_bytes: int = 100
    sv_bytes: int = 128
    session_state_bytes: int = 8 * 1024
    session_write_bytes: int = 512
    seed: int = 0

    def __post_init__(self) -> None:
        if self.configuration not in CONFIGURATIONS:
            raise ValueError(
                f"unknown configuration {self.configuration!r}; "
                f"choose from {CONFIGURATIONS}"
            )


@dataclass
class PaperRunResult:
    """Measurements from one workload run."""

    configuration: str
    completed_requests: int
    elapsed_ms: float
    response_times_ms: list[float]
    crashes: int
    msp1_cpu_utilization: float
    msp1_disk_utilization: float
    msp1_flushes: int
    msp2_flushes: int
    msp1_flushed_sectors: int
    msp2_flushed_sectors: int
    orphan_recoveries: int
    replayed_requests: int
    session_checkpoints: int

    @property
    def mean_response_ms(self) -> float:
        if not self.response_times_ms:
            return 0.0
        return sum(self.response_times_ms) / len(self.response_times_ms)

    @property
    def max_response_ms(self) -> float:
        return max(self.response_times_ms) if self.response_times_ms else 0.0

    @property
    def throughput_rps(self) -> float:
        """Completed end-client requests per second."""
        if self.elapsed_ms <= 0:
            return 0.0
        return self.completed_requests / self.elapsed_ms * 1000.0


def _counter_value(raw: Optional[bytes]) -> int:
    if not raw:
        return 0
    return int.from_bytes(raw[:8], "big")


def _counter_bytes(value: int, size: int) -> bytes:
    return value.to_bytes(8, "big") + b"\x00" * (size - 8)


class _CrashController:
    """Implements the §5.4 forced-crash trigger."""

    def __init__(self, sim: Simulator, every_n: Optional[int]):
        self.sim = sim
        self.every_n = every_n
        self.msp2: Optional[MiddlewareServer] = None
        self.sm1_completions = 0
        self.crashes = 0

    def after_reply2_received(self) -> None:
        """Called by ServiceMethod1 right after its last ServiceMethod2
        reply arrives (normal execution only)."""
        if self.every_n is None or self.msp2 is None:
            return
        self.sm1_completions += 1
        if self.sm1_completions % self.every_n == 0 and self.msp2.running:
            self.crashes += 1
            self.msp2.crash()
            self.msp2.restart_process()


class PaperWorkload:
    """Builds and runs the paper's experimental setup."""

    def __init__(self, params: WorkloadParams):
        self.params = params
        self.sim = Simulator()
        self.rng = RngRegistry(params.seed)
        self.network = Network(self.sim, rng=self.rng)
        self.crash_controller = _CrashController(self.sim, params.crash_every_n)
        self._build_topology()
        self._build_servers()
        self.client = EndClient(self.sim, self.network, "client")
        self.sessions = [
            self.client.open_session("msp1") for _ in range(params.num_clients)
        ]

    # -- construction -------------------------------------------------------

    def _build_topology(self) -> None:
        net = self.network
        net.set_link(
            "client", "msp1",
            latency_ms=CLIENT_LINK_LATENCY_MS,
            bandwidth_bytes_per_ms=BANDWIDTH_BYTES_PER_MS,
        )
        for pair in (("msp1", "msp2"), ("msp1", "stateserver"), ("msp2", "stateserver")):
            net.set_link(
                *pair,
                latency_ms=MSP_LINK_LATENCY_MS,
                bandwidth_bytes_per_ms=BANDWIDTH_BYTES_PER_MS,
            )

    def _recovery_config(self) -> RecoveryConfig:
        params = self.params
        config = RecoveryConfig()
        if params.configuration == "NoLog":
            config.mode = LoggingMode.NOLOG
        config.session_ckpt_threshold_bytes = params.session_ckpt_threshold
        config.batch_flush_timeout_ms = params.batch_flush_timeout_ms
        if params.msp_ckpt_interval_ms is not None:
            config.msp_ckpt_interval_ms = params.msp_ckpt_interval_ms
        config.log_truncation = params.log_truncation
        if params.log_segment_bytes is not None:
            config.log_segment_bytes = params.log_segment_bytes
        config.log_partitions = params.log_partitions
        if params.sv_ckpt_write_threshold is not None:
            config.sv_ckpt_write_threshold = params.sv_ckpt_write_threshold
        if params.forced_ckpt_msp_count is not None:
            config.forced_ckpt_msp_count = params.forced_ckpt_msp_count
        config.recovery_mode = params.recovery_mode
        config.recovery_pump_concurrency = params.recovery_pump_concurrency
        config.logging_mode = params.logging_mode
        return config

    def _build_servers(self) -> None:
        params = self.params
        configuration = params.configuration
        if configuration == "LoOptimistic":
            domains = ServiceDomainConfig([["msp1", "msp2"]])
        elif configuration == "Pessimistic":
            domains = ServiceDomainConfig([["msp1"], ["msp2"]])
        else:
            domains = ServiceDomainConfig()

        self.state_server: Optional[StateServerNode] = None
        if configuration == "Psession":
            server_cls = PsessionServer
        elif configuration == "StateServer":
            server_cls = StateServerServer
            self.state_server = StateServerNode(self.sim, self.network)
        else:
            server_cls = MiddlewareServer

        self.msp1 = server_cls(
            self.sim, self.network, "msp1", domains,
            config=self._recovery_config(), rng=self.rng,
        )
        self.msp2 = server_cls(
            self.sim, self.network, "msp2", domains,
            config=self._recovery_config(), rng=self.rng,
        )
        self.crash_controller.msp2 = self.msp2

        self.msp1.register_service("service_method1", self._make_service_method1())
        self.msp1.register_shared("SV0", _counter_bytes(0, params.sv_bytes))
        self.msp1.register_shared("SV1", _counter_bytes(0, params.sv_bytes))
        self.msp2.register_service("service_method2", self._make_service_method2())
        self.msp2.register_shared("SV2", _counter_bytes(0, params.sv_bytes))
        self.msp2.register_shared("SV3", _counter_bytes(0, params.sv_bytes))

    def _increment(self, ctx, name: str):
        """Bump one shared counter via the configured access pattern."""
        params = self.params
        if params.atomic_sv_updates:
            yield from ctx.update_shared(
                name,
                lambda raw: _counter_bytes(_counter_value(raw) + 1, params.sv_bytes),
            )
        else:
            raw = yield from ctx.read_shared(name)
            yield from ctx.write_shared(
                name, _counter_bytes(_counter_value(raw) + 1, params.sv_bytes)
            )

    def _make_service_method1(self):
        params = self.params
        controller = self.crash_controller
        bulk_bytes = params.session_state_bytes - params.session_write_bytes

        def service_method1(ctx, argument):
            yield from ctx.compute(self.msp1.config.costs.method_execution_ms)
            yield from self._increment(ctx, "SV0")
            for _ in range(params.calls_to_sm2):
                yield from ctx.call("msp2", "service_method2", argument)
            if not ctx.is_replay:
                controller.after_reply2_received()
            yield from self._increment(ctx, "SV1")
            bulk = yield from ctx.get_session_var("bulk")
            if bulk is None:
                yield from ctx.set_session_var("bulk", b"\x00" * bulk_bytes)
            hot = yield from ctx.get_session_var("hot")
            count = _counter_value(hot) + 1
            yield from ctx.set_session_var(
                "hot", _counter_bytes(count, params.session_write_bytes)
            )
            return _counter_bytes(count, params.reply_bytes)

        return service_method1

    def _make_service_method2(self):
        params = self.params

        def service_method2(ctx, argument):
            yield from ctx.compute(self.msp2.config.costs.method_execution_ms)
            for name in ("SV2", "SV3"):
                yield from self._increment(ctx, name)
            bulk = yield from ctx.get_session_var("bulk")
            if bulk is None:
                yield from ctx.set_session_var(
                    "bulk", b"\x00" * (params.session_state_bytes - params.session_write_bytes)
                )
            hot = yield from ctx.get_session_var("hot")
            count = _counter_value(hot) + 1
            yield from ctx.set_session_var(
                "hot", _counter_bytes(count, params.session_write_bytes)
            )
            return _counter_bytes(count, params.reply_bytes)

        return service_method2

    # -- running ----------------------------------------------------------------

    def run(self, limit_ms: float = 36_000_000.0) -> PaperRunResult:
        """Drive all clients to completion and collect measurements."""
        params = self.params
        self.msp1.start_process()
        self.msp2.start_process()
        if self.state_server is not None:
            self.state_server.start()

        drivers = []
        argument = b"\x00" * params.request_arg_bytes

        def driver(session, stagger):
            yield 1.0 + stagger
            for _ in range(params.requests_per_client):
                yield from session.call("service_method1", argument)

        for i, session in enumerate(self.sessions):
            drivers.append(
                self.sim.spawn(driver(session, i * 0.1), name=f"driver{i}")
            )

        start_ms = self.sim.now
        for process in drivers:
            self.sim.run_until_process(process, limit=limit_ms)
        elapsed = self.sim.now - start_ms

        result = PaperRunResult(
            configuration=params.configuration,
            completed_requests=self.client.stats.calls,
            elapsed_ms=elapsed,
            response_times_ms=list(self.client.stats.response_times),
            crashes=self.crash_controller.crashes,
            msp1_cpu_utilization=self.msp1.cpu_utilization(since=start_ms),
            msp1_disk_utilization=(
                # Mean across the partition disks (identical to the
                # single disk at partitions=1).
                sum(d.utilization(since=start_ms) for d in self.msp1.disks)
                / len(self.msp1.disks)
            ),
            msp1_flushes=self.msp1.log.stats.physical_flushes if self.msp1.log else 0,
            msp2_flushes=self.msp2.log.stats.physical_flushes if self.msp2.log else 0,
            msp1_flushed_sectors=self.msp1.log.stats.flushed_sectors if self.msp1.log else 0,
            msp2_flushed_sectors=self.msp2.log.stats.flushed_sectors if self.msp2.log else 0,
            orphan_recoveries=self.msp1.stats.orphan_recoveries
            + self.msp2.stats.orphan_recoveries,
            replayed_requests=self.msp1.stats.replayed_requests
            + self.msp2.stats.replayed_requests,
            session_checkpoints=self.msp1.stats.session_checkpoints
            + self.msp2.stats.session_checkpoints,
        )
        # Let any in-flight crash recovery finish (a forced crash on the
        # final request leaves MSP2 mid-restart) so post-run inspection
        # sees quiesced servers.  Under lazy recovery that includes the
        # background pump: a still-pending session's unflushed-tail RMWs
        # have not been re-executed yet, so shared counters read stale
        # until every chain is replayed.  Measurements were taken above.
        def _quiesced() -> bool:
            if not (self.msp1.running and self.msp2.running):
                return False
            return not any(
                s.lazy_pending or s.recovery_pending
                for msp in (self.msp1, self.msp2)
                for s in msp.sessions.values()
            )

        settle_deadline = self.sim.now + 60_000.0
        while self.sim.now < settle_deadline and not _quiesced():
            if not self.sim.step():
                break
        return result

    # -- verification --------------------------------------------------------------

    def shared_counters(self) -> dict[str, int]:
        return {
            "SV0": _counter_value(self.msp1.shared["SV0"].value),
            "SV1": _counter_value(self.msp1.shared["SV1"].value),
            "SV2": _counter_value(self.msp2.shared["SV2"].value),
            "SV3": _counter_value(self.msp2.shared["SV3"].value),
        }

    def verify_exactly_once(self) -> None:
        """Assert every completed request took effect exactly once.

        Valid for the recoverable configurations (the commercial
        baselines make no such promise under crashes — which is the
        point of the paper).
        """
        total = self.client.stats.calls
        counters = self.shared_counters()
        expected = {
            "SV0": total,
            "SV1": total,
            "SV2": total * self.params.calls_to_sm2,
            "SV3": total * self.params.calls_to_sm2,
        }
        if counters != expected:
            raise AssertionError(
                f"exactly-once violated: shared counters {counters}, expected {expected}"
            )
