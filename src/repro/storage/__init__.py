"""Simulated durable storage: disk timing model and stable byte stores.

The disk timing model implements the exact cost formula the paper uses in
its §5.2 analysis (7200 RPM rotational latency, 63 sectors/track transfer
rate, track-to-track seeks, and occasional random seeks caused by OS
interference).  A :class:`~repro.storage.stable.StableStore` is an
append-only byte store whose *flushed prefix* survives crashes — exactly
the failure model log-based recovery is designed against.
"""

from repro.storage.disk import Disk, DiskModel, DiskStats
from repro.storage.stable import LogTruncatedError, StableStore

__all__ = ["Disk", "DiskModel", "DiskStats", "LogTruncatedError", "StableStore"]
