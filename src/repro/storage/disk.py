"""Disk timing model and queued disk device.

The model follows the paper's §5.2 analysis of its 7200 RPM disks::

    T_flush(n) = rotation/2  +  n/63 * rotation  +  n/63 * t2t_seek

with ``rotation = 60000/7200 ms`` and 63 sectors per track, plus an
*occasional* full random seek caused by the operating system also using
the disk ("the actual flush time is slightly more than 4.5 ms, but much
less than 15 ms ... we crudely estimate TF2 to be 8 ms (= 4.5 + 10.5/3)").
We model the occasional seek as a Bernoulli event with probability 1/3
per write (matching the paper's 10.5/3 amortization) drawn from a seeded
stream, so both the mean and the spread are realistic while every run is
reproducible.

Sequential recovery reads follow the paper's read formula (no random
seek interference: "log reads during recovery are larger and more
efficient than log flushes").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Optional

from repro.sim import Resource, Simulator

SECTOR_BYTES = 512


@dataclass(frozen=True)
class DiskModel:
    """Timing parameters of a disk (defaults: the paper's Fig. 13 disk)."""

    rpm: float = 7200.0
    sectors_per_track: int = 63
    #: Average random seek time (ms) — write / read (paper: 10.5 / 9.5).
    random_seek_write_ms: float = 10.5
    random_seek_read_ms: float = 9.5
    #: Track-to-track seek time (ms) — write / read (paper: 1.2 / 1.0).
    track_seek_write_ms: float = 1.2
    track_seek_read_ms: float = 1.0
    #: Probability a write incurs a random seek because the OS moved the
    #: arm (paper amortizes this as 10.5/3 per flush, i.e. p = 1/3).
    os_interference_prob: float = 1.0 / 3.0

    @property
    def rotation_ms(self) -> float:
        """Time for one full platter rotation in ms."""
        return 60000.0 / self.rpm

    @property
    def avg_rotational_latency_ms(self) -> float:
        return self.rotation_ms / 2.0

    def transfer_ms(self, sectors: int) -> float:
        """Media transfer time for ``sectors`` contiguous sectors."""
        return sectors / self.sectors_per_track * self.rotation_ms

    def write_time_ms(self, sectors: int, with_random_seek: bool) -> float:
        """Service time for a log flush of ``sectors`` sectors."""
        time = (
            self.avg_rotational_latency_ms
            + self.transfer_ms(sectors)
            + sectors / self.sectors_per_track * self.track_seek_write_ms
        )
        if with_random_seek:
            time += self.random_seek_write_ms
        return time

    def read_time_ms(self, sectors: int, sequential: bool = True) -> float:
        """Service time for a read of ``sectors`` sectors.

        Sequential reads (the recovery log scan) pay rotational latency +
        transfer + track seeks; random reads also pay a full random seek.
        """
        time = (
            self.avg_rotational_latency_ms
            + self.transfer_ms(sectors)
            + sectors / self.sectors_per_track * self.track_seek_read_ms
        )
        if not sequential:
            time += self.random_seek_read_ms
        return time

    def expected_write_time_ms(self, sectors: int) -> float:
        """Mean flush time including amortized OS interference.

        For 2 sectors this evaluates to ~7.97 ms, matching the paper's
        crude TF2 estimate of 8 ms.
        """
        return (
            self.write_time_ms(sectors, with_random_seek=False)
            + self.os_interference_prob * self.random_seek_write_ms
        )


@dataclass
class DiskStats:
    """Operation counters a :class:`Disk` maintains."""

    writes: int = 0
    reads: int = 0
    sectors_written: int = 0
    sectors_read: int = 0
    #: Whole-segment recycles by log truncation: a metadata operation
    #: (the space is simply reused for future writes), so trims count
    #: reclaimed sectors but consume no device time.
    trims: int = 0
    sectors_trimmed: int = 0
    busy_ms: float = 0.0

    def snapshot(self) -> "DiskStats":
        return DiskStats(
            writes=self.writes,
            reads=self.reads,
            sectors_written=self.sectors_written,
            sectors_read=self.sectors_read,
            trims=self.trims,
            sectors_trimmed=self.sectors_trimmed,
            busy_ms=self.busy_ms,
        )


class Disk:
    """A disk device: the timing model behind a FIFO queue.

    Concurrent requests (e.g. several sessions' batch flushes plus the
    Psession DB's WAL on a shared controller) serialize here, which is
    what makes the disk the bottleneck in the multi-client experiment
    (paper Fig. 17).
    """

    def __init__(
        self,
        sim: Simulator,
        model: Optional[DiskModel] = None,
        rng: Optional[random.Random] = None,
        name: str = "disk",
    ):
        self.sim = sim
        self.model = model or DiskModel()
        self.name = name
        self._rng = rng or random.Random(0)
        self._queue = Resource(sim, capacity=1, name=name)
        self.stats = DiskStats()

    def write(self, sectors: int):
        """Write ``sectors`` sectors (generator; returns service ms)."""
        if sectors <= 0:
            raise ValueError("sectors must be positive")
        interfered = self._rng.random() < self.model.os_interference_prob
        service = self.model.write_time_ms(sectors, with_random_seek=interfered)
        yield from self._serve(service)
        self.stats.writes += 1
        self.stats.sectors_written += sectors
        return service

    def write_bytes(self, nbytes: int):
        """Write ``nbytes`` rounded up to whole sectors (generator)."""
        sectors = max(1, math.ceil(nbytes / SECTOR_BYTES))
        service = yield from self.write(sectors)
        return service

    def read(self, sectors: int, sequential: bool = True):
        """Read ``sectors`` sectors (generator; returns service ms)."""
        if sectors <= 0:
            raise ValueError("sectors must be positive")
        service = self.model.read_time_ms(sectors, sequential=sequential)
        yield from self._serve(service)
        self.stats.reads += 1
        self.stats.sectors_read += sectors
        return service

    def read_bytes(self, nbytes: int, sequential: bool = True):
        """Read ``nbytes`` rounded up to whole sectors (generator)."""
        sectors = max(1, math.ceil(nbytes / SECTOR_BYTES))
        service = yield from self.read(sectors, sequential=sequential)
        return service

    def trim(self, nbytes: int) -> None:
        """Account ``nbytes`` of reclaimed log space (not a generator).

        Recycling a log segment rewinds an allocation pointer; no
        platter time is spent, which is exactly why checkpoint-driven
        truncation is free at the device while bounding log space.
        """
        if nbytes <= 0:
            return
        self.stats.trims += 1
        self.stats.sectors_trimmed += math.ceil(nbytes / SECTOR_BYTES)

    def _serve(self, service_ms: float):
        yield from self._queue.acquire()
        try:
            yield service_ms
        finally:
            self._queue.release()
        self.stats.busy_ms += service_ms

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time the device was busy since ``since``."""
        return self._queue.utilization(since=since)
