"""Crash-aware append-only byte store.

A :class:`StableStore` is the durability abstraction under a physical
log: bytes appended to it live in a volatile tail until ``mark_durable``
advances the durable boundary (the log manager calls it after the
simulated disk write completes).  A crash discards exactly the volatile
tail — the durable prefix always survives.  This is the failure model
every piece of the paper's recovery machinery is designed against, so we
enforce it in one place and test it in isolation.

The store also keeps a small *anchor block* (the paper's §3.4 "log
anchor ... a block located at a specific location inside the physical
log such as the log header") with its own durability flag.
"""

from __future__ import annotations

from typing import Optional


class StableStoreError(Exception):
    """Raised for out-of-range reads or misuse of the store."""


class StableStore:
    """Append-only byte store with a durable prefix and a volatile tail."""

    def __init__(self, name: str = "log"):
        self.name = name
        self._data = bytearray()
        self._durable_end = 0
        self._anchor_volatile: Optional[bytes] = None
        self._anchor_durable: Optional[bytes] = None
        #: Number of crashes survived (diagnostics only).
        self.crash_count = 0

    # -- appending ------------------------------------------------------

    def append(self, data: bytes) -> int:
        """Append ``data`` to the volatile tail; returns its start offset."""
        offset = len(self._data)
        self._data.extend(data)
        return offset

    @property
    def end(self) -> int:
        """Offset just past the last appended byte (volatile end)."""
        return len(self._data)

    @property
    def durable_end(self) -> int:
        """Offset up to which data is crash-proof."""
        return self._durable_end

    @property
    def unflushed_bytes(self) -> int:
        return len(self._data) - self._durable_end

    def mark_durable(self, upto: int) -> None:
        """Advance the durable boundary to ``upto`` (monotone)."""
        if upto > len(self._data):
            raise StableStoreError(
                f"{self.name}: cannot mark durable past end ({upto} > {len(self._data)})"
            )
        self._durable_end = max(self._durable_end, upto)

    # -- reading ----------------------------------------------------------

    def read(self, start: int, length: int) -> bytes:
        """Read ``length`` bytes at ``start`` (volatile tail included).

        Normal-execution code may read its own unflushed buffer; after a
        crash the tail no longer exists so all reads are durable ones.
        """
        if start < 0 or start + length > len(self._data):
            raise StableStoreError(
                f"{self.name}: read [{start}, {start + length}) out of range "
                f"(end={len(self._data)})"
            )
        return bytes(self._data[start : start + length])

    def view(self, start: int, length: int) -> memoryview:
        """Zero-copy read of ``[start, start + length)``.

        The returned ``memoryview`` aliases the store's buffer: while it
        (or any slice of it) is alive the underlying ``bytearray``
        cannot grow, so callers must not hold a view across a point
        where an ``append`` can run — in practice, never across a
        simulation yield.  The log scan and record parsing use views
        only inside synchronous sections.
        """
        if start < 0 or start + length > len(self._data):
            raise StableStoreError(
                f"{self.name}: view [{start}, {start + length}) out of range "
                f"(end={len(self._data)})"
            )
        return memoryview(self._data)[start : start + length]

    def read_durable(self, start: int, length: int) -> bytes:
        """Read from the durable prefix only (what recovery may rely on)."""
        if start + length > self._durable_end:
            raise StableStoreError(
                f"{self.name}: durable read [{start}, {start + length}) past "
                f"durable end {self._durable_end}"
            )
        return self.read(start, length)

    # -- the anchor block -------------------------------------------------

    def write_anchor(self, data: bytes) -> None:
        """Stage new anchor contents (volatile until :meth:`flush_anchor`)."""
        self._anchor_volatile = bytes(data)

    def flush_anchor(self) -> None:
        """Make the staged anchor durable (caller pays the disk write)."""
        if self._anchor_volatile is not None:
            self._anchor_durable = self._anchor_volatile

    def read_anchor(self) -> Optional[bytes]:
        """Return the durable anchor contents (``None`` if never flushed)."""
        return self._anchor_durable

    # -- crashes ----------------------------------------------------------

    def crash(self) -> None:
        """Discard the volatile tail and any unflushed anchor staging."""
        del self._data[self._durable_end :]
        self._anchor_volatile = self._anchor_durable
        self.crash_count += 1
