"""Crash-aware append-only byte store, segmented for log-space reuse.

A :class:`StableStore` is the durability abstraction under a physical
log: bytes appended to it live in a volatile tail until ``mark_durable``
advances the durable boundary (the log manager calls it after the
simulated disk write completes).  A crash discards exactly the volatile
tail — the durable prefix always survives.  This is the failure model
every piece of the paper's recovery machinery is designed against, so we
enforce it in one place and test it in isolation.

Physically the store is a chain of fixed-size *segments* (the classic
circular-log / segment-file layout: ARIES log files, Sauer & Härder's
early log reuse).  LSNs stay **global logical byte offsets** — nothing
above the store ever sees segment indices — and :meth:`view` stays
zero-copy whenever the requested range lies inside one segment,
stitching a copy only when a range straddles a boundary.

Segmentation is what makes log-space reclamation possible:
:meth:`truncate` advances a logical floor (``truncate_lsn``) and
recycles every segment wholly below it.  Reads below the floor raise
:class:`LogTruncatedError` — recovery never issues them, because the
MSP checkpoint's minimal LSN (the only value the floor is ever advanced
to) lower-bounds every LSN recovery can touch.  The floor survives
crashes: recycled segments are physically gone, exactly like reused log
files on a real disk.

The store also keeps a small *anchor block* (the paper's §3.4 "log
anchor ... a block located at a specific location inside the physical
log such as the log header") with its own durability flag.
"""

from __future__ import annotations

from typing import Optional, Union

#: Default segment size.  Small enough that short-lived data is
#: reclaimed promptly, large enough that almost no frame straddles a
#: boundary (frames are tens to hundreds of bytes).
DEFAULT_SEGMENT_BYTES = 64 * 1024


class StableStoreError(Exception):
    """Raised for out-of-range reads or misuse of the store."""


class LogTruncatedError(StableStoreError):
    """A read below the truncation floor — that log space was recycled.

    Recovery code must never trigger this: the floor only ever advances
    to an anchored MSP checkpoint's minimal LSN, which lower-bounds
    every LSN recovery can touch (session and shared-variable scan
    starts, backward write chains, EOS comparisons).  Seeing this error
    therefore means a bookkeeping bug, not a recoverable condition.
    """


class StableStore:
    """Segmented append-only byte store with a durable prefix, a volatile
    tail, and a recyclable truncated prefix."""

    def __init__(
        self,
        name: str = "log",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
    ):
        if segment_bytes <= 0:
            raise StableStoreError(f"{name}: segment_bytes must be positive")
        self.name = name
        self.segment_bytes = segment_bytes
        #: segment index -> buffer holding bytes [i*S, i*S + len(buf)).
        #: Buffers are aligned at their segment's start; only the tail
        #: segment is ever partially filled.
        self._segments: dict[int, bytearray] = {}
        #: The tail segment's buffer (append fast path): because buffers
        #: are segment-aligned, ``len(_tail)`` is exactly the fill of the
        #: tail segment, so an append that fits skips the index math.
        self._tail: Optional[bytearray] = None
        #: Logical truncation floor: offsets below it were recycled.
        self._floor = 0
        #: Logical end (offset just past the last appended byte).
        self._end = 0
        self._durable_end = 0
        self._anchor_volatile: Optional[bytes] = None
        self._anchor_durable: Optional[bytes] = None
        #: Number of crashes survived (diagnostics only).
        self.crash_count = 0
        #: Space accounting (monotone; survives crashes like the floor).
        self.truncated_bytes = 0
        self.recycled_segments = 0

    # -- appending ------------------------------------------------------

    def append(self, data: bytes) -> int:
        """Append ``data`` to the volatile tail; returns its start offset."""
        offset = self._end
        size = self.segment_bytes
        n = len(data)
        tail = self._tail
        if tail is not None and len(tail) + n <= size:
            tail += data  # common case: fits in the tail segment
            self._end = offset + n
            return offset
        position = 0
        while position < n:
            index, seg_offset = divmod(self._end, size)
            buffer = self._segments.get(index)
            if buffer is None:
                buffer = bytearray()
                self._segments[index] = buffer
                self._tail = buffer
            take = min(size - seg_offset, n - position)
            if position == 0 and take == n:
                buffer += data
            else:
                buffer += data[position : position + take]
            self._end += take
            position += take
        return offset

    def _reset_tail(self) -> None:
        """Re-derive the tail-buffer fast path after truncate/crash."""
        if self._end == 0:
            self._tail = None
        else:
            self._tail = self._segments.get((self._end - 1) // self.segment_bytes)

    @property
    def end(self) -> int:
        """Offset just past the last appended byte (volatile end)."""
        return self._end

    @property
    def durable_end(self) -> int:
        """Offset up to which data is crash-proof."""
        return self._durable_end

    @property
    def truncate_lsn(self) -> int:
        """Logical floor: reads below it raise :class:`LogTruncatedError`."""
        return self._floor

    @property
    def unflushed_bytes(self) -> int:
        return self._end - self._durable_end

    @property
    def live_bytes(self) -> int:
        """Bytes currently held in memory across all retained segments."""
        return sum(len(buffer) for buffer in self._segments.values())

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def mark_durable(self, upto: int) -> None:
        """Advance the durable boundary to ``upto`` (monotone)."""
        if upto > self._end:
            raise StableStoreError(
                f"{self.name}: cannot mark durable past end ({upto} > {self._end})"
            )
        self._durable_end = max(self._durable_end, upto)

    # -- reading ----------------------------------------------------------

    def _check_range(self, start: int, length: int) -> None:
        if start < self._floor:
            raise LogTruncatedError(
                f"{self.name}: read [{start}, {start + length}) below the "
                f"truncation floor {self._floor} — that log space was recycled"
            )
        if length < 0 or start + length > self._end:
            raise StableStoreError(
                f"{self.name}: read [{start}, {start + length}) out of range "
                f"(end={self._end})"
            )

    def _gather(self, start: int, length: int) -> Union[memoryview, bytes]:
        """Bytes of ``[start, start + length)``: a zero-copy ``memoryview``
        when the range lies inside one segment, stitched ``bytes`` when it
        straddles a boundary."""
        self._check_range(start, length)
        if length == 0:
            return b""
        size = self.segment_bytes
        index, seg_offset = divmod(start, size)
        if seg_offset + length <= size:
            return memoryview(self._segments[index])[seg_offset : seg_offset + length]
        parts = []
        remaining = length
        while remaining > 0:
            take = min(size - seg_offset, remaining)
            buffer = self._segments[index]
            parts.append(bytes(buffer[seg_offset : seg_offset + take]))
            remaining -= take
            index += 1
            seg_offset = 0
        return b"".join(parts)

    def read(self, start: int, length: int) -> bytes:
        """Read ``length`` bytes at ``start`` (volatile tail included).

        Normal-execution code may read its own unflushed buffer; after a
        crash the tail no longer exists so all reads are durable ones.
        One copy total: a single-segment read materializes through one
        ``memoryview`` (the old monolithic store sliced the bytearray and
        then re-copied the slice — two copies per read).
        """
        data = self._gather(start, length)
        if isinstance(data, memoryview):
            return bytes(data)
        return data

    def view(self, start: int, length: int) -> memoryview:
        """Zero-copy read of ``[start, start + length)``.

        Within one segment the returned ``memoryview`` aliases the
        segment's buffer: while it (or any slice of it) is alive that
        buffer cannot grow, so callers must not hold a view across a
        point where an ``append`` can run — in practice, never across a
        simulation yield.  A range straddling a segment boundary is
        stitched into a private copy (the returned view then aliases
        nothing), which framing keeps rare: only a frame that happens to
        cross a boundary pays it.
        """
        data = self._gather(start, length)
        if isinstance(data, memoryview):
            return data
        return memoryview(data)

    def contiguous_end(self, offset: int) -> int:
        """End of the contiguous (single-segment) region holding ``offset``:
        the segment boundary or the store's end, whichever is nearer.
        Scans use it to walk the log in maximal zero-copy spans."""
        boundary = (offset // self.segment_bytes + 1) * self.segment_bytes
        return min(boundary, self._end)

    def read_durable(self, start: int, length: int) -> bytes:
        """Read from the durable prefix only (what recovery may rely on)."""
        if start + length > self._durable_end:
            raise StableStoreError(
                f"{self.name}: durable read [{start}, {start + length}) past "
                f"durable end {self._durable_end}"
            )
        return self.read(start, length)

    # -- truncation --------------------------------------------------------

    def truncate(self, upto: int) -> int:
        """Advance the truncation floor to ``upto`` and recycle every
        segment wholly below it.  Returns the number of segments recycled.

        Only durable space may be truncated (the floor is advanced to an
        *anchored* checkpoint's minimal LSN, which is durable by
        construction), and the floor is monotone — a stale ``upto`` is a
        no-op, never a regression.
        """
        if upto > self._durable_end:
            raise StableStoreError(
                f"{self.name}: cannot truncate volatile space "
                f"({upto} > durable end {self._durable_end})"
            )
        if upto <= self._floor:
            return 0
        self.truncated_bytes += upto - self._floor
        self._floor = upto
        first_live = upto // self.segment_bytes
        recycled = 0
        for index in [i for i in self._segments if i < first_live]:
            del self._segments[index]
            recycled += 1
        self.recycled_segments += recycled
        self._reset_tail()
        return recycled

    # -- the anchor block -------------------------------------------------

    def write_anchor(self, data: bytes) -> None:
        """Stage new anchor contents (volatile until :meth:`flush_anchor`)."""
        self._anchor_volatile = bytes(data)

    def flush_anchor(self) -> None:
        """Make the staged anchor durable (caller pays the disk write)."""
        if self._anchor_volatile is not None:
            self._anchor_durable = self._anchor_volatile

    def read_anchor(self) -> Optional[bytes]:
        """Return the durable anchor contents (``None`` if never flushed)."""
        return self._anchor_durable

    def rewind(self, boundary: int) -> None:
        """Discard everything past ``boundary`` — durable bytes included.

        Partitioned crash recovery's consistent cut can exclude a
        *durable* suffix: a record survives its own partition's flush
        while a cross-partition dependency is lost.  Excluded records
        must leave the disk too, not just the replay — a later recovery
        would otherwise rediscover them after the offsets their
        dependencies named have been reused by the new incarnation's
        appends, and accept them against aliased records.
        """
        if boundary > self._end:
            raise StableStoreError(
                f"{self.name}: cannot rewind past the end "
                f"({boundary} > {self._end})"
            )
        if boundary < self._floor:
            raise StableStoreError(
                f"{self.name}: cannot rewind below the truncation floor "
                f"({boundary} < {self._floor})"
            )
        size = self.segment_bytes
        first_dead, keep = divmod(boundary, size)
        for index in [i for i in self._segments if i > first_dead]:
            del self._segments[index]
        tail = self._segments.get(first_dead)
        if tail is not None:
            if keep == 0:
                del self._segments[first_dead]
            else:
                del tail[keep:]
        self._end = boundary
        if self._durable_end > boundary:
            self._durable_end = boundary
        self._reset_tail()

    # -- crashes ----------------------------------------------------------

    def crash(self) -> None:
        """Discard the volatile tail and any unflushed anchor staging.

        The truncation floor and the recycled segments are physical
        facts about the log — they survive a crash exactly like the
        durable prefix does.
        """
        boundary = self._durable_end
        size = self.segment_bytes
        first_dead, keep = divmod(boundary, size)
        for index in [i for i in self._segments if i > first_dead]:
            del self._segments[index]
        tail = self._segments.get(first_dead)
        if tail is not None:
            if keep == 0:
                del self._segments[first_dead]
            else:
                del tail[keep:]
        self._end = boundary
        self._reset_tail()
        self._anchor_volatile = self._anchor_durable
        self.crash_count += 1
