#!/usr/bin/env python
"""CI perf-regression gate over the fan-out report (``BENCH_PR3.json``).

Compares a freshly generated report against the committed baseline:

- **determinism is gated exactly**: the fresh run's ``all_identical``
  must be true (parallel verdicts equal sequential ones on the runner),
  and each section's deterministic verdict — fuzz report dicts,
  experiment rows/claims, the benchmark cell list — must equal the
  committed baseline's verdict, since both come from seeded simulations
  that do not depend on the machine;
- **wall time is gated with a tolerance band**: per section, the fresh
  sequential time may not exceed ``band`` times the committed one
  (runners are slower than dev boxes, but a 4x blow-up is a regression,
  not noise), and the parallel time may not exceed ``band`` times the
  sequential time plus a small absolute grace (pool start-up is a fixed
  cost that dominates sub-second sections; beyond the grace it is a
  pool overhead regression even on one core).

Usage: ``python scripts/perf_gate.py FRESH BASELINE [--band 4.0]``

A second mode gates the bounded-memory claim of the PR 4 segmented log
store: ``python scripts/perf_gate.py --log-space BENCH.json`` checks the
``log_space`` cell of a fresh bench report — with truncation on, live
log bytes must stay bounded by the checkpoint interval (plus segment
slack) and roughly flat across run lengths, while the truncation-off
control must grow linearly.  These are properties of the seeded
simulation, not the machine, so they are gated exactly.

A third mode gates the structured-tracing cost contract:
``python scripts/perf_gate.py --trace-overhead BENCH.json
[--max-ratio 5.0]`` checks the ``trace_overhead`` cell — the traced run
must produce events (the instrumentation is alive) and must not exceed
``max-ratio`` times the tracing-off run of the *same cell* (a relative
bound, so runner speed cancels out).  The tracing-*off* cost itself is
covered by the fan-out gate's wall-time band on the existing sections.

A fifth mode gates the PR 7 lazy-restart claim:
``python scripts/perf_gate.py --instant-restart BENCH.json
[--max-ttfr-ratio 0.2] [--min-sessions 10000]`` checks the
``instant_restart`` cell — at every partition count measured, the lazy
time-to-first-reply after a crash must be at most ``max-ttfr-ratio``
times the eager one (a >= 5x opening-time win by default), the cell
must carry at least ``min-sessions`` live sessions for the claim to
mean anything, and the per-mode invariants must hold: no session was
ever served before its chain replay, lazy cells recovered every
session exactly once (inline + pump), eager cells recovered none
lazily.  All of these are properties of the seeded simulation, gated
exactly.

A sixth mode gates the PR 8 command-logging claim:
``python scripts/perf_gate.py --log-volume BENCH.json
[--max-bytes-ratio 0.5] [--value-baseline BENCH_PR8.json]`` checks the
``log_volume`` cell — command-mode log bytes/request must be at most
``max-bytes-ratio`` times value-mode at every (partitions,
recovery-mode) combination measured, value cells must show zero
command machinery (the byte-identity contract), command cells must
have elided every SV update record, and with a ``--value-baseline``
the fresh value cells must stay within 10% of the committed ones.

A seventh mode gates the PR 9 sharded fleet:
``python scripts/perf_gate.py --fleet-scaling BENCH.json
[--min-fleet-speedup 1.8]`` checks the ``fleet`` cell — the S=4
critical-path speedup (unsharded busy seconds over the 4-shard
per-epoch-max busy seconds, the wall factor a one-core-per-shard host
achieves) must reach the floor, the jobs=4 pool run must fingerprint
byte-identically to the jobs=1 reference, every cell must have
finished clean, and the >= 100k-session open-loop cell must show
bounded-memory truncation (segments recycled, live log far below the
appended volume).

A fourth mode gates the PR 6 partitioned log:
``python scripts/perf_gate.py --partition-scaling BENCH.json
[--p1-baseline BENCH_PR1.json] [--min-speedup 1.8]`` checks the
``log_partitions`` cell — simulated append throughput at P=4 must be
at least ``min-speedup`` times P=1 (exact: a property of the seeded
simulation), and the P=1 cell's wall throughput must stay within
``band`` of the committed PR 1 ``append_flush`` number (the partition
plumbing must not tax the classical single-log path).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional


#: Absolute allowance for fixed pool start-up (spawned interpreters
#: importing the tree), charged once per section regardless of its size.
STARTUP_GRACE_S = 3.0


def compare(fresh: dict, baseline: dict, band: float) -> list[str]:
    problems: list[str] = []
    if not fresh.get("all_identical"):
        problems.append(
            "fresh run is not deterministic: parallel verdicts diverged "
            "from sequential ones (all_identical is false)"
        )
    fresh_sections = fresh.get("sections", {})
    base_sections = baseline.get("sections", {})
    missing = sorted(set(base_sections) - set(fresh_sections))
    if missing:
        problems.append(f"fresh report lacks sections: {', '.join(missing)}")
    for name, base in sorted(base_sections.items()):
        section = fresh_sections.get(name)
        if section is None:
            continue
        if section["verdict"] != base["verdict"]:
            problems.append(
                f"{name}: verdict differs from committed baseline — the "
                "seeded simulation changed behaviour (regenerate "
                "BENCH_PR3.json if intentional)"
            )
        if section["sequential_s"] > band * base["sequential_s"]:
            problems.append(
                f"{name}: sequential {section['sequential_s']:.2f}s exceeds "
                f"{band:g}x committed {base['sequential_s']:.2f}s"
            )
        if section["parallel_s"] > band * section["sequential_s"] + STARTUP_GRACE_S:
            problems.append(
                f"{name}: parallel {section['parallel_s']:.2f}s exceeds "
                f"{band:g}x its own sequential {section['sequential_s']:.2f}s "
                "(pool overhead regression)"
            )
    return problems


#: Segment-granularity slack on the bounded-space check: the floor can
#: trail the checkpoint by up to one segment per recycle boundary, the
#: checkpoint record itself and the next interval's appends pile on top.
LOG_SPACE_SLACK_SEGMENTS = 4


def gate_log_space(report: dict) -> list[str]:
    """Gate the bounded-memory claim of the ``log_space`` bench cell."""
    cell = report.get("benchmarks", {}).get("log_space")
    if cell is None:
        return ["log-space: report has no log_space benchmark cell"]
    problems: list[str] = []
    on = cell["truncation_on"]
    off = cell["truncation_off"]
    records = cell["records"]
    if cell["ckpt_every"] * 2 > records:
        return [
            f"log-space: only {records} records for a checkpoint every "
            f"{cell['ckpt_every']} — too short to exercise truncation "
            "(raise --scale)"
        ]
    # Bounded: live bytes with truncation on may never exceed one
    # checkpoint interval of appends plus segment-granularity slack.
    avg_record = on["appended_bytes"] / records
    bound = (
        cell["ckpt_every"] * avg_record
        + LOG_SPACE_SLACK_SEGMENTS * cell["segment_bytes"]
    )
    if on["peak_live_bytes"] > bound:
        problems.append(
            f"log-space: peak live bytes {on['peak_live_bytes']} with "
            f"truncation on exceeds the checkpoint-interval bound {bound:.0f}"
        )
    # Flat: the final sample must not outgrow the bound either (the
    # per-length rows would reveal creep long before the peak does).
    rows_on = on["rows"]
    if rows_on and rows_on[-1]["live_bytes"] > bound:
        problems.append(
            f"log-space: live bytes grew to {rows_on[-1]['live_bytes']} at "
            f"{rows_on[-1]['records']} records (bound {bound:.0f}) — "
            "truncation is not holding the log flat"
        )
    # The control: with truncation off the log must actually grow
    # linearly, otherwise the comparison proves nothing.
    rows_off = off["rows"]
    if len(rows_off) >= 2 and rows_off[-1]["live_bytes"] < 2 * rows_off[0]["live_bytes"]:
        problems.append(
            "log-space: truncation-off control did not grow "
            f"({rows_off[0]['live_bytes']} -> {rows_off[-1]['live_bytes']})"
        )
    if off["final_live_bytes"] < 2 * on["final_live_bytes"]:
        problems.append(
            f"log-space: final live bytes on={on['final_live_bytes']} vs "
            f"off={off['final_live_bytes']} — truncation reclaimed too little"
        )
    if on["recycled_segments"] <= 0:
        problems.append("log-space: truncation on but no segment was recycled")
    return problems


def _run_log_space_gate(path: str) -> int:
    with open(path) as fh:
        report = json.load(fh)
    problems = gate_log_space(report)
    cell = report.get("benchmarks", {}).get("log_space", {})
    if cell:
        on = cell.get("truncation_on", {})
        off = cell.get("truncation_off", {})
        print(
            f"log-space gate: {cell.get('records')} records, "
            f"segment {cell.get('segment_bytes')} B, "
            f"ckpt every {cell.get('ckpt_every')}"
        )
        print(
            f"  truncation on : peak {on.get('peak_live_bytes')} B, "
            f"final {on.get('final_live_bytes')} B, "
            f"{on.get('recycled_segments')} segments recycled"
        )
        print(
            f"  truncation off: final {off.get('final_live_bytes')} B "
            f"({cell.get('space_ratio', 0):.1f}x the bounded log)"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("log-space gate passed")
    return 0


def gate_trace_overhead(report: dict, max_ratio: float) -> list[str]:
    """Gate the enabled-cost bound of the ``trace_overhead`` bench cell."""
    cell = report.get("benchmarks", {}).get("trace_overhead")
    if cell is None:
        return ["trace-overhead: report has no trace_overhead benchmark cell"]
    problems: list[str] = []
    if cell.get("trace_events", 0) <= 0:
        problems.append(
            "trace-overhead: traced run emitted no events — the "
            "instrumentation is dead, the ratio proves nothing"
        )
    plain = cell.get("plain_seconds", 0.0)
    traced = cell.get("traced_seconds", 0.0)
    if plain <= 0.0 or traced <= 0.0:
        problems.append(
            f"trace-overhead: degenerate timings (plain {plain}s, "
            f"traced {traced}s)"
        )
        return problems
    if traced > max_ratio * plain:
        problems.append(
            f"trace-overhead: traced {traced:.3f}s exceeds "
            f"{max_ratio:g}x tracing-off {plain:.3f}s "
            f"(ratio {traced / plain:.2f}x)"
        )
    return problems


def _run_trace_overhead_gate(path: str, max_ratio: float) -> int:
    with open(path) as fh:
        report = json.load(fh)
    problems = gate_trace_overhead(report, max_ratio)
    cell = report.get("benchmarks", {}).get("trace_overhead", {})
    if cell:
        print(
            f"trace-overhead gate: {cell.get('requests')} requests, "
            f"plain {cell.get('plain_seconds', 0.0):.3f}s, "
            f"traced {cell.get('traced_seconds', 0.0):.3f}s "
            f"({cell.get('overhead_ratio', 0.0):.2f}x, "
            f"{cell.get('trace_events')} events), "
            f"max ratio {max_ratio:g}x"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("trace-overhead gate passed")
    return 0


#: Default floor on simulated append-throughput scaling at 4 partitions.
PARTITION_MIN_SPEEDUP = 1.8


def gate_partition_scaling(
    report: dict,
    baseline: Optional[dict],
    band: float,
    min_speedup: float,
) -> list[str]:
    """Gate the ``log_partitions`` cell of a fresh bench report.

    Two claims: the partitioned log must *scale* — simulated append
    throughput at P=4 at least ``min_speedup`` times P=1 (a property of
    the seeded simulation, gated exactly) — and it must not *tax* the
    classical path: the P=1 cell's wall-clock records/s must stay
    within ``band`` of the committed PR 1 ``append_flush`` number
    (runners are slower than dev boxes; beyond the band the partition
    plumbing slowed the single-log hot path).
    """
    cell = report.get("benchmarks", {}).get("log_partitions")
    if cell is None:
        return ["partition-scaling: report has no log_partitions benchmark cell"]
    problems: list[str] = []
    cells = cell.get("cells", {})
    missing = sorted({"1", "2", "4", "8"} - set(cells))
    if missing:
        problems.append(
            f"partition-scaling: cells missing for P in {{{', '.join(missing)}}}"
        )
        return problems
    speedup = cell.get("speedup_p4_sim", 0.0)
    if speedup < min_speedup:
        problems.append(
            f"partition-scaling: simulated P=4 speedup {speedup:.2f}x is "
            f"below the {min_speedup:g}x floor (P=1 "
            f"{cell.get('p1_sim_records_per_s', 0.0):,.0f} rec/s vs P=4 "
            f"{cell.get('p4_sim_records_per_s', 0.0):,.0f} rec/s)"
        )
    for P, run in sorted(cells.items(), key=lambda kv: int(kv[0])):
        appends = run.get("partition_appends", {})
        if len(appends) != int(P):
            problems.append(
                f"partition-scaling: P={P} cell touched {len(appends)} "
                f"partitions — the session streams did not spread"
            )
    if baseline is not None:
        # Byte throughput, not record throughput: the scaling cell
        # appends 1 KB values where append_flush appends 64 B ones, so
        # MB/s is the unit in which the two runs are comparable.
        base = baseline.get("benchmarks", {}).get("append_flush", {})
        base_mbps = base.get("mb_per_s", 0.0)
        p1_mbps = cells["1"].get("mb_per_s", 0.0)
        if base_mbps > 0.0 and p1_mbps * band < base_mbps:
            problems.append(
                f"partition-scaling: P=1 wall throughput {p1_mbps:,.1f} MB/s "
                f"fell below 1/{band:g} of the committed append_flush "
                f"baseline {base_mbps:,.1f} MB/s — the partition plumbing "
                "slowed the classical single-log path"
            )
    return problems


def _run_partition_scaling_gate(
    path: str, baseline_path: Optional[str], band: float, min_speedup: float
) -> int:
    with open(path) as fh:
        report = json.load(fh)
    baseline = None
    if baseline_path is not None:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    problems = gate_partition_scaling(report, baseline, band, min_speedup)
    cell = report.get("benchmarks", {}).get("log_partitions", {})
    if cell:
        print(
            f"partition-scaling gate: {cell.get('records')} records per cell, "
            f"floor {min_speedup:g}x, band {band:g}x"
        )
        for P, run in sorted(
            cell.get("cells", {}).items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"  P={P}: sim {run.get('sim_records_per_s', 0.0):10,.0f} rec/s  "
                f"wall {run.get('mb_per_s', 0.0):6.1f} MB/s  "
                f"flush wait mean {run.get('flush_wait_mean_ms', 0.0):6.2f} ms  "
                f"p99 {run.get('flush_wait_p99_ms', 0.0):6.2f} ms"
            )
        print(
            f"  speedup (sim): p2 {cell.get('speedup_p2_sim', 0.0):.2f}x  "
            f"p4 {cell.get('speedup_p4_sim', 0.0):.2f}x  "
            f"p8 {cell.get('speedup_p8_sim', 0.0):.2f}x"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("partition-scaling gate passed")
    return 0


#: Default ceiling on lazy/eager TTFR: lazy must open at least 5x sooner.
INSTANT_RESTART_MAX_TTFR_RATIO = 0.2
#: The claim is about wide servers; below this the scan tail is noise.
INSTANT_RESTART_MIN_SESSIONS = 10_000


def gate_instant_restart(
    report: dict, max_ttfr_ratio: float, min_sessions: int
) -> list[str]:
    """Gate the ``instant_restart`` cell of a fresh bench report.

    The headline claim — a lazily recovering MSP serves its first reply
    at most ``max_ttfr_ratio`` times the eager restart's TTFR — is a
    property of the seeded simulation (sim-clock milliseconds, not wall
    time), so it is gated exactly, at every partition count the cell
    measured.  The correctness invariants ride along: served-before-
    recovery must be zero everywhere, lazy cells must account for every
    session exactly once across inline + pump recoveries, and eager
    cells must not have recovered anything lazily.
    """
    cell = report.get("benchmarks", {}).get("instant_restart")
    if cell is None:
        return ["instant-restart: report has no instant_restart benchmark cell"]
    problems: list[str] = []
    sessions = cell.get("sessions", 0)
    if sessions < min_sessions:
        problems.append(
            f"instant-restart: only {sessions} sessions — the TTFR claim "
            f"is about wide servers (need >= {min_sessions}; regenerate "
            "with --scale 1.0)"
        )
    modes = cell.get("modes", {})
    partitions = sorted(
        {run.get("partitions") for run in modes.values() if "partitions" in run}
    )
    if not partitions:
        return problems + ["instant-restart: cell has no per-mode runs"]
    for P in partitions:
        eager = cell.get(f"ttfr_eager_p{P}_ms", 0.0)
        lazy = cell.get(f"ttfr_lazy_p{P}_ms", 0.0)
        if eager <= 0.0 or lazy <= 0.0:
            problems.append(
                f"instant-restart: degenerate TTFR at P={P} "
                f"(eager {eager} ms, lazy {lazy} ms)"
            )
            continue
        if lazy > max_ttfr_ratio * eager:
            problems.append(
                f"instant-restart: P={P} lazy TTFR {lazy:,.0f} ms exceeds "
                f"{max_ttfr_ratio:g}x eager {eager:,.0f} ms "
                f"(ratio {lazy / eager:.3f})"
            )
    for key, run in sorted(modes.items()):
        if run.get("served_before_recovery", 0):
            problems.append(
                f"instant-restart: {key} served {run['served_before_recovery']} "
                "requests before the session chain was replayed"
            )
        n = run.get("sessions", 0)
        lazy_n = run.get("lazy_recoveries", 0)
        if run.get("mode") == "lazy":
            if lazy_n != n:
                problems.append(
                    f"instant-restart: {key} lazily recovered {lazy_n} of "
                    f"{n} sessions — the pump did not drain"
                )
            split = run.get("inline_recoveries", 0) + run.get("pump_recoveries", 0)
            if split != lazy_n:
                problems.append(
                    f"instant-restart: {key} inline+pump {split} != "
                    f"lazy total {lazy_n}"
                )
        elif lazy_n:
            problems.append(
                f"instant-restart: {key} is eager yet counted {lazy_n} "
                "lazy recoveries — mode plumbing leaked"
            )
    return problems


def _run_instant_restart_gate(
    path: str, max_ttfr_ratio: float, min_sessions: int
) -> int:
    with open(path) as fh:
        report = json.load(fh)
    problems = gate_instant_restart(report, max_ttfr_ratio, min_sessions)
    cell = report.get("benchmarks", {}).get("instant_restart", {})
    if cell:
        print(
            f"instant-restart gate: {cell.get('sessions')} sessions, "
            f"max ratio {max_ttfr_ratio:g} (>= {1 / max_ttfr_ratio:g}x "
            f"opening speedup), floor {min_sessions} sessions"
        )
        for key, run in sorted(cell.get("modes", {}).items()):
            print(
                f"  {key:9s} ttfr {run.get('ttfr_ms', 0.0):12,.1f} ms  "
                f"full {run.get('full_recovery_ms', 0.0):12,.1f} ms  "
                f"lazy {run.get('lazy_recoveries', 0)} "
                f"({run.get('inline_recoveries', 0)} inline, "
                f"{run.get('pump_recoveries', 0)} pump)"
            )
        print(
            f"  speedup: p1 {cell.get('ttfr_speedup_p1', 0.0):,.1f}x  "
            f"p4 {cell.get('ttfr_speedup_p4', 0.0):,.1f}x"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("instant-restart gate passed")
    return 0


#: Default ceiling on command/value log bytes per request: command
#: logging must at least halve the §5.1 workload's log volume.
LOG_VOLUME_MAX_BYTES_RATIO = 0.5
#: Below this many completed requests per cell the adaptive policy has
#: not evaluated enough windows for the spectrum to mean anything.
LOG_VOLUME_MIN_REQUESTS = 64


def gate_log_volume(
    report: dict,
    max_ratio: float,
    min_requests: int,
    baseline: Optional[dict] = None,
) -> list[str]:
    """Gate the ``log_volume`` cell of a fresh bench report.

    The headline claim — command logging cuts log bytes per request to
    at most ``max_ratio`` times value logging on the §5.1 workload — is
    a property of the seeded simulation, gated exactly at every
    (partitions, recovery-mode) combination the cell measured.  Mode
    purity rides along: value cells must show zero command machinery
    (no command records, no switches — the byte-identity contract),
    command cells must have replayed every request as a command and
    elided every SV update record.  When ``baseline`` (an earlier
    report carrying a ``log_volume`` cell) is given, the fresh value
    cells' bytes/request must stay within 10% of the committed ones —
    the "value mode within noise of the previous PR" check.
    """
    cell = report.get("benchmarks", {}).get("log_volume")
    if cell is None:
        return ["log-volume: report has no log_volume benchmark cell"]
    problems: list[str] = []
    cells = cell.get("volume_cells", {})
    if not cells:
        return ["log-volume: cell has no per-mode runs"]
    for key, run in sorted(cells.items()):
        if run.get("requests", 0) < min_requests:
            problems.append(
                f"log-volume: {key} completed only {run.get('requests', 0)} "
                f"requests (need >= {min_requests}; regenerate with a "
                "larger --scale)"
            )
        if run.get("crashes", 0) <= 0:
            problems.append(
                f"log-volume: {key} injected no crashes — the recovery "
                "axis of the spectrum was not measured"
            )
    for key, run in sorted(cells.items()):
        mode = run.get("logging_mode")
        kinds = run.get("record_kinds", {})
        if mode == "value":
            if run.get("command_requests", 0) or "CommandRecord" in kinds:
                problems.append(
                    f"log-volume: value cell {key} logged command records "
                    "— the byte-identity contract is broken"
                )
            if run.get("mode_switches", 0):
                problems.append(
                    f"log-volume: value cell {key} switched modes "
                    f"{run['mode_switches']} times"
                )
        elif mode == "command":
            if "SvUpdateRecord" in kinds:
                problems.append(
                    f"log-volume: command cell {key} still logged "
                    f"{kinds['SvUpdateRecord']['records']} SV update "
                    "records — the elision is not firing"
                )
            if run.get("replayed_commands", 0) != run.get("replayed_requests", 0):
                problems.append(
                    f"log-volume: command cell {key} replayed "
                    f"{run.get('replayed_commands', 0)} commands out of "
                    f"{run.get('replayed_requests', 0)} requests"
                )
    # The headline: command vs value bytes/request at every matched
    # (partitions, recovery mode) combination.
    for key, command in sorted(cells.items()):
        if command.get("logging_mode") != "command":
            continue
        value_key = key.replace("command", "value", 1)
        value = cells.get(value_key)
        if value is None:
            continue
        cmd_bpr = command.get("log_bytes_per_request", 0.0)
        val_bpr = value.get("log_bytes_per_request", 0.0)
        if val_bpr <= 0.0:
            problems.append(f"log-volume: degenerate value cell {value_key}")
            continue
        if cmd_bpr > max_ratio * val_bpr:
            problems.append(
                f"log-volume: {key} {cmd_bpr:,.1f} B/req exceeds "
                f"{max_ratio:g}x {value_key} {val_bpr:,.1f} B/req "
                f"(ratio {cmd_bpr / val_bpr:.3f})"
            )
    if baseline is not None:
        base_cells = (
            baseline.get("benchmarks", {})
            .get("log_volume", {})
            .get("volume_cells", {})
        )
        for key, base in sorted(base_cells.items()):
            if base.get("logging_mode") != "value":
                continue
            fresh_run = cells.get(key)
            if fresh_run is None:
                continue
            base_bpr = base.get("log_bytes_per_request", 0.0)
            bpr = fresh_run.get("log_bytes_per_request", 0.0)
            if base_bpr > 0.0 and abs(bpr - base_bpr) > 0.10 * base_bpr:
                problems.append(
                    f"log-volume: value cell {key} drifted to {bpr:,.1f} "
                    f"B/req from the committed {base_bpr:,.1f} B/req "
                    "(> 10% — value mode is no longer within noise)"
                )
    return problems


def _run_log_volume_gate(
    path: str,
    max_ratio: float,
    min_requests: int,
    baseline_path: Optional[str],
) -> int:
    with open(path) as fh:
        report = json.load(fh)
    baseline = None
    if baseline_path is not None:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
    problems = gate_log_volume(report, max_ratio, min_requests, baseline)
    cell = report.get("benchmarks", {}).get("log_volume", {})
    if cell:
        print(
            f"log-volume gate: {cell.get('requests')} requests per client, "
            f"ceiling {max_ratio:g}x value-mode bytes/request, "
            f"reduction {cell.get('volume_reduction_p1', 0.0):.2f}x at P=1"
        )
        for key, run in sorted(cell.get("volume_cells", {}).items()):
            repair = run.get("recovery_ms", 0.0) + run.get("session_replay_ms", 0.0)
            print(
                f"  {key:18s} {run.get('log_bytes_per_request', 0.0):8,.1f} B/req  "
                f"repair {repair:9,.1f} sim-ms  "
                f"switches={run.get('mode_switches', 0)}"
            )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("log-volume gate passed")
    return 0


#: Default floor on the S=4 critical-path speedup of the sharded fleet.
FLEET_MIN_SPEEDUP = 1.8
#: Below this many sessions the scaling cells are smoke runs, not
#: evidence (per-epoch work would drown in barrier accounting noise).
FLEET_MIN_SESSIONS = 500
#: The open-loop bounded-memory claim is about *long* runs.
FLEET_OPEN_LOOP_MIN_SESSIONS = 100_000


def gate_fleet_scaling(
    report: dict,
    min_speedup: float,
    min_sessions: int,
    min_open_loop_sessions: int,
) -> list[str]:
    """Gate the ``fleet`` cell of a fresh bench report (PR 9).

    Three claims.  *Scaling*: the epoch-barrier decomposition's
    critical-path speedup at S=4 — total busy seconds of the unsharded
    run over the per-epoch-max busy seconds of the 4-shard run, the
    wall factor a one-core-per-shard host achieves — must reach
    ``min_speedup``.  *Determinism*: the S=4 spec run on the jobs=4
    worker pool must fingerprint byte-identically to the jobs=1
    reference (parallelism never changes results).  *Bounded memory*:
    every cell must have finished clean (exactly-once, balanced ledger,
    isolated domains), and the open-loop cell — at least
    ``min_open_loop_sessions`` sessions — must show segment recycling
    with the final live log far below the total appended volume.
    """
    cell = report.get("benchmarks", {}).get("fleet")
    if cell is None:
        return ["fleet-scaling: report has no fleet benchmark cell"]
    problems: list[str] = []
    cells = cell.get("cells", {})
    missing = sorted({"1", "2", "4"} - set(cells))
    if missing:
        problems.append(
            f"fleet-scaling: cells missing for S in {{{', '.join(missing)}}}"
        )
        return problems
    if cell.get("sessions", 0) < min_sessions:
        problems.append(
            f"fleet-scaling: only {cell.get('sessions', 0)} sessions per "
            f"cell (need >= {min_sessions}; regenerate with --scale 1.0)"
        )
    speedup = cell.get("speedup_s4", 0.0)
    if speedup < min_speedup:
        problems.append(
            f"fleet-scaling: S=4 critical-path speedup {speedup:.2f}x is "
            f"below the {min_speedup:g}x floor (S=1 busy "
            f"{cell.get('s1_busy_s', 0.0):.2f}s vs S=4 critical "
            f"{cell.get('s4_critical_s', 0.0):.2f}s)"
        )
    if not cell.get("deterministic_s4"):
        problems.append(
            "fleet-scaling: S=4 fingerprints differ between jobs=1 and "
            "jobs=4 — sharded execution changed the simulation"
        )
    if not cell.get("clean"):
        problems.append(
            "fleet-scaling: a scaling cell finished unclean (timeout, "
            "exactly-once violation, ledger imbalance or domain leak)"
        )
    for S, run in sorted(cells.items(), key=lambda kv: int(kv[0])):
        if run.get("calls", 0) != cells["1"].get("calls", 0):
            problems.append(
                f"fleet-scaling: S={S} completed {run.get('calls', 0)} calls "
                f"vs {cells['1'].get('calls', 0)} at S=1 — the cells did "
                "not simulate the same workload"
            )
    if min_open_loop_sessions > 0:
        open_loop = cell.get("open_loop")
        if open_loop is None:
            problems.append(
                "fleet-scaling: report has no open_loop cell (regenerate "
                "with --scale 1.0)"
            )
        else:
            if open_loop.get("sessions", 0) < min_open_loop_sessions:
                problems.append(
                    f"fleet-scaling: open-loop cell completed "
                    f"{open_loop.get('sessions', 0)} sessions "
                    f"(need >= {min_open_loop_sessions})"
                )
            if not open_loop.get("clean"):
                problems.append("fleet-scaling: open-loop cell finished unclean")
            if not cell.get("open_loop_truncation_ok"):
                problems.append(
                    f"fleet-scaling: bounded-memory truncation failed on the "
                    f"open-loop cell ({open_loop.get('recycled_segments', 0)} "
                    f"segments recycled, {open_loop.get('live_bytes', 0):,} "
                    "live bytes at the end)"
                )
    return problems


def _run_fleet_scaling_gate(
    path: str,
    min_speedup: float,
    min_sessions: int,
    min_open_loop_sessions: int,
) -> int:
    with open(path) as fh:
        report = json.load(fh)
    problems = gate_fleet_scaling(
        report, min_speedup, min_sessions, min_open_loop_sessions
    )
    cell = report.get("benchmarks", {}).get("fleet", {})
    if cell:
        print(
            f"fleet-scaling gate: {cell.get('sessions')} sessions per cell, "
            f"floor {min_speedup:g}x, host_cores={cell.get('host_cores')}"
        )
        for S, run in sorted(
            cell.get("cells", {}).items(), key=lambda kv: int(kv[0])
        ):
            print(
                f"  S={S}: busy {run.get('busy_s', 0.0):7.2f}s  "
                f"critical {run.get('critical_s', 0.0):7.2f}s  "
                f"{run.get('wall_req_per_s', 0.0):10,.0f} req/wall-s  "
                f"clean={run.get('clean', False)}"
            )
        print(
            f"  speedup (critical path): s2 {cell.get('speedup_s2', 0.0):.2f}x  "
            f"s4 {cell.get('speedup_s4', 0.0):.2f}x  "
            f"deterministic_s4={cell.get('deterministic_s4', False)}"
        )
        open_loop = cell.get("open_loop")
        if open_loop:
            print(
                f"  open_loop: {open_loop.get('sessions', 0):,} sessions, "
                f"{open_loop.get('calls', 0):,} calls, "
                f"{open_loop.get('recycled_segments', 0)} segments recycled, "
                f"{open_loop.get('live_bytes', 0):,} B live at the end"
            )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("fleet-scaling gate passed")
    return 0


#: A matrix must span at least this many distinct fault families
#: (crash, correlated, partition, disaster — baselines excluded).
SCENARIO_MIN_FAMILIES = 4


def gate_scenarios(report: dict, min_families: int) -> list[str]:
    """Gate a ``repro scenarios --json`` report (PR 10).

    Three claims.  *Coverage*: the matrix must span at least
    ``min_families`` distinct fault families (baseline rows excluded)
    and every fleet invariant must have been checked in every cell.
    *Correctness*: every cell finished clean — no invariant violations,
    no timeouts, no standby-shipping divergence.  *Failover wins*: for
    every disaster cell, the warm-standby failover of each struck MSP
    must reopen faster than the paired cold restart of the same MSP at
    the same simulated instant (the standby skips ``restart_delay_ms``;
    if it doesn't win, the shipping machinery is overpaying somewhere).
    """
    problems: list[str] = []
    cells = report.get("cells", [])
    if not cells:
        return ["scenario-matrix: report has no cells"]
    families = {
        c["family"] for c in cells if not c["family"].endswith("-baseline")
    }
    if len(families) < min_families:
        problems.append(
            f"scenario-matrix: only {len(families)} fault families "
            f"({', '.join(sorted(families))}); need >= {min_families}"
        )
    failing = report.get("failing_cells", [])
    for cell_id in failing:
        cell = next(c for c in cells if c["cell"] == cell_id)
        verdicts = ", ".join(k for k, v in cell["verdicts"].items() if not v)
        problems.append(
            f"scenario-matrix: cell {cell_id} unclean (failed: {verdicts})"
        )
    for name, slot in sorted(report.get("invariants", {}).items()):
        if slot["checked"] != len(cells):
            problems.append(
                f"scenario-matrix: invariant {name!r} checked in only "
                f"{slot['checked']}/{len(cells)} cells"
            )
    checks = report.get("failover_vs_cold", [])
    if "disaster" in families and not checks:
        problems.append(
            "scenario-matrix: disaster cells present but no "
            "failover-vs-cold pairing was recorded"
        )
    for check in checks:
        if check["cold_restart_ms"] is None:
            problems.append(
                f"scenario-matrix: {check['cell']}/{check['msp']} has no "
                "cold-restart baseline sample"
            )
        elif not check["faster"]:
            problems.append(
                f"scenario-matrix: {check['cell']}/{check['msp']} failover "
                f"({check['failover_ms']:.1f} ms) did not beat the cold "
                f"restart ({check['cold_restart_ms']:.1f} ms)"
            )
    return problems


def _run_scenarios_gate(path: str, min_families: int) -> int:
    with open(path) as fh:
        report = json.load(fh)
    problems = gate_scenarios(report, min_families)
    cells = report.get("cells", [])
    families = sorted({c["family"] for c in cells})
    print(
        f"scenario-matrix gate: {len(cells)} cells over "
        f"{len(families)} families ({', '.join(families)})"
    )
    for dist in sorted(report.get("family_recovery_ms", {}).items()):
        family, stats = dist
        if stats.get("n"):
            print(
                f"  {family:20s} recovery n={stats['n']} "
                f"min {stats['min_ms']:7.1f} ms  "
                f"p50 {stats['p50_ms']:7.1f} ms  "
                f"max {stats['max_ms']:7.1f} ms"
            )
    for check in report.get("failover_vs_cold", []):
        cold = check["cold_restart_ms"]
        print(
            f"  failover {check['cell']}/{check['msp']}: "
            f"{check['failover_ms']:.1f} ms vs cold "
            + (f"{cold:.1f} ms" if cold is not None else "n/a")
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("scenario-matrix gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh", nargs="?", help="fan-out report generated on this runner"
    )
    parser.add_argument("baseline", nargs="?", help="committed BENCH_PR3.json")
    parser.add_argument(
        "--band", type=float, default=4.0,
        help="wall-time tolerance factor (default 4.0)",
    )
    parser.add_argument(
        "--log-space", metavar="PATH", default=None,
        help="gate the log_space cell of a bench report instead of "
        "comparing fan-out reports",
    )
    parser.add_argument(
        "--trace-overhead", metavar="PATH", default=None,
        help="gate the trace_overhead cell of a bench report instead of "
        "comparing fan-out reports",
    )
    parser.add_argument(
        "--max-ratio", type=float, default=5.0,
        help="--trace-overhead: max traced/plain wall-time ratio "
        "(default 5.0)",
    )
    parser.add_argument(
        "--partition-scaling", metavar="PATH", default=None,
        help="gate the log_partitions cell of a bench report instead of "
        "comparing fan-out reports",
    )
    parser.add_argument(
        "--p1-baseline", metavar="PATH", default=None,
        help="--partition-scaling: committed bench report whose "
        "append_flush cell bands the P=1 wall throughput "
        "(e.g. BENCH_PR1.json)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=PARTITION_MIN_SPEEDUP,
        help="--partition-scaling: floor on the simulated P=4/P=1 "
        f"append-throughput ratio (default {PARTITION_MIN_SPEEDUP:g})",
    )
    parser.add_argument(
        "--log-volume", metavar="PATH", default=None,
        help="gate the log_volume cell of a bench report instead of "
        "comparing fan-out reports",
    )
    parser.add_argument(
        "--max-bytes-ratio", type=float, default=LOG_VOLUME_MAX_BYTES_RATIO,
        help="--log-volume: ceiling on command/value log bytes per "
        f"request (default {LOG_VOLUME_MAX_BYTES_RATIO:g})",
    )
    parser.add_argument(
        "--min-requests", type=int, default=LOG_VOLUME_MIN_REQUESTS,
        help="--log-volume: minimum completed requests per cell "
        f"(default {LOG_VOLUME_MIN_REQUESTS})",
    )
    parser.add_argument(
        "--value-baseline", metavar="PATH", default=None,
        help="--log-volume: earlier report with a log_volume cell; fresh "
        "value-mode bytes/request must stay within 10% of it",
    )
    parser.add_argument(
        "--fleet-scaling", metavar="PATH", default=None,
        help="gate the fleet cell of a bench report instead of comparing "
        "fan-out reports",
    )
    parser.add_argument(
        "--min-fleet-speedup", type=float, default=FLEET_MIN_SPEEDUP,
        help="--fleet-scaling: floor on the S=4 critical-path speedup "
        f"(default {FLEET_MIN_SPEEDUP:g})",
    )
    parser.add_argument(
        "--min-fleet-sessions", type=int, default=FLEET_MIN_SESSIONS,
        help="--fleet-scaling: minimum sessions per scaling cell "
        f"(default {FLEET_MIN_SESSIONS})",
    )
    parser.add_argument(
        "--min-open-loop-sessions", type=int,
        default=FLEET_OPEN_LOOP_MIN_SESSIONS,
        help="--fleet-scaling: minimum sessions in the open-loop cell; "
        f"0 skips the open-loop checks (default {FLEET_OPEN_LOOP_MIN_SESSIONS})",
    )
    parser.add_argument(
        "--scenario-matrix", metavar="PATH", default=None,
        help="gate a 'repro scenarios --json' report: every cell clean, "
        "full fault-family coverage, warm-standby failover beating the "
        "paired cold restart",
    )
    parser.add_argument(
        "--min-families", type=int, default=SCENARIO_MIN_FAMILIES,
        help="--scenario-matrix: minimum distinct fault families "
        f"(default {SCENARIO_MIN_FAMILIES})",
    )
    parser.add_argument(
        "--instant-restart", metavar="PATH", default=None,
        help="gate the instant_restart cell of a bench report instead of "
        "comparing fan-out reports",
    )
    parser.add_argument(
        "--max-ttfr-ratio", type=float, default=INSTANT_RESTART_MAX_TTFR_RATIO,
        help="--instant-restart: ceiling on the lazy/eager TTFR ratio "
        f"(default {INSTANT_RESTART_MAX_TTFR_RATIO:g})",
    )
    parser.add_argument(
        "--min-sessions", type=int, default=INSTANT_RESTART_MIN_SESSIONS,
        help="--instant-restart: minimum live sessions for the TTFR "
        f"claim to count (default {INSTANT_RESTART_MIN_SESSIONS})",
    )
    args = parser.parse_args(argv)
    if args.scenario_matrix is not None:
        return _run_scenarios_gate(args.scenario_matrix, args.min_families)
    if args.log_volume is not None:
        return _run_log_volume_gate(
            args.log_volume,
            args.max_bytes_ratio,
            args.min_requests,
            args.value_baseline,
        )
    if args.instant_restart is not None:
        return _run_instant_restart_gate(
            args.instant_restart, args.max_ttfr_ratio, args.min_sessions
        )
    if args.fleet_scaling is not None:
        return _run_fleet_scaling_gate(
            args.fleet_scaling,
            args.min_fleet_speedup,
            args.min_fleet_sessions,
            args.min_open_loop_sessions,
        )
    if args.log_space is not None:
        return _run_log_space_gate(args.log_space)
    if args.trace_overhead is not None:
        return _run_trace_overhead_gate(args.trace_overhead, args.max_ratio)
    if args.partition_scaling is not None:
        return _run_partition_scaling_gate(
            args.partition_scaling, args.p1_baseline, args.band, args.min_speedup
        )
    if args.fresh is None or args.baseline is None:
        parser.error("fresh and baseline reports are required without --log-space")
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    problems = compare(fresh, baseline, args.band)
    fresh_meta = fresh.get("meta", {})
    print(
        f"perf gate: fresh run on {fresh_meta.get('cpu_count')} cores, "
        f"jobs={fresh_meta.get('jobs')}, band {args.band:g}x"
    )
    for name, section in sorted(fresh.get("sections", {}).items()):
        print(
            f"  {name:18s} seq {section['sequential_s']:7.2f}s  "
            f"par {section['parallel_s']:7.2f}s  {section['speedup']:.2f}x"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
