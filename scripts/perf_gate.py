#!/usr/bin/env python
"""CI perf-regression gate over the fan-out report (``BENCH_PR3.json``).

Compares a freshly generated report against the committed baseline:

- **determinism is gated exactly**: the fresh run's ``all_identical``
  must be true (parallel verdicts equal sequential ones on the runner),
  and each section's deterministic verdict — fuzz report dicts,
  experiment rows/claims, the benchmark cell list — must equal the
  committed baseline's verdict, since both come from seeded simulations
  that do not depend on the machine;
- **wall time is gated with a tolerance band**: per section, the fresh
  sequential time may not exceed ``band`` times the committed one
  (runners are slower than dev boxes, but a 4x blow-up is a regression,
  not noise), and the parallel time may not exceed ``band`` times the
  sequential time plus a small absolute grace (pool start-up is a fixed
  cost that dominates sub-second sections; beyond the grace it is a
  pool overhead regression even on one core).

Usage: ``python scripts/perf_gate.py FRESH BASELINE [--band 4.0]``
"""

from __future__ import annotations

import argparse
import json
import sys


#: Absolute allowance for fixed pool start-up (spawned interpreters
#: importing the tree), charged once per section regardless of its size.
STARTUP_GRACE_S = 3.0


def compare(fresh: dict, baseline: dict, band: float) -> list[str]:
    problems: list[str] = []
    if not fresh.get("all_identical"):
        problems.append(
            "fresh run is not deterministic: parallel verdicts diverged "
            "from sequential ones (all_identical is false)"
        )
    fresh_sections = fresh.get("sections", {})
    base_sections = baseline.get("sections", {})
    missing = sorted(set(base_sections) - set(fresh_sections))
    if missing:
        problems.append(f"fresh report lacks sections: {', '.join(missing)}")
    for name, base in sorted(base_sections.items()):
        section = fresh_sections.get(name)
        if section is None:
            continue
        if section["verdict"] != base["verdict"]:
            problems.append(
                f"{name}: verdict differs from committed baseline — the "
                "seeded simulation changed behaviour (regenerate "
                "BENCH_PR3.json if intentional)"
            )
        if section["sequential_s"] > band * base["sequential_s"]:
            problems.append(
                f"{name}: sequential {section['sequential_s']:.2f}s exceeds "
                f"{band:g}x committed {base['sequential_s']:.2f}s"
            )
        if section["parallel_s"] > band * section["sequential_s"] + STARTUP_GRACE_S:
            problems.append(
                f"{name}: parallel {section['parallel_s']:.2f}s exceeds "
                f"{band:g}x its own sequential {section['sequential_s']:.2f}s "
                "(pool overhead regression)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="fan-out report generated on this runner")
    parser.add_argument("baseline", help="committed BENCH_PR3.json")
    parser.add_argument(
        "--band", type=float, default=4.0,
        help="wall-time tolerance factor (default 4.0)",
    )
    args = parser.parse_args(argv)
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    problems = compare(fresh, baseline, args.band)
    fresh_meta = fresh.get("meta", {})
    print(
        f"perf gate: fresh run on {fresh_meta.get('cpu_count')} cores, "
        f"jobs={fresh_meta.get('jobs')}, band {args.band:g}x"
    )
    for name, section in sorted(fresh.get("sections", {}).items()):
        print(
            f"  {name:18s} seq {section['sequential_s']:7.2f}s  "
            f"par {section['parallel_s']:7.2f}s  {section['speedup']:.2f}x"
        )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
