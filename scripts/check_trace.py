#!/usr/bin/env python
"""CI trace-smoke checker: validate ``repro trace`` / fuzz trace dumps.

Usage: ``python scripts/check_trace.py CHROME.json [TRACE.jsonl]``

Checks that the Chrome export is a loadable ``trace_event`` document
(object form, ``traceEvents`` list, every event carrying the fields
chrome://tracing / Perfetto require, durations non-negative) and — when
a JSONL path is given — that the line export carries the
``repro-trace-v1`` schema header and well-formed event lines.  Exits 1
listing every problem found, so CI failures name the malformed field
instead of a bare diff.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.trace import validate_chrome_trace, validate_jsonl_lines  # noqa: E402


def main(argv: list[str]) -> int:
    if not 1 <= len(argv) <= 2:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    problems: list[str] = []

    chrome_path = argv[0]
    try:
        with open(chrome_path) as fh:
            chrome = json.load(fh)
    except (OSError, ValueError) as exc:
        problems.append(f"{chrome_path}: unreadable ({exc})")
        chrome = None
    if chrome is not None:
        problems += [f"{chrome_path}: {p}" for p in validate_chrome_trace(chrome)]
        events = chrome.get("traceEvents", []) if isinstance(chrome, dict) else []
        if not problems:
            print(f"{chrome_path}: {len(events)} trace events, loadable")

    if len(argv) == 2:
        jsonl_path = argv[1]
        try:
            with open(jsonl_path) as fh:
                lines = fh.read().splitlines()
        except OSError as exc:
            problems.append(f"{jsonl_path}: unreadable ({exc})")
        else:
            problems += [f"{jsonl_path}: {p}" for p in validate_jsonl_lines(lines)]
            if not problems:
                print(f"{jsonl_path}: {max(0, len(lines) - 1)} event lines, valid")

    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("trace check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
