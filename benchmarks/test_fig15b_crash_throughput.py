"""Fig. 15(b): throughput versus forced crash rate.

The §5.4 crash scenario: MSP2 kills itself right after MSP1 receives its
reply, losing its buffered log records, so SE1 at MSP1 becomes an
orphan under locally optimistic logging.  Shape claims: LoOptimistic
stays above Pessimistic at every crash rate; both decline as crashes
become more frequent; LoOptimistic declines more (it pays orphan
recovery on top of MSP2's crash recovery).  Exactly-once execution is
verified after every run.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import fig15b_crash_throughput


def test_fig15b_crash_throughput(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig15b_crash_throughput,
        kwargs={"scale": 0.08 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
