"""Fig. 14 (chart): response time versus calls to ServiceMethod2.

Shape claims: all configurations grow with m; the LoOptimistic-
Pessimistic gap widens (pessimistic pays two more flushes per call,
LoOptimistic still one distributed flush total); StateServer grows
faster than LoOptimistic and is close to it at m=4; the LoOptimistic-
NoLog gap increases slowly.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import fig14_calls_chart


def test_fig14_calls_chart(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig14_calls_chart,
        kwargs={"scale": 0.04 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
