"""§5.2 analysis: flush counts and sector accounting.

Paper: pessimistic logging performs three sequential flushes per end
client request writing 2+3+2 sectors; locally optimistic performs one
distributed flush (two in parallel) writing 3 and 3 sectors — one less
sector per request, since every flush wastes half a sector on average.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import analysis_flush_accounting


def test_analysis_flush_accounting(benchmark, bench_scale):
    result = benchmark.pedantic(
        analysis_flush_accounting,
        kwargs={"scale": 0.25 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
