"""Ablations of the paper's design choices (DESIGN.md §5).

The paper argues for parallel session recovery (Fig. 12) and for
per-session dependency vectors (§3.2) qualitatively; these benchmarks
measure both trade-offs:

- parallel replay overlaps one session's log reads with another's CPU
  replay, shortening the post-crash outage;
- a single MSP-wide DV turns one remote crash into a rollback of every
  session — including purely local ones that never depended on the
  crashed MSP.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import (
    ablation_dv_granularity,
    ablation_parallel_recovery,
    ablation_value_vs_access_order,
)


def test_ablation_parallel_recovery(benchmark, bench_scale):
    result = benchmark.pedantic(
        ablation_parallel_recovery,
        kwargs={"scale": 0.3 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)


def test_ablation_dv_granularity(benchmark, bench_scale):
    result = benchmark.pedantic(
        ablation_dv_granularity,
        kwargs={"scale": 1.0},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)


def test_ablation_value_vs_access_order(benchmark, bench_scale):
    """Value logging (the paper's choice) vs access-order logging (the
    rejected [16] alternative): reader sessions recover independently
    under value logging but are held hostage to the writer's replay
    under access-order logging."""
    result = benchmark.pedantic(
        ablation_value_vs_access_order,
        kwargs={"scale": 1.0},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
