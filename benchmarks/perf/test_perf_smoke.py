"""Smoke tests for the perf harness: every benchmark completes and the
report has the documented machine-readable shape (CI runs these; real
numbers come from ``python -m repro bench``)."""

import json

from repro.perf import BENCHMARKS, run_benchmarks, write_report
from repro.perf.bench import attach_baseline, format_report

SMOKE_SCALE = 0.002


def test_every_benchmark_completes_in_smoke_mode():
    report = run_benchmarks(scale=SMOKE_SCALE, repeat=1)
    assert set(report["benchmarks"]) == set(BENCHMARKS)
    for name, run in report["benchmarks"].items():
        assert run["seconds"] > 0, name


def test_report_is_machine_readable(tmp_path):
    report = run_benchmarks(scale=SMOKE_SCALE, repeat=1, only=["codec_encode"])
    out = tmp_path / "bench.json"
    write_report(report, str(out))
    parsed = json.loads(out.read_text())
    assert parsed["meta"]["scale"] == SMOKE_SCALE
    assert parsed["benchmarks"]["codec_encode"]["records_per_s"] > 0


def test_baseline_speedup_computation():
    report = run_benchmarks(scale=SMOKE_SCALE, repeat=1, only=["codec_encode"])
    base = {"benchmarks": {"codec_encode": {"records_per_s": 1.0}}}
    attach_baseline(report, base)
    assert report["speedup"]["codec_encode"] == report["benchmarks"]["codec_encode"][
        "records_per_s"
    ]
    assert "codec_encode" in format_report(report)


def test_cli_bench_smoke(tmp_path, capsys):
    from repro.__main__ import main

    out = tmp_path / "BENCH_SMOKE.json"
    assert main(["bench", "--smoke", "--out", str(out)]) == 0
    assert json.loads(out.read_text())["benchmarks"]
    assert "codec_encode" in capsys.readouterr().out
