"""Wall-clock microbenchmarks for the log pipeline (see repro.perf).

Unlike the sibling ``benchmarks/test_fig*`` suites, which validate the
paper's *simulated* measurements, these measure the reproduction's own
hot-path speed in real seconds.  Run the full suite with::

    PYTHONPATH=src python -m repro bench --out BENCH_PR1.json

CI runs the smoke mode only (1 tiny iteration, completion asserted).
"""
