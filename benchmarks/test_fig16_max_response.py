"""Fig. 16 (table): maximum response times.

Shape claims: crashes raise the maximum response time substantially for
both logging methods; LoOptimistic's crash maximum exceeds
Pessimistic's (the extra SE1 orphan recovery at MSP1, §5.4); average
response stays low even under crashes.  The paper's absolute maxima
include Windows scheduling noise (their own NoLog maximum was 217 ms on
an 8.7 ms mean); we compare shapes, not absolutes.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import fig16_max_response_table


def test_fig16_max_response(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig16_max_response_table,
        kwargs={"scale": 0.08 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
