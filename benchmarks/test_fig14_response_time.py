"""Fig. 14 (table): average response time of the five configurations.

Paper values (ms): LoOptimistic 24.746, Pessimistic 35.227, NoLog 8.697,
Psession 48.617, StateServer 16.658.  Shape claims: the full ordering
NoLog < StateServer < LoOptimistic < Pessimistic < Psession, and the
~30% response-time reduction of locally optimistic over pessimistic
logging.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import fig14_response_table


def test_fig14_response_table(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig14_response_table,
        kwargs={"scale": 0.05 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
