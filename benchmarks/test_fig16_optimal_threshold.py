"""Fig. 16 (chart): checkpoint threshold versus throughput under crashes.

Shape claims: past the optimum, larger thresholds hurt throughput
because crash recovery replays more logged requests; the best threshold
is an interior point, not the largest tested.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import fig16_optimal_threshold


def test_fig16_optimal_threshold(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig16_optimal_threshold,
        kwargs={"scale": 0.15 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
