"""Fig. 17: multiple clients and batch flushing.

Shape claims: batch flushing raises pessimistic logging's peak
throughput substantially (paper: ~30%); with batching, LoOptimistic
still beats Pessimistic by >=30%; response time grows with clients and
batching helps response only above ~3 clients; without batching,
throughput saturates as the log disk becomes the bottleneck.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import fig17_multiclient


def test_fig17_multiclient(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig17_multiclient,
        kwargs={"scale": 0.06 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
