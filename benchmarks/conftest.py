"""Shared configuration for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artifacts
(§5 tables and figures) at a reduced scale, checks the paper's *shape*
claims against the measured rows, and prints the full table.

Scale can be raised for a paper-fidelity run::

    REPRO_BENCH_SCALE=1.0 pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Global multiplier on each benchmark's default scale."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def report(result) -> None:
    """Print a rendered experiment table (visible with ``-s`` or on failure)."""
    from repro.harness import render_result

    print()
    print(render_result(result))


def assert_claims(result) -> None:
    failed = [claim for claim, ok in result.claims if not ok]
    assert not failed, f"{result.experiment}: shape claims failed: {failed}"
