"""Fig. 15(a): throughput versus session checkpointing threshold.

Shape claims: even a 64 KB threshold costs only a small amount of
throughput, and a 4 MB threshold is indistinguishable from disabling
checkpointing.
"""

from benchmarks.conftest import assert_claims, report
from repro.harness import fig15a_checkpoint_overhead


def test_fig15a_checkpoint_overhead(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig15a_checkpoint_overhead,
        kwargs={"scale": 0.2 * bench_scale},
        rounds=1,
        iterations=1,
    )
    report(result)
    assert_claims(result)
