"""Crash-recovery integration: single MSP crashes, exactly-once checks."""

import pytest

from repro.core import LoggingMode, RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def counter_method(ctx, argument):
    yield from ctx.compute(0.2)
    raw = yield from ctx.get_session_var("count")
    count = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("count", count.to_bytes(4, "big"))
    shared_raw = yield from ctx.read_shared("total")
    total = int.from_bytes(shared_raw, "big") + 1
    yield from ctx.write_shared("total", total.to_bytes(8, "big"))
    return count.to_bytes(4, "big")


def build_world(seed=0, config=None):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    domains = ServiceDomainConfig()
    config = config or RecoveryConfig()
    msp = MiddlewareServer(sim, net, "msp1", domains, config=config, rng=rng)
    msp.register_service("counter", counter_method)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    client = EndClient(sim, net, "client1")
    return sim, net, msp, client


def drive_with_crashes(sim, msp, client, n_calls, crash_after_calls):
    """Run n_calls; crash+restart the MSP after each count in the set."""
    msp.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for i in range(n_calls):
            result = yield from session.call("counter", b"")
            results.append(int.from_bytes(result.payload, "big"))
            if (i + 1) in crash_after_calls:
                msp.crash()
                msp.restart_process()

    sim.spawn(driver())
    sim.run(until=600_000)
    return results


def test_crash_and_restart_recovers_session_state():
    sim, _net, msp, client = build_world()
    results = drive_with_crashes(sim, msp, client, 10, crash_after_calls={5})
    # Exactly-once: the session counter never repeats or skips.
    assert results == list(range(1, 11))
    assert msp.stats.crashes == 1
    assert msp.stats.recoveries == 1


def test_crash_recovers_shared_state():
    sim, _net, msp, client = build_world()
    results = drive_with_crashes(sim, msp, client, 10, crash_after_calls={3, 7})
    assert results == list(range(1, 11))
    total = int.from_bytes(msp.shared["total"].value, "big")
    assert total == 10
    assert msp.epoch == 2


def test_crash_mid_request_is_masked():
    """Crash while a request is in flight: the client's resend gets a
    correct (exactly-once) answer after recovery."""
    sim, _net, msp, client = build_world()
    msp.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for _ in range(5):
            result = yield from session.call("counter", b"")
            results.append(int.from_bytes(result.payload, "big"))

    def crasher():
        # Crash while request ~2 is being processed (response ~7 ms).
        yield 18.0
        msp.crash()
        msp.restart_process()

    sim.spawn(driver())
    sim.spawn(crasher())
    sim.run(until=600_000)
    assert results == [1, 2, 3, 4, 5]
    total = int.from_bytes(msp.shared["total"].value, "big")
    assert total == 5


def test_replay_count_matches_unflushed_work():
    """After a crash, exactly the logged requests are replayed."""
    sim, _net, msp, client = build_world()
    results = drive_with_crashes(sim, msp, client, 20, crash_after_calls={10})
    assert results == list(range(1, 21))
    # The session had logged requests to replay (some may be beyond the
    # durable boundary and correctly lost).
    assert msp.stats.replayed_requests >= 1


def test_multiple_crashes_back_to_back():
    sim, _net, msp, client = build_world()
    results = drive_with_crashes(sim, msp, client, 12, crash_after_calls={2, 4, 6, 8})
    assert results == list(range(1, 13))
    assert msp.epoch == 4
    total = int.from_bytes(msp.shared["total"].value, "big")
    assert total == 12


def test_session_checkpoint_bounds_replay():
    """With a tiny checkpoint threshold, recovery replays few requests."""
    config = RecoveryConfig(session_ckpt_threshold_bytes=2048)
    sim, _net, msp, client = build_world(config=config)
    results = drive_with_crashes(sim, msp, client, 30, crash_after_calls={25})
    assert results == list(range(1, 31))
    assert msp.stats.session_checkpoints > 0
    # Replay is bounded by the records since the last checkpoint.
    assert msp.stats.replayed_requests <= 10


def test_no_checkpointing_configuration():
    config = RecoveryConfig(session_ckpt_threshold_bytes=None)
    sim, _net, msp, client = build_world(config=config)
    results = drive_with_crashes(sim, msp, client, 10, crash_after_calls={6})
    assert results == list(range(1, 11))
    assert msp.stats.session_checkpoints == 0


def test_recovery_reads_log_from_disk():
    sim, _net, msp, client = build_world()
    drive_with_crashes(sim, msp, client, 10, crash_after_calls={5})
    assert msp.disk.stats.reads > 0
    assert msp.stats.recovery_scan_records > 0


def test_anchor_advances_with_msp_checkpoints():
    config = RecoveryConfig(msp_ckpt_interval_ms=100.0)
    sim, _net, msp, client = build_world(config=config)
    drive_with_crashes(sim, msp, client, 20, crash_after_calls=set())
    assert msp.stats.msp_checkpoints > 1
    assert msp.log.read_anchor() is not None


def test_new_session_after_crash_works():
    sim, _net, msp, client = build_world()
    msp.start_process()
    s1 = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        r = yield from s1.call("counter", b"")
        results.append(("s1", int.from_bytes(r.payload, "big")))
        msp.crash()
        msp.restart_process()
        s2 = client.open_session("msp1")
        r = yield from s2.call("counter", b"")
        results.append(("s2", int.from_bytes(r.payload, "big")))
        r = yield from s1.call("counter", b"")
        results.append(("s1", int.from_bytes(r.payload, "big")))

    sim.spawn(driver())
    sim.run(until=600_000)
    assert ("s2", 1) in results
    assert results[-1] == ("s1", 2)
