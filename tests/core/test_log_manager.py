"""Tests for the shared physical log: appends, flushes, batching, anchor."""

import random

import pytest

from repro.core.log_manager import LogManager, LogWindowReader
from repro.core.records import AnnouncementRecord, EosRecord
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, StableStore


def make_log(batch_ms=0.0, seed=0):
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(seed))
    log = LogManager(sim, store, disk, batch_flush_timeout_ms=batch_ms)
    group = ProcessGroup("msp")
    log.start(group=group)
    return sim, log, group


def rec(i):
    return AnnouncementRecord(f"msp{i}", epoch=0, recovered_lsn=i)


def test_append_assigns_increasing_lsns():
    _sim, log, _ = make_log()
    lsn1, size1 = log.append(rec(1))
    lsn2, _ = log.append(rec(2))
    assert lsn1 == 0
    assert lsn2 == size1
    assert log.stats.appended_records == 2


def test_flush_makes_records_durable():
    sim, log, _ = make_log()
    lsn, _ = log.append(rec(1))

    def flusher():
        assert not log.is_durable(lsn)
        yield from log.flush(lsn)
        assert log.is_durable(lsn)

    sim.run_process(flusher())


def test_flush_already_durable_is_free():
    sim, log, _ = make_log()
    lsn, _ = log.append(rec(1))

    def run():
        yield from log.flush(lsn)
        before = log.disk.stats.writes
        yield from log.flush(lsn)
        assert log.disk.stats.writes == before

    sim.run_process(run())


def test_unbatched_flushes_write_individually():
    """Without batching every flush request issues its own physical
    write unless an earlier write already covered its target — the
    contention that batch flushing relieves (paper §5.5)."""
    sim, log, _ = make_log()
    lsn1, _ = log.append(rec(1))
    lsn2, _ = log.append(rec(2))

    def f1():
        yield from log.flush(lsn1)

    def f2():
        yield from log.flush(lsn2)

    sim.spawn(f1())
    sim.spawn(f2())
    sim.run()
    assert log.stats.physical_flushes == 2
    assert log.is_durable(lsn2)


def test_unbatched_flush_skipped_when_covered():
    """A queued flush whose target an earlier write already covered
    does not write again (the standard flushed-LSN check)."""
    sim, log, _ = make_log()
    lsn1, _ = log.append(rec(1))
    lsn2, _ = log.append(rec(2))

    def f_all():
        yield from log.flush(lsn2)  # covers lsn1 too

    def f_first():
        yield from log.flush(lsn1)

    sim.spawn(f_all())
    sim.spawn(f_first())
    sim.run()
    assert log.stats.physical_flushes == 1
    assert log.is_durable(lsn2)


def test_sequential_flushes_write_separately():
    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)

    sim.run_process(run())
    assert log.stats.physical_flushes == 2


def test_batch_flushing_single_write_for_window():
    """With an 8 ms window, flush requests arriving close together are
    served by one physical write (paper §5.5)."""
    sim, log, _ = make_log(batch_ms=8.0)
    done_times = []

    def client(i, delay):
        yield delay
        lsn, _ = log.append(rec(i))
        yield from log.flush(lsn)
        done_times.append(sim.now)

    for i, delay in enumerate([0.0, 2.0, 5.0]):
        sim.spawn(client(i, delay))
    sim.run()
    assert log.stats.physical_flushes == 1
    assert len(done_times) == 3
    # Nobody finished before the batching window closed.
    assert min(done_times) >= 8.0


def test_batch_flushing_vs_not_fewer_writes():
    def run(batch_ms):
        sim, log, _ = make_log(batch_ms=batch_ms, seed=3)

        def client(i):
            yield i * 1.0
            lsn, _ = log.append(rec(i))
            yield from log.flush(lsn)

        for i in range(6):
            sim.spawn(client(i))
        sim.run()
        return log.stats.physical_flushes

    assert run(8.0) < run(0.0)


def test_sector_accounting_and_waste():
    sim, log, _ = make_log()

    def run():
        lsn, size = log.append(rec(1))
        yield from log.flush(lsn)
        return size

    size = sim.run_process(run())
    assert log.stats.flushed_sectors == 1
    assert log.stats.flushed_bytes == size
    assert log.stats.wasted_bytes == 512 - size


def test_each_flush_starts_fresh_sector():
    """Two flushes of small records write one sector each (the paper's
    half-sector-wasted-per-flush behaviour)."""
    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)

    sim.run_process(run())
    assert log.stats.flushed_sectors == 2
    assert log.stats.wasted_bytes > 0


def test_anchor_roundtrip():
    sim, log, _ = make_log()

    def run():
        assert log.read_anchor() is None
        yield from log.write_anchor(12345)
        assert log.read_anchor() == 12345

    sim.run_process(run())


def test_record_at_parses_back():
    _sim, log, _ = make_log()
    lsn1, _ = log.append(rec(1))
    lsn2, _ = log.append(rec(2))
    record, next_lsn = log.record_at(lsn1)
    assert record == rec(1)
    assert next_lsn == lsn2


def test_scan_durable_returns_only_flushed():
    sim, log, _ = make_log()

    def run():
        log.append(rec(1))
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)
        log.append(rec(3))  # not flushed: invisible to the scan
        records = yield from log.scan_durable(0)
        return records

    records = sim.run_process(run())
    assert [r for _, r in records] == [rec(1), rec(2)]


def test_scan_durable_charges_chunked_reads():
    sim, log, _ = make_log()

    def run():
        for i in range(3000):  # ~ tens of KB
            log.append(EosRecord(f"s{i}", orphan_lsn=i))
        yield from log.flush()
        start = sim.now
        yield from log.scan_durable(0)
        return sim.now - start

    elapsed = sim.run_process(run())
    assert elapsed > 0
    assert log.stats.read_chunks >= 1


def test_window_reader_fetches_with_chunked_io():
    sim, log, _ = make_log()

    def run():
        lsns = []
        for i in range(100):
            lsn, _ = log.append(rec(i))
            lsns.append(lsn)
        yield from log.flush()
        reader = LogWindowReader(log)
        reads_before = log.disk.stats.reads
        first = yield from reader.fetch(lsns[0])
        mid = yield from reader.fetch(lsns[50])
        return first, mid, log.disk.stats.reads - reads_before

    first, mid, reads = sim.run_process(run())
    assert first == rec(0)
    assert mid == rec(50)
    # All 100 tiny records fit one 64 KB window: a single chunk read.
    assert reads == 1


def test_window_reader_rejects_beyond_durable():
    sim, log, _ = make_log()
    lsn, _ = log.append(rec(1))
    reader = LogWindowReader(log)

    def run():
        with pytest.raises(ValueError):
            yield from reader.fetch(lsn)

    sim.run_process(run())


def test_crash_loses_unflushed_records():
    sim, log, group = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        log.append(rec(2))

    sim.run_process(run())
    log.store.crash()
    records_after = []
    offset = 0
    while offset < log.store.end:
        record, offset = log.record_at(offset)
        records_after.append(record)
    assert records_after == [rec(1)]
