"""Tests for the shared physical log: appends, flushes, batching, anchor."""

import random

import pytest

from repro.core.log_manager import LogManager, LogWindowReader
from repro.core.records import AnnouncementRecord, EosRecord
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, StableStore
from repro.wire import frame


def make_log(batch_ms=0.0, seed=0):
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(seed))
    log = LogManager(sim, store, disk, batch_flush_timeout_ms=batch_ms)
    group = ProcessGroup("msp")
    log.start(group=group)
    return sim, log, group


def rec(i):
    return AnnouncementRecord(f"msp{i}", epoch=0, recovered_lsn=i)


def test_append_assigns_increasing_lsns():
    _sim, log, _ = make_log()
    lsn1, size1 = log.append(rec(1))
    lsn2, _ = log.append(rec(2))
    assert lsn1 == 0
    assert lsn2 == size1
    assert log.stats.appended_records == 2


def test_flush_makes_records_durable():
    sim, log, _ = make_log()
    lsn, _ = log.append(rec(1))

    def flusher():
        assert not log.is_durable(lsn)
        yield from log.flush(lsn)
        assert log.is_durable(lsn)

    sim.run_process(flusher())


def test_flush_already_durable_is_free():
    sim, log, _ = make_log()
    lsn, _ = log.append(rec(1))

    def run():
        yield from log.flush(lsn)
        before = log.disk.stats.writes
        yield from log.flush(lsn)
        assert log.disk.stats.writes == before

    sim.run_process(run())


def test_unbatched_burst_coalesces_to_single_write():
    """Even without batch flushing, a burst of concurrent flush
    requests queued together is drained and served by one physical
    write (group commit at the flusher, no timeout window)."""
    sim, log, _ = make_log()
    lsn1, _ = log.append(rec(1))
    lsn2, _ = log.append(rec(2))

    def f1():
        yield from log.flush(lsn1)

    def f2():
        yield from log.flush(lsn2)

    sim.spawn(f1())
    sim.spawn(f2())
    sim.run()
    assert log.stats.physical_flushes == 1
    assert log.is_durable(lsn2)


def test_unbatched_burst_of_n_fewer_than_n_writes():
    """N concurrent unbatched flush requests trigger < N physical
    writes; requests arriving mid-write are absorbed by the next one."""
    n = 12
    sim, log, _ = make_log()

    def client(i):
        # Stagger arrivals so some requests land while a write is in
        # flight — they must coalesce into the following write.
        yield i * 0.5
        lsn, _ = log.append(rec(i))
        yield from log.flush(lsn)

    for i in range(n):
        sim.spawn(client(i))
    sim.run()
    assert log.stats.flush_requests == n
    assert log.stats.physical_flushes < n
    assert log.store.durable_end == log.store.end


def test_unbatched_flush_skipped_when_covered():
    """A queued flush whose target an earlier write already covered
    does not write again (the standard flushed-LSN check)."""
    sim, log, _ = make_log()
    lsn1, _ = log.append(rec(1))
    lsn2, _ = log.append(rec(2))

    def f_all():
        yield from log.flush(lsn2)  # covers lsn1 too

    def f_first():
        yield from log.flush(lsn1)

    sim.spawn(f_all())
    sim.spawn(f_first())
    sim.run()
    assert log.stats.physical_flushes == 1
    assert log.is_durable(lsn2)


def test_sequential_flushes_write_separately():
    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)

    sim.run_process(run())
    assert log.stats.physical_flushes == 2


def test_batch_flushing_single_write_for_window():
    """With an 8 ms window, flush requests arriving close together are
    served by one physical write (paper §5.5)."""
    sim, log, _ = make_log(batch_ms=8.0)
    done_times = []

    def client(i, delay):
        yield delay
        lsn, _ = log.append(rec(i))
        yield from log.flush(lsn)
        done_times.append(sim.now)

    for i, delay in enumerate([0.0, 2.0, 5.0]):
        sim.spawn(client(i, delay))
    sim.run()
    assert log.stats.physical_flushes == 1
    assert len(done_times) == 3
    # Nobody finished before the batching window closed.
    assert min(done_times) >= 8.0


def test_batch_flushing_vs_not_fewer_writes():
    def run(batch_ms):
        sim, log, _ = make_log(batch_ms=batch_ms, seed=3)

        def client(i):
            yield i * 1.0
            lsn, _ = log.append(rec(i))
            yield from log.flush(lsn)

        for i in range(6):
            sim.spawn(client(i))
        sim.run()
        return log.stats.physical_flushes

    assert run(8.0) < run(0.0)


def test_sector_accounting_and_waste():
    sim, log, _ = make_log()

    def run():
        lsn, size = log.append(rec(1))
        yield from log.flush(lsn)
        return size

    size = sim.run_process(run())
    assert log.stats.flushed_sectors == 1
    assert log.stats.flushed_bytes == size
    assert log.stats.wasted_bytes == 512 - size


def test_each_flush_starts_fresh_sector():
    """Two flushes of small records write one sector each (the paper's
    half-sector-wasted-per-flush behaviour)."""
    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)

    sim.run_process(run())
    assert log.stats.flushed_sectors == 2
    assert log.stats.wasted_bytes > 0


def test_anchor_roundtrip():
    sim, log, _ = make_log()

    def run():
        assert log.read_anchor() is None
        yield from log.write_anchor(12345)
        assert log.read_anchor() == 12345

    sim.run_process(run())


def test_record_at_parses_back():
    _sim, log, _ = make_log()
    lsn1, _ = log.append(rec(1))
    lsn2, _ = log.append(rec(2))
    record, next_lsn = log.record_at(lsn1)
    assert record == rec(1)
    assert next_lsn == lsn2


def test_scan_durable_returns_only_flushed():
    sim, log, _ = make_log()

    def run():
        log.append(rec(1))
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)
        log.append(rec(3))  # not flushed: invisible to the scan
        records = yield from log.scan_durable(0)
        return records

    records = sim.run_process(run())
    assert [r for _, r in records] == [rec(1), rec(2)]


def test_scan_durable_charges_chunked_reads():
    sim, log, _ = make_log()

    def run():
        for i in range(3000):  # ~ tens of KB
            log.append(EosRecord(f"s{i}", orphan_lsn=i))
        yield from log.flush()
        start = sim.now
        yield from log.scan_durable(0)
        return sim.now - start

    elapsed = sim.run_process(run())
    assert elapsed > 0
    assert log.stats.read_chunks >= 1


def test_window_reader_fetches_with_chunked_io():
    sim, log, _ = make_log()

    def run():
        lsns = []
        for i in range(100):
            lsn, _ = log.append(rec(i))
            lsns.append(lsn)
        yield from log.flush()
        reader = LogWindowReader(log)
        reads_before = log.disk.stats.reads
        first = yield from reader.fetch(lsns[0])
        mid = yield from reader.fetch(lsns[50])
        return first, mid, log.disk.stats.reads - reads_before

    first, mid, reads = sim.run_process(run())
    assert first == rec(0)
    assert mid == rec(50)
    # All 100 tiny records fit one 64 KB window: a single chunk read.
    assert reads == 1


def test_window_reader_rejects_beyond_durable():
    sim, log, _ = make_log()
    lsn, _ = log.append(rec(1))
    reader = LogWindowReader(log)

    def run():
        with pytest.raises(ValueError):
            yield from reader.fetch(lsn)

    sim.run_process(run())


def test_crash_loses_unflushed_records():
    sim, log, group = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        log.append(rec(2))

    sim.run_process(run())
    log.store.crash()
    records_after = []
    offset = 0
    while offset < log.store.end:
        record, offset = log.record_at(offset)
        records_after.append(record)
    assert records_after == [rec(1)]


# -- torn / corrupt frames (ARIES-style end-of-log, §4.3) -------------------


def test_scan_stops_cleanly_at_torn_frame():
    """A flush that persists only part of the last frame (e.g. a sector
    boundary mid-frame) must make the analysis scan stop cleanly at the
    last complete record, not raise."""
    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        log.append(rec(2))
        # Persist a partial frame: advance durability into the middle of
        # the second record, then crash away the rest.
        log.store.mark_durable(log.store.end - 3)
        log.store.crash()
        records = yield from log.scan_durable(0)
        return records

    records = sim.run_process(run())
    assert [r for _, r in records] == [rec(1)]


def test_scan_raises_on_bit_flipped_durable_frame():
    """Corruption inside the durable prefix is detected, not silently
    treated as end-of-log."""
    from repro.wire import CorruptRecordError

    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)
        # Flip a payload bit of the *first* record, well inside the
        # durable prefix.
        log.store._segments[0][12] ^= 0x40
        yield from log.scan_durable(0)

    with pytest.raises(CorruptRecordError):
        sim.run_process(run())


def test_unframe_corrupt_frame_raises_within_log():
    """unframe itself flags the bit-flipped frame (satellite check)."""
    from repro.wire import CorruptRecordError, frame, unframe

    sim, log, _ = make_log()
    lsn, _ = log.append(rec(1))
    blob = bytearray(log.store.read(0, log.store.end))
    blob[-1] ^= 0xFF
    with pytest.raises(CorruptRecordError):
        unframe(bytes(blob), 0)


# -- sector accounting invariant (§5.2) -------------------------------------


def _assert_sector_invariant(log):
    from repro.storage.disk import SECTOR_BYTES

    assert (
        log.stats.wasted_bytes
        == log.stats.flushed_sectors * SECTOR_BYTES - log.stats.flushed_bytes
    )


def test_sector_invariant_unbatched_sequence():
    sim, log, _ = make_log()

    def run():
        for i in range(7):
            lsn, _ = log.append(rec(i))
            yield from log.flush(lsn)

    sim.run_process(run())
    assert log.stats.physical_flushes == 7
    _assert_sector_invariant(log)


def test_sector_invariant_batched_sequence():
    sim, log, _ = make_log(batch_ms=6.0)

    def client(i):
        yield i * 2.0
        lsn, _ = log.append(rec(i))
        yield from log.flush(lsn)

    for i in range(9):
        sim.spawn(client(i))
    sim.run()
    assert 1 <= log.stats.physical_flushes < 9
    _assert_sector_invariant(log)


def test_sector_invariant_mixed_sizes():
    from repro.core.records import FillerRecord

    sim, log, _ = make_log()

    def run():
        for i, size in enumerate([10, 700, 3000, 64]):
            log.append(rec(i))
            lsn, _ = log.append(FillerRecord(size))
            yield from log.flush(lsn)

    sim.run_process(run())
    _assert_sector_invariant(log)


# -- flush through the trailing filler (record_overhead_bytes) --------------


def test_flush_covers_record_overhead_filler():
    """With per-record overhead modeled, flush(lsn) must make the filler
    frame appended with the record durable too, so append's reported
    size and the durable boundary agree."""
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(0))
    log = LogManager(sim, store, disk, record_overhead_bytes=100)
    log.start(group=ProcessGroup("msp"))

    def run():
        lsn, size = log.append(rec(1))
        yield from log.flush(lsn)
        return lsn, size

    lsn, size = sim.run_process(run())
    assert store.durable_end == lsn + size
    assert log.stats.flushed_bytes == size


def test_flush_overhead_fillers_interleaved():
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(0))
    log = LogManager(sim, store, disk, record_overhead_bytes=64)
    log.start(group=ProcessGroup("msp"))

    def run():
        sizes = []
        for i in range(3):
            lsn, size = log.append(rec(i))
            yield from log.flush(lsn)
            sizes.append((lsn, size))
        return sizes

    sizes = sim.run_process(run())
    last_lsn, last_size = sizes[-1]
    assert store.durable_end == last_lsn + last_size == store.end
    _assert_sector_invariant(log)


# -- window reader re-extension ---------------------------------------------


def test_window_reader_reextends_for_straddling_record():
    """A record whose frame extends past the window captured at an
    earlier fetch must invalidate the window, not be parsed from a
    short read."""
    from repro.core.records import FillerRecord

    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        reader = LogWindowReader(log)
        first = yield from reader.fetch(lsn1)  # window capped at old durable end
        # Grow the log past the old window with a record straddling it.
        lsn2, _ = log.append(FillerRecord(70_000))  # > one 64 KB chunk
        lsn3, _ = log.append(rec(3))
        yield from log.flush()
        straddler = yield from reader.fetch(lsn2)
        tail = yield from reader.fetch(lsn3)
        return first, straddler, tail, log.stats.read_chunks

    first, straddler, tail, chunks = sim.run_process(run())
    assert first == rec(1)
    assert straddler == FillerRecord(70_000)
    assert tail == rec(3)
    assert chunks >= 3  # each re-extension charged a real chunk read


def test_window_reader_window_reextends_to_new_durable_limit():
    """A window capped at the durable limit seen at fetch time is
    re-read at the *current* limit once the log has grown."""
    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        reader = LogWindowReader(log)
        yield from reader.fetch(lsn1)
        end_after_first = reader._window_end
        lsn2, _ = log.append(rec(2))
        yield from log.flush(lsn2)
        record = yield from reader.fetch(lsn2)
        return end_after_first, reader._window_end, record

    end1, end2, record = sim.run_process(run())
    assert record == rec(2)
    assert end1 == log.store.durable_end - len(frame(rec(2).encode()))
    assert end2 == log.store.durable_end


# -- decode cache ------------------------------------------------------------


def test_scan_populates_decode_cache_for_fetches():
    """Records decoded by the analysis scan are not decoded again by
    per-session replay fetches (the double-decode the cache removes)."""
    sim, log, _ = make_log()

    def run():
        lsns = []
        for i in range(20):
            lsn, _ = log.append(rec(i))
            lsns.append(lsn)
        yield from log.flush()
        yield from log.scan_durable(0)
        reader = LogWindowReader(log)
        hits_before = log.stats.decode_cache_hits
        for lsn in lsns:
            record = yield from reader.fetch(lsn)
            assert record is not None
        return log.stats.decode_cache_hits - hits_before

    hits = sim.run_process(run())
    assert hits == 20


def test_decode_cache_invalidated_by_crash():
    """LSNs can be reused for different bytes after a crash truncates
    the volatile tail — stale cache entries must not survive."""
    sim, log, _ = make_log()

    def run():
        lsn1, _ = log.append(rec(1))
        yield from log.flush(lsn1)
        lsn2, _ = log.append(rec(2))
        log.record_at(lsn2)  # cached while still volatile
        log.store.crash()
        lsn2b, _ = log.append(rec(99))
        assert lsn2b == lsn2  # same LSN, different record
        yield from log.flush(lsn2b)
        record, _next = log.record_at(lsn2b)
        return record

    record = sim.run_process(run())
    assert record == rec(99)


def test_decode_cache_is_bounded():
    sim, log, _ = make_log()
    log.decode_cache_records = 8

    def run():
        lsns = []
        for i in range(50):
            lsn, _ = log.append(rec(i))
            lsns.append(lsn)
        yield from log.flush()
        for lsn in lsns:
            log.record_at(lsn)
        return lsns

    lsns = sim.run_process(run())
    assert len(log._decode_cache) == 8
    # The most recently parsed records are the ones retained.
    assert set(log._decode_cache) == set(lsns[-8:])
