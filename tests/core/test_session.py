"""Unit tests for session state and checkpoint round-trips."""

from repro.core.dv import RecoveryTable, StateId
from repro.core.session import Session, SessionStatus


def test_initial_state():
    s = Session("c#0", "msp1")
    assert s.status is SessionStatus.NORMAL
    assert s.next_expected_seq == 0
    assert s.buffered_reply is None
    assert s.state_lsn is None
    assert s.scan_start_lsn() is None


def test_account_record_updates_everything():
    s = Session("c#0", "msp1")
    s.account_record(lsn=100, size=64, epoch=0)
    assert s.state_lsn == 100
    assert s.first_lsn == 100
    assert s.bytes_since_ckpt == 64
    assert s.dv.get("msp1") == StateId(0, 100)
    assert s.position_stream.positions() == [100]
    s.account_record(lsn=200, size=32, epoch=0)
    assert s.state_lsn == 200
    assert s.first_lsn == 100
    assert s.bytes_since_ckpt == 96


def test_account_record_signals_spill():
    s = Session("c#0", "msp1", buffer_capacity=2)
    assert s.account_record(1, 8, 0) is False
    assert s.account_record(2, 8, 0) is True


def test_scan_start_prefers_checkpoint():
    s = Session("c#0", "msp1")
    s.account_record(100, 8, 0)
    assert s.scan_start_lsn() == 100
    s.last_ckpt_lsn = 500
    assert s.scan_start_lsn() == 500


def test_outgoing_session_ids_deterministic():
    s = Session("c#0", "msp1")
    out1 = s.outgoing_to("msp2")
    out2 = s.outgoing_to("msp2")
    assert out1 is out2
    assert out1.session_id == "c#0>msp2"
    assert out1.next_seq == 0


def test_checkpoint_roundtrip():
    s = Session("c#0", "msp1")
    s.variables = {"a": b"1", "b": b"2"}
    s.buffered_reply = b"last"
    s.buffered_reply_seq = 4
    s.next_expected_seq = 5
    s.outgoing_to("msp2").next_seq = 9
    s.account_record(100, 8, 0)

    record = s.build_checkpoint()
    fresh = Session("c#0", "msp1")
    fresh.restore_checkpoint(record)
    assert fresh.variables == {"a": b"1", "b": b"2"}
    assert fresh.buffered_reply == b"last"
    assert fresh.buffered_reply_seq == 4
    assert fresh.next_expected_seq == 5
    assert fresh.outgoing["msp2"].session_id == "c#0>msp2"
    assert fresh.outgoing["msp2"].next_seq == 9
    assert not fresh.dv
    assert fresh.state_lsn is None


def test_checkpoint_with_no_reply():
    s = Session("c#0", "msp1")
    record = s.build_checkpoint()
    fresh = Session("c#0", "msp1")
    fresh.restore_checkpoint(record)
    assert fresh.buffered_reply is None
    assert fresh.buffered_reply_seq == -1


def test_account_checkpoint_clears_dv_and_stream():
    s = Session("c#0", "msp1")
    s.account_record(100, 8, 0)
    s.account_record(200, 8, 0)
    s.account_checkpoint(300)
    assert s.last_ckpt_lsn == 300
    assert s.bytes_since_ckpt == 0
    assert len(s.position_stream) == 0
    assert not s.dv
    assert s.msp_ckpts_since_own_ckpt == 0


def test_reset_fresh():
    s = Session("c#0", "msp1")
    s.variables["x"] = b"1"
    s.next_expected_seq = 7
    s.outgoing_to("msp2")
    s.reset_fresh()
    assert s.variables == {}
    assert s.next_expected_seq == 0
    assert s.outgoing == {}


def test_is_orphan_prunes_resolved():
    s = Session("c#0", "msp1")
    s.account_record(100, 8, 0)
    s.dv.observe("msp2", StateId(0, 40))
    table = RecoveryTable()
    table.record("msp2", 0, 50)  # our 40 survived the crash
    assert not s.is_orphan(table)
    # The resolved entry was pruned away entirely.
    assert s.dv.get("msp2") is None
    s.dv.observe("msp2", StateId(0, 60))
    assert s.is_orphan(table)
