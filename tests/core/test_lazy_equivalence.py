"""Property: lazy recovery is semantically identical to eager recovery.

Hypothesis drives crash times and seeds; the same workload runs once
under ``recovery_mode: eager`` and once under ``lazy``, and the final
*semantic* state — per-session variables, exactly-once bookkeeping
(``next_expected_seq``, buffered reply bytes), and shared-variable
values — must be byte-identical.  Timings and LSNs legitimately differ
(lazy opens earlier and replays in a different order); what a client or
a service method can observe must not.

The companion property — the backward chain walk visits exactly the
records the analysis scan attributes to the session — is checked
*inside* every lazy recovery: ``recovery_merge_assert`` (on by default
here) makes ``recover_session`` cross-check the walked positions
against the scan-derived stream and raise on any difference, so each
example exercises it once per recovered session.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def encode(n):
    return n.to_bytes(8, "big")


def decode(raw):
    return int.from_bytes(raw, "big")


def mixed_method(ctx, argument):
    yield from ctx.compute(0.2)
    yield from ctx.update_shared("total", lambda raw: encode(decode(raw) + 1))
    raw = yield from ctx.get_session_var("n")
    n = decode(raw or encode(0)) + 1
    yield from ctx.set_session_var("n", encode(n))
    return encode(n)


def run_mode(mode, seed, crash_times, n_clients, n_calls, logging_mode="value"):
    """Run the workload in one recovery mode; return its semantic state."""
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    config = RecoveryConfig(recovery_mode=mode, logging_mode=logging_mode)
    assert config.recovery_merge_assert  # the chain-walk cross-check is armed
    msp = MiddlewareServer(
        sim, net, "msp1", ServiceDomainConfig(), config=config, rng=rng
    )
    msp.register_service("work", mixed_method)
    msp.register_shared("total", encode(0))
    msp.start_process()
    clients = [EndClient(sim, net, f"client{i}") for i in range(n_clients)]
    sessions = [c.open_session("msp1") for c in clients]
    results = [[] for _ in clients]

    def driver(idx):
        def process():
            yield 1.0
            for _ in range(n_calls):
                result = yield from sessions[idx].call("work", b"")
                results[idx].append(decode(result.payload))

        return process()

    def chaos():
        previous = 0.0
        for t in crash_times:
            yield max(0.1, t - previous)
            previous = t
            msp.crash()
            msp.restart_process()

    procs = [sim.spawn(driver(idx)) for idx in range(n_clients)]
    sim.spawn(chaos())
    for proc in procs:
        sim.run_until_process(proc, limit=3_600_000)

    # Drain the pump (lazy) / let recoveries quiesce (eager) so the
    # comparison sees fully recovered state in both modes.
    def settle():
        for _ in range(400):
            if not any(
                s.lazy_pending or s.recovery_pending
                for s in msp.sessions.values()
            ):
                return
            yield 50.0

    sp = sim.spawn(settle())
    sim.run_until_process(sp, limit=sim.now + 600_000)

    assert msp.stats.served_before_recovery == 0
    for idx in range(n_clients):
        assert results[idx] == list(range(1, n_calls + 1)), (
            mode, idx, results[idx]
        )
    return {
        "sessions": {
            sid: (
                dict(s.variables),
                s.next_expected_seq,
                s.buffered_reply,
                s.buffered_reply_seq,
                s.buffered_reply_error,
            )
            for sid, s in sorted(msp.sessions.items())
        },
        "shared": {name: sv.value for name, sv in sorted(msp.shared.items())},
    }


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    crash_times=st.lists(
        st.floats(5.0, 300.0), min_size=1, max_size=3
    ).map(sorted),
)
def test_lazy_final_state_equals_eager(seed, crash_times):
    """Arbitrary crash schedules: lazy ≡ eager on all observable state."""
    eager = run_mode("eager", seed, crash_times, n_clients=1, n_calls=10)
    lazy = run_mode("lazy", seed, crash_times, n_clients=1, n_calls=10)
    assert lazy == eager


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    crash_times=st.lists(
        st.floats(5.0, 250.0), min_size=1, max_size=2
    ).map(sorted),
)
def test_logging_modes_times_recovery_modes_agree(seed, crash_times):
    """PR 8 modes matrix: command and adaptive logging, under both
    recovery modes, land on the same semantic state as the value/eager
    baseline.  ``mixed_method``'s RMW is deterministic and commutative
    and its return value never reaches the reply, so it satisfies the
    §16 command contract; the session-variable counter and the buffered
    replies pin exactly-once across the regimes."""
    baseline = run_mode("eager", seed, crash_times, n_clients=1, n_calls=8)
    for logging_mode in ("value", "command", "adaptive"):
        for recovery_mode in ("eager", "lazy"):
            if (logging_mode, recovery_mode) == ("value", "eager"):
                continue
            state = run_mode(
                recovery_mode, seed, crash_times,
                n_clients=1, n_calls=8, logging_mode=logging_mode,
            )
            assert state == baseline, (logging_mode, recovery_mode)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    crash_times=st.lists(
        st.floats(5.0, 250.0), min_size=1, max_size=2
    ).map(sorted),
)
def test_lazy_equals_eager_multi_session(seed, crash_times):
    """Several sessions (pump + inline interleavings vary with the
    schedule): every session's state and the shared counter agree."""
    eager = run_mode("eager", seed, crash_times, n_clients=3, n_calls=6)
    lazy = run_mode("lazy", seed, crash_times, n_clients=3, n_calls=6)
    assert lazy == eager
