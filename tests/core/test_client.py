"""Unit tests for the end-client exactly-once protocol."""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import FaultModel, Network
from repro.sim import RngRegistry, Simulator


def echo_method(ctx, argument):
    yield from ctx.compute(0.1)
    return b"echo:" + argument


def build(seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=RecoveryConfig(), rng=rng
    )
    msp.register_service("echo", echo_method)
    client = EndClient(sim, net, "client")
    return sim, net, msp, client


def test_session_ids_unique_per_client():
    _sim, _net, _msp, client = build()
    a = client.open_session("server")
    b = client.open_session("server")
    assert a.id != b.id
    assert a.id.startswith("client#")


def test_explicit_session_id():
    _sim, _net, _msp, client = build()
    s = client.open_session("server", session_id="alice")
    assert s.id == "alice"


def test_call_returns_payload_and_timing():
    sim, _net, msp, client = build()
    boot = msp.start_process()
    sim.run_until_process(boot, limit=60_000)
    session = client.open_session("server")

    def driver():
        yield 1.0
        result = yield from session.call("echo", b"hi")
        return result

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=60_000)
    result = p.result
    assert result.payload == b"echo:hi"
    assert result.response_time_ms > 0
    assert result.attempts == 1
    assert session.next_seq == 1


def test_resend_on_total_loss_until_delivered():
    sim, net, msp, client = build(seed=3)
    net.set_link("client", "server", faults=FaultModel(loss_prob=0.6))
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        result = yield from session.call("echo", b"x")
        return result

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert p.result.payload == b"echo:x"
    assert p.result.attempts > 1
    assert client.stats.resends > 0


def test_stats_accumulate_across_calls():
    sim, _net, msp, client = build()
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        for i in range(5):
            yield from session.call("echo", bytes([i]))

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=60_000)
    assert client.stats.calls == 5
    assert len(client.stats.response_times) == 5
    assert client.stats.mean_response_ms > 0
    assert client.stats.max_response_ms >= client.stats.mean_response_ms


def test_busy_reply_sleeps_and_retries():
    """A server mid-recovery answers busy; the client sleeps 100 ms."""
    sim, _net, msp, client = build()
    boot = msp.start_process()
    sim.run_until_process(boot, limit=60_000)
    session = client.open_session("server")

    def driver():
        yield 1.0
        yield from session.call("echo", b"a")
        # Crash and restart; the first resends land during recovery.
        msp.crash()
        msp.restart_process()
        result = yield from session.call("echo", b"b")
        return result

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=600_000)
    assert p.result.payload == b"echo:b"
    # Recovery + restart means at least one retry cycle happened.
    assert p.result.response_time_ms > 50


def test_end_session_round_trip():
    sim, _net, msp, client = build()
    msp.start_process()
    session = client.open_session("server")

    def driver():
        yield 1.0
        yield from session.call("echo", b"x")
        result = yield from session.end()
        return result

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=60_000)
    assert session.id not in msp.sessions
    # The reply port was released.
    assert client.node.inbox(session._reply_port) is None


def test_unknown_method_rejected_permanently():
    """An unknown method gets a definitive error reply, not a retry
    loop, and no worker thread dies."""
    sim, _net, msp, client = build()
    boot = msp.start_process()
    sim.run_until_process(boot, limit=60_000)
    session = client.open_session("server")

    def driver():
        yield 1.0
        bad = yield from session.call("no_such_method", b"")
        good = yield from session.call("echo", b"still alive")
        return bad, good

    p = sim.spawn(driver())
    sim.run_until_process(p, limit=60_000)
    bad, good = p.result
    assert bad.error
    assert bad.payload == b"unknown method"
    assert not good.error
    assert good.payload == b"echo:still alive"
    assert msp.stats.protocol_errors == 1
