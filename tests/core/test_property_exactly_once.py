"""Property-based exactly-once verification under adversarial schedules.

Hypothesis drives crash times, crash targets, network fault rates and
seeds; the invariant is always the same: every completed client request
took effect on session state and shared state exactly once, and the
servers end up consistent.  This is the paper's §2.3 correctness
criterion checked over a whole space of schedules rather than a few
hand-picked ones.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import FaultModel, Network
from repro.sim import RngRegistry, Simulator


def encode(n):
    return n.to_bytes(8, "big")


def decode(raw):
    return int.from_bytes(raw, "big")


def front_method(ctx, argument):
    yield from ctx.compute(0.2)
    yield from ctx.update_shared("f", lambda raw: encode(decode(raw) + 1))
    yield from ctx.call("backend", "bump", argument)
    raw = yield from ctx.get_session_var("n")
    n = decode(raw or encode(0)) + 1
    yield from ctx.set_session_var("n", encode(n))
    return encode(n)


def bump_method(ctx, argument):
    yield from ctx.compute(0.2)
    new = yield from ctx.update_shared("b", lambda raw: encode(decode(raw) + 1))
    return new


def run_schedule(seed, crash_times, crash_front, faults, same_domain=True):
    """Run 12 requests against two MSPs under the given schedule."""
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    if same_domain:
        domains = ServiceDomainConfig([["front", "backend"]])
    else:
        domains = ServiceDomainConfig([["front"], ["backend"]])
    front = MiddlewareServer(sim, net, "front", domains, config=RecoveryConfig(), rng=rng)
    backend = MiddlewareServer(sim, net, "backend", domains, config=RecoveryConfig(), rng=rng)
    front.register_service("work", front_method)
    front.register_shared("f", encode(0))
    backend.register_service("bump", bump_method)
    backend.register_shared("b", encode(0))
    if faults:
        net.set_link("client", "front", faults=FaultModel(
            loss_prob=0.1, duplicate_prob=0.1, reorder_prob=0.1
        ))
    front.start_process()
    backend.start_process()
    client = EndClient(sim, net, "client")
    session = client.open_session("front")
    results = []

    def driver():
        yield 1.0
        for _ in range(12):
            result = yield from session.call("work", b"")
            results.append(decode(result.payload))

    def chaos():
        previous = 0.0
        for t, target_front in crash_times:
            yield max(0.1, t - previous)
            previous = t
            target = front if (target_front and crash_front) else backend
            target.crash()
            target.restart_process()

    p = sim.spawn(driver())
    sim.spawn(chaos())
    sim.run_until_process(p, limit=3_600_000)

    assert results == list(range(1, 13)), f"client saw {results}"
    # Let recoveries quiesce, then check shared counters.
    def settle():
        yield 2_000.0

    sp = sim.spawn(settle())
    sim.run_until_process(sp, limit=sim.now + 600_000)
    assert front.running and backend.running
    f = decode(front.shared["f"].value)
    b = decode(backend.shared["b"].value)
    assert f == 12, f"front counter {f} != 12"
    assert b == 12, f"backend counter {b} != 12"


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    crash_times=st.lists(
        st.tuples(st.floats(5.0, 400.0), st.booleans()), min_size=0, max_size=3
    ).map(lambda ts: sorted(ts)),
)
def test_exactly_once_random_backend_crashes(seed, crash_times):
    """Backend crashes at arbitrary times never break exactly-once."""
    run_schedule(seed, crash_times, crash_front=False, faults=False)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    crash_times=st.lists(
        st.tuples(st.floats(5.0, 400.0), st.booleans()), min_size=1, max_size=3
    ).map(lambda ts: sorted(ts)),
)
def test_exactly_once_random_crashes_either_msp(seed, crash_times):
    """Crashes of either MSP (or both) never break exactly-once."""
    run_schedule(seed, crash_times, crash_front=True, faults=False)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    crash_times=st.lists(
        st.tuples(st.floats(5.0, 300.0), st.booleans()), min_size=0, max_size=2
    ).map(lambda ts: sorted(ts)),
)
def test_exactly_once_with_network_faults_and_crashes(seed, crash_times):
    """Message loss/duplication/reordering plus crashes: still exactly-once."""
    run_schedule(seed, crash_times, crash_front=True, faults=True)


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 1000),
    crash_times=st.lists(
        st.tuples(st.floats(5.0, 400.0), st.booleans()), min_size=1, max_size=2
    ).map(lambda ts: sorted(ts)),
)
def test_exactly_once_pessimistic_domains(seed, crash_times):
    """The same invariant holds with each MSP in its own domain."""
    run_schedule(seed, crash_times, crash_front=True, faults=False, same_domain=False)
