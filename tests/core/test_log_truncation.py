"""Tests for checkpoint-driven log truncation at the LogManager level."""

import random

import pytest

from repro.core.log_manager import LogManager, LogWindowReader
from repro.core.records import AnnouncementRecord
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, LogTruncatedError, StableStore


def make_log(segment_bytes=64, seed=0):
    sim = Simulator()
    store = StableStore(segment_bytes=segment_bytes)
    disk = Disk(sim, rng=random.Random(seed))
    log = LogManager(sim, store, disk)
    log.start(group=ProcessGroup("msp"))
    return sim, log


def rec(i):
    return AnnouncementRecord(f"msp{i}", epoch=0, recovered_lsn=i)


def fill(sim, log, n):
    """Append n records, flush, return their LSNs."""
    lsns = []

    def run():
        last = None
        for i in range(n):
            lsn, _ = log.append(rec(i))
            lsns.append(lsn)
            last = lsn
        yield from log.flush(last)

    sim.run_process(run())
    return lsns


def truncate(sim, log, floor):
    return sim.run_process(log.truncate_to(floor))


def test_truncate_to_advances_floor_and_recycles():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    recycled = truncate(sim, log, lsns[5])
    assert log.truncate_lsn == lsns[5]
    assert recycled == lsns[5] // 64
    assert log.stats.truncations == 1
    assert log.stats.truncated_bytes == lsns[5]
    assert log.stats.live_bytes == log.store.live_bytes
    # Records at and above the floor still parse.
    record, _ = log.record_at(lsns[5])
    assert record.recovered_lsn == 5


def test_truncate_to_caps_at_durable_end():
    sim, log = make_log()
    lsns = fill(sim, log, 4)
    durable = log.store.durable_end
    log.append(rec(99))  # volatile tail
    truncate(sim, log, log.store.end)  # asks beyond durable
    assert log.truncate_lsn == durable


def test_record_at_below_floor_raises():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    truncate(sim, log, lsns[5])
    log._decode_cache.clear()
    with pytest.raises(LogTruncatedError):
        log.record_at(lsns[0])


def test_truncation_evicts_cached_decodes_below_floor():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    for lsn in lsns:
        log.record_at(lsn)  # populate the decode cache
    assert set(log._decode_cache) == set(lsns)
    truncate(sim, log, lsns[5])
    # Entries below the floor are gone — a cached decode must not
    # outlive the bytes it was decoded from.
    assert set(log._decode_cache) == set(lsns[5:])
    with pytest.raises(LogTruncatedError):
        log.record_at(lsns[2])


def test_cache_eviction_without_segment_recycling():
    # The floor can advance within a segment (nothing recycled); cached
    # decodes below it must still be dropped.
    sim, log = make_log(segment_bytes=1 << 20)
    lsns = fill(sim, log, 10)
    for lsn in lsns:
        log.record_at(lsn)
    recycled = truncate(sim, log, lsns[5])
    assert recycled == 0
    assert set(log._decode_cache) == set(lsns[5:])
    with pytest.raises(LogTruncatedError):
        log.record_at(lsns[2])


def test_scan_durable_below_floor_raises():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    truncate(sim, log, lsns[5])

    def scan():
        return (yield from log.scan_durable(0))

    with pytest.raises(LogTruncatedError):
        sim.run_process(scan())


def test_scan_from_floor_returns_live_suffix():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    truncate(sim, log, lsns[5])

    def scan():
        return (yield from log.scan_durable(log.truncate_lsn))

    records = sim.run_process(scan())
    assert [lsn for lsn, _ in records] == lsns[5:]
    assert [r.recovered_lsn for _, r in records] == list(range(5, 10))


def test_scan_stitches_frames_straddling_segment_boundaries():
    # Segments far smaller than a frame: every frame straddles at least
    # one boundary, exercising the stitched single-frame path.
    sim, log = make_log(segment_bytes=16)
    lsns = fill(sim, log, 8)

    def scan():
        return (yield from log.scan_durable(0))

    records = sim.run_process(scan())
    assert [lsn for lsn, _ in records] == lsns
    assert [r.recovered_lsn for _, r in records] == list(range(8))


def test_scan_equivalent_across_segment_sizes():
    # The segmented scan must parse exactly what a monolithic scan
    # would, for any segment size relative to the frame size.
    def scanned(segment_bytes):
        sim, log = make_log(segment_bytes=segment_bytes)
        fill(sim, log, 12)

        def scan():
            return (yield from log.scan_durable(0))

        return [
            (lsn, r.recovered_lsn) for lsn, r in sim.run_process(scan())
        ]

    reference = scanned(1 << 20)
    for size in (16, 32, 64, 100, 128):
        assert scanned(size) == reference


def test_window_reader_invalidated_by_truncation():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    reader = LogWindowReader(log)

    def fetches():
        first = yield from reader.fetch(lsns[0])
        assert first.recovered_lsn == 0
        yield from log.truncate_to(lsns[5])
        # The window's low end was recycled: fetches below raise ...
        with pytest.raises(LogTruncatedError):
            yield from reader.fetch(lsns[1])
        # ... and live fetches re-read instead of trusting the window.
        chunks_before = log.stats.read_chunks
        record = yield from reader.fetch(lsns[6])
        assert record.recovered_lsn == 6
        assert log.stats.read_chunks == chunks_before + 1

    sim.run_process(fetches())


def test_truncate_floor_at_exact_segment_boundary():
    sim, log = make_log(segment_bytes=64)

    def run():
        # Pad so some record starts exactly at a segment boundary.
        while True:
            lsn, _ = log.append(rec(0))
            if log.store.end % 64 == 0:
                break
        boundary = log.store.end
        for i in range(4):
            log.append(rec(i))
        yield from log.flush()
        yield from log.truncate_to(boundary)
        return boundary

    boundary = sim.run_process(run())
    assert log.truncate_lsn == boundary
    assert boundary % 64 == 0
    # Every segment below the boundary is gone, none above.
    assert log.store.live_bytes == log.store.end - boundary
    record, _ = log.record_at(boundary)
    assert record.recovered_lsn == 0


def test_truncation_survives_crash():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    truncate(sim, log, lsns[5])
    log.store.crash()
    assert log.truncate_lsn == lsns[5]
    with pytest.raises(LogTruncatedError):
        log.record_at(lsns[0])


def test_trim_accounting_on_disk():
    sim, log = make_log(segment_bytes=64)
    lsns = fill(sim, log, 10)
    truncate(sim, log, lsns[5])
    recycled = log.stats.recycled_segments
    assert recycled > 0
    assert log.disk.stats.trims == 1
    assert log.disk.stats.sectors_trimmed > 0
