"""Partitioned log (DESIGN.md §14): DV-ordered recovery merge,
consistent cut, per-partition torn tails, decode-cache shard isolation,
and the recovery rewind that keeps excised suffixes off the disk.

The hypothesis properties pin the Zhou-et-al. partial-order argument:
the merged N-partition scan must agree with the single-partition scan
on everything replay can observe — each session's subsequence (the
per-session streams analysis dispatches over) and the cross-record
dependency order (write chains and DV edges).  Any two streams equal
in that partial order replay to the same recovered state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.crash_recovery import (
    assert_merge_order,
    compute_partition_cut,
    merge_partition_scans,
)
from repro.core.dv import DependencyVector
from repro.core.errors import RecoveryMergeError
from repro.core.log_manager import LogManager
from repro.core.plsn import make_plsn, plsn_offset, plsn_partition
from repro.core.records import RequestRecord
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, StableStore
from repro.storage.stable import StableStoreError
from repro.wire import frame

#: ``bench/session-0..7`` cover all residues of crc32 mod 8 (and hence
#: mod 4 and mod 2): every partition count in {1, 2, 4, 8} sees a
#: balanced spread of these session ids.
SESSIONS = tuple(f"bench/session-{i}" for i in range(8))


def make_partitioned_log(nparts: int, **kwargs) -> tuple[Simulator, LogManager]:
    sim = Simulator()
    stores = [
        StableStore(name="log" if i == 0 else f"log.p{i}") for i in range(nparts)
    ]
    disks = [Disk(sim, rng=random.Random(7 + i)) for i in range(nparts)]
    log = LogManager(sim, stores, disks, **kwargs)
    log.start(group=ProcessGroup("test"))
    return sim, log


def _append_history(log: LogManager, rng: random.Random, n: int):
    """Append ``n`` records with random intra-epoch dependencies.

    Returns ``(plsns, deps, partition_records)``: the append-order plsn
    list, each record's dependency indices, and the per-partition
    ``(offset, record)`` lists a durable scan would produce.
    """
    plsns: list[int] = []
    deps: list[list[int]] = []
    partition_records: dict[int, list] = {p: [] for p in range(log.nparts)}
    for i in range(n):
        session_id = rng.choice(SESSIONS)
        dep_indices = []
        if i and rng.random() < 0.6:
            dep_indices.append(rng.randrange(i))
        dv = DependencyVector(
            {"M": {0: plsns[j]} for j in dep_indices} if dep_indices else None
        )
        record = RequestRecord(
            session_id=session_id,
            seq=i,
            method="m",
            argument=b"",
            sender_dv=dv,
        )
        lsn, _size = log.append(record)
        plsns.append(lsn)
        deps.append(dep_indices)
        partition_records[plsn_partition(lsn)].append((plsn_offset(lsn), record))
    return plsns, deps, partition_records


@settings(deadline=None, max_examples=40)
@given(
    seed=st.integers(0, 10_000),
    nparts=st.integers(2, 8),
    n=st.integers(5, 60),
)
def test_merge_matches_single_partition_replay(seed, nparts, n):
    """Fully durable log: the DV-ordered merge must reproduce exactly
    the partial order a single-partition scan replays."""
    rng = random.Random(seed)
    _sim, log = make_partitioned_log(nparts)
    plsns, deps, partition_records = _append_history(log, rng, n)
    durable_ends = {p: log.partitions[p].store.end for p in range(nparts)}
    cut = compute_partition_cut("M", 0, partition_records, durable_ends)
    # Nothing was lost, so the cut excises nothing.
    assert cut == durable_ends
    merged = merge_partition_scans("M", 0, partition_records, cut)
    assert_merge_order("M", 0, merged)
    assert len(merged) == n
    # Same records: the single-partition scan order IS the append order.
    merged_keys = [(record.seq, record.session_id) for _lsn, record in merged]
    assert sorted(merged_keys) == sorted(
        (record.seq, record.session_id)
        for pairs in partition_records.values()
        for _offset, record in pairs
    )
    # Per-session subsequences equal the append order (seq is the
    # append index, so within a session it must be increasing).
    for session_id in SESSIONS:
        seqs = [seq for seq, sid in merged_keys if sid == session_id]
        assert seqs == sorted(seqs)
    # Every dependency precedes its dependent in the merged order.
    position = {lsn: k for k, (lsn, _record) in enumerate(merged)}
    for i, dep_indices in enumerate(deps):
        for j in dep_indices:
            assert position[plsns[j]] < position[plsns[i]], (i, j)


@settings(deadline=None, max_examples=40)
@given(
    seed=st.integers(0, 10_000),
    nparts=st.integers(2, 8),
    n=st.integers(5, 60),
)
def test_consistent_cut_is_dependency_closed(seed, nparts, n):
    """Crash-shaped durability: each partition loses a random suffix.
    The cut must keep a dependency-closed prefix set, and the merge of
    the survivors must still be a valid dependency order."""
    rng = random.Random(seed)
    _sim, log = make_partitioned_log(nparts)
    plsns, deps, partition_records = _append_history(log, rng, n)
    durable_ends = {}
    for p in range(nparts):
        pairs = partition_records[p]
        keep = rng.randint(0, len(pairs))
        if keep < len(pairs):
            durable_ends[p] = pairs[keep][0]
            partition_records[p] = pairs[:keep]
        else:
            durable_ends[p] = log.partitions[p].store.end
    cut = compute_partition_cut("M", 0, partition_records, durable_ends)
    for p in range(nparts):
        assert 0 <= cut[p] <= durable_ends[p]
    kept = {
        lsn
        for lsn in plsns
        if plsn_offset(lsn) < cut[plsn_partition(lsn)]
    }
    # Dependency closure: a surviving record's dependencies survived.
    for i, dep_indices in enumerate(deps):
        if plsns[i] in kept:
            for j in dep_indices:
                assert plsns[j] in kept, (i, j)
    filtered = {
        p: [(off, rec) for off, rec in pairs if off < cut[p]]
        for p, pairs in partition_records.items()
    }
    merged = merge_partition_scans("M", 0, filtered, cut)
    assert_merge_order("M", 0, merged)
    assert {lsn for lsn, _record in merged} == kept


def test_merge_raises_on_unsatisfiable_dependency():
    """A record whose dependency lies beyond the cut of another
    partition must stall the merge loudly, not replay out of order."""
    record_a = RequestRecord(
        session_id=SESSIONS[0], seq=0, method="m", argument=b"",
        sender_dv=DependencyVector({"M": {0: make_plsn(1, 500)}}),
    )
    partition_records = {0: [(0, record_a)], 1: []}
    cut = {0: 100, 1: 0}
    with pytest.raises(RecoveryMergeError):
        merge_partition_scans("M", 0, partition_records, cut)


def _run(sim, gen):
    return sim.run_process(gen)


def test_scan_stops_at_each_partitions_torn_tail():
    """Each partition's analysis scan must stop cleanly at its own torn
    tail — a crash mid-flush tears partitions independently."""
    sim, log = make_partitioned_log(4)
    per_partition = {p: [] for p in range(4)}
    for i in range(24):
        session_id = SESSIONS[i % 8]
        record = RequestRecord(
            session_id=session_id, seq=i, method="m", argument=b"x" * 20,
            sender_dv=DependencyVector(),
        )
        lsn, _size = log.append(record)
        per_partition[plsn_partition(lsn)].append(lsn)
    _run(sim, log.flush(None))
    # Tear every partition differently: append one more record, then
    # make only a prefix of its frame durable before crashing.
    for p, tear in zip(range(4), (1, 3, 7, 11)):
        store = log.partitions[p].store
        whole_end = store.durable_end
        record = RequestRecord(
            session_id=SESSIONS[p], seq=100 + p, method="m", argument=b"y" * 30,
            sender_dv=DependencyVector(),
        )
        unit = log.partitions[p]
        offset = store.append(frame(record.encode()))
        assert offset == whole_end
        store.mark_durable(min(store.end, whole_end + tear))
        store.crash()
        scanned = _run(sim, log.scan_durable(make_plsn(p, 0)))
        assert [lsn for lsn, _r in scanned] == per_partition[p]
        assert unit.store.durable_end >= whole_end


def test_decode_cache_shards_are_isolated():
    """A hot partition's scan churn must not evict another partition's
    cached decodes: shards are per partition with a split budget."""
    sim, log = make_partitioned_log(4, decode_cache_records=8)
    assert log._cache_shard_records == 2
    # 'bench/session-0' routes to partition 1, 'bench/session-7' to 2.
    hot, cold = "bench/session-0", "bench/session-7"
    assert log.partition_of_session(hot) == 1
    assert log.partition_of_session(cold) == 2
    cold_lsns = []
    for i in range(2):
        lsn, _size = log.append(
            RequestRecord(cold, i, "m", b"", DependencyVector())
        )
        cold_lsns.append(lsn)
    for i in range(20):
        log.append(RequestRecord(hot, i, "m", b"", DependencyVector()))
    _run(sim, log.flush(None))
    _run(sim, log.scan_durable(make_plsn(2, 0)))
    cached_cold = dict(log.partitions[2].cache)
    assert set(cached_cold) == set(cold_lsns)
    # Churn the hot shard far past its capacity...
    for _ in range(3):
        _run(sim, log.scan_durable(make_plsn(1, 0)))
    assert len(log.partitions[1].cache) <= 2
    # ...and the cold shard is untouched: a re-scan hits every entry.
    assert dict(log.partitions[2].cache) == cached_cold
    hits_before = log.stats.decode_cache_hits
    _run(sim, log.scan_durable(make_plsn(2, 0)))
    assert log.stats.decode_cache_hits == hits_before + len(cold_lsns)


# -- rewind: recovery's consistent cut leaves no durable residue ------------


def test_stable_store_rewind_discards_durable_suffix():
    store = StableStore(name="s", segment_bytes=16)
    store.append(b"a" * 10)
    store.append(b"b" * 30)
    store.mark_durable(40)
    store.rewind(10)
    assert store.end == 10
    assert store.durable_end == 10
    assert store.read(0, 10) == b"a" * 10
    with pytest.raises(StableStoreError):
        store.read(5, 10)
    # Reused offsets hold the new incarnation's bytes, not stale ones.
    assert store.append(b"c" * 6) == 10
    assert store.read(10, 6) == b"c" * 6


def test_stable_store_rewind_at_segment_boundary_drops_tail_segment():
    store = StableStore(name="s", segment_bytes=16)
    store.append(b"x" * 40)
    store.mark_durable(40)
    before = store.segment_count
    store.rewind(32)
    assert store.segment_count == before - 1
    assert store.end == 32
    assert store.read(16, 16) == b"x" * 16


def test_stable_store_rewind_bounds():
    store = StableStore(name="s", segment_bytes=16)
    store.append(b"x" * 32)
    store.mark_durable(32)
    store.truncate(16)
    with pytest.raises(StableStoreError):
        store.rewind(40)  # past the end
    with pytest.raises(StableStoreError):
        store.rewind(8)  # below the truncation floor
    store.rewind(16)  # exactly the floor is legal (empties the store)
    assert store.end == 16


def test_log_manager_rewind_trims_caches_and_stats():
    sim, log = make_partitioned_log(4)
    lsns = []
    for i in range(16):
        lsn, _size = log.append(
            RequestRecord(SESSIONS[i % 8], i, "m", b"", DependencyVector())
        )
        lsns.append(lsn)
    _run(sim, log.flush(None))
    _run(sim, log.scan_durable(make_plsn(1, 0)))  # warm partition 1's cache
    assert log.partitions[1].cache
    cuts = [unit.store.durable_end for unit in log.partitions]
    cuts[1] = 0
    log.rewind(cuts)
    assert log.partitions[1].store.end == 0
    assert log.partitions[1].store.durable_end == 0
    assert not log.partitions[1].cache
    for p in (0, 2, 3):
        assert log.partitions[p].store.durable_end == cuts[p]
    assert log.stats.live_bytes == sum(
        unit.store.live_bytes for unit in log.partitions
    )
