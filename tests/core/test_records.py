"""Round-trip tests for every log record type."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dv import DependencyVector, StateId
from repro.core.records import (
    NO_LSN,
    AnnouncementRecord,
    EosRecord,
    MspCheckpointRecord,
    ReplyRecord,
    RequestRecord,
    SessionCheckpointRecord,
    SessionEndRecord,
    SvCheckpointRecord,
    SvReadRecord,
    SvWriteRecord,
    decode_record,
    session_of,
)


def sample_dv():
    dv = DependencyVector()
    dv.observe("msp1", StateId(0, 123))
    dv.observe("msp2", StateId(1, 456))
    return dv


def roundtrip(record):
    return decode_record(record.encode())


def test_request_record_roundtrip():
    rec = RequestRecord("c1:0", 7, "method_a", b"arg-bytes", sender_dv=sample_dv())
    back = roundtrip(rec)
    assert back == rec


def test_request_record_no_dv():
    rec = RequestRecord("c1:0", 7, "m", b"x", sender_dv=None)
    assert roundtrip(rec) == rec


def test_reply_record_roundtrip():
    rec = ReplyRecord("c1:0", "msp1:out:3", 2, b"reply", sender_dv=sample_dv())
    assert roundtrip(rec) == rec


def test_sv_read_record_roundtrip():
    rec = SvReadRecord("c1:0", "SV0", b"\x01" * 128, variable_dv=sample_dv())
    assert roundtrip(rec) == rec


def test_sv_write_record_roundtrip():
    rec = SvWriteRecord("c1:0", "SV0", b"v", writer_dv=sample_dv(), prev_write_lsn=42)
    assert roundtrip(rec) == rec


def test_sv_write_no_prev():
    rec = SvWriteRecord("c1:0", "SV0", b"v", writer_dv=DependencyVector())
    back = roundtrip(rec)
    assert back.prev_write_lsn == NO_LSN


def test_sv_checkpoint_roundtrip():
    rec = SvCheckpointRecord("SV3", b"checkpointed-value")
    assert roundtrip(rec) == rec


def test_session_checkpoint_roundtrip():
    rec = SessionCheckpointRecord(
        session_id="c1:0",
        variables={"a": b"1", "b": b"\x00" * 512},
        buffered_reply=b"last-reply",
        buffered_reply_seq=9,
        next_expected_seq=10,
        outgoing_next_seq={"msp1:out:1": 4},
    )
    assert roundtrip(rec) == rec


def test_session_checkpoint_none_reply():
    rec = SessionCheckpointRecord(
        session_id="s",
        variables={},
        buffered_reply=None,
        buffered_reply_seq=0,
        next_expected_seq=0,
        outgoing_next_seq={},
    )
    assert roundtrip(rec) == rec


def test_msp_checkpoint_roundtrip():
    rec = MspCheckpointRecord(
        recovered_snapshot={"msp2": {0: 100, 1: 200}},
        session_start_lsns={"c1:0": 50, "c2:0": 75},
        sv_start_lsns={"SV0": 10},
        epoch=2,
    )
    assert roundtrip(rec) == rec


def test_msp_checkpoint_min_lsn():
    rec = MspCheckpointRecord(
        recovered_snapshot={},
        session_start_lsns={"a": 50},
        sv_start_lsns={"v": 10},
        epoch=0,
    )
    assert rec.min_lsn(own_lsn=99) == 10
    empty = MspCheckpointRecord({}, {}, {}, 0)
    assert empty.min_lsn(own_lsn=99) == 99


def test_eos_record_roundtrip():
    rec = EosRecord("c1:0", orphan_lsn=1234)
    assert roundtrip(rec) == rec


def test_announcement_roundtrip():
    rec = AnnouncementRecord("msp2", epoch=1, recovered_lsn=888)
    assert roundtrip(rec) == rec


def test_session_end_roundtrip():
    rec = SessionEndRecord("c1:0")
    assert roundtrip(rec) == rec


def test_unknown_kind_rejected():
    from repro.wire import Encoder

    with pytest.raises(ValueError):
        decode_record(Encoder().uint(99).finish())


def test_session_of():
    dv = DependencyVector()
    assert session_of(RequestRecord("s", 1, "m", b"", None)) == "s"
    assert session_of(ReplyRecord("s", "o", 1, b"", None)) == "s"
    assert session_of(SvReadRecord("s", "v", b"", dv)) == "s"
    assert session_of(SvWriteRecord("s", "v", b"", dv)) == "s"
    assert session_of(SvCheckpointRecord("v", b"")) is None
    assert session_of(AnnouncementRecord("m", 0, 0)) is None


@given(
    st.text(max_size=20),
    st.integers(min_value=0, max_value=2**32),
    st.text(max_size=20),
    st.binary(max_size=300),
)
def test_request_roundtrip_property(sid, seq, method, arg):
    rec = RequestRecord(sid, seq, method, arg, sender_dv=None)
    assert roundtrip(rec) == rec


@given(
    st.dictionaries(st.text(max_size=10), st.binary(max_size=100), max_size=5),
    st.one_of(st.none(), st.binary(max_size=50)),
    st.integers(min_value=0, max_value=1000),
)
def test_session_checkpoint_roundtrip_property(variables, reply, seq):
    rec = SessionCheckpointRecord(
        session_id="s",
        variables=variables,
        buffered_reply=reply,
        buffered_reply_seq=seq,
        next_expected_seq=seq + 1,
        outgoing_next_seq={},
    )
    assert roundtrip(rec) == rec


def test_sv_order_record_roundtrip():
    from repro.core.records import SvOrderRecord

    read = SvOrderRecord("s", "v", version=7, is_write=False)
    write = SvOrderRecord("s", "v", version=8, is_write=True)
    assert roundtrip(read) == read
    assert roundtrip(write) == write
    assert session_of(read) == "s"


def test_sv_checkpoint_version_roundtrip():
    rec = SvCheckpointRecord("v", b"value", version=42)
    back = roundtrip(rec)
    assert back.version == 42


def test_session_checkpoint_error_flag_roundtrip():
    rec = SessionCheckpointRecord(
        session_id="s",
        variables={},
        buffered_reply=b"unknown method",
        buffered_reply_seq=3,
        next_expected_seq=4,
        outgoing_next_seq={},
        buffered_reply_error=True,
    )
    back = roundtrip(rec)
    assert back.buffered_reply_error is True
