"""Unit tests for replay: divergence detection, switch-to-normal.

These drive ReplayContext directly against hand-built logs to pin down
the §4.1 replay rules without a full two-MSP scenario.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.context import NormalContext, ReplayContext, ReplayCursor
from repro.core.errors import SessionProtocolError
from repro.core.msp import MiddlewareServer
from repro.core.records import SvReadRecord, SvWriteRecord
from repro.core.dv import DependencyVector
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def build_msp():
    sim = Simulator()
    rng = RngRegistry(0)
    net = Network(sim, rng=rng)
    msp = MiddlewareServer(
        sim, net, "server", ServiceDomainConfig(), config=RecoveryConfig(), rng=rng
    )
    msp.register_shared("v", b"init")
    boot = msp.start_process()
    sim.run_until_process(boot, limit=60_000)
    return sim, msp


def test_replay_read_returns_logged_value():
    sim, msp = build_msp()
    session = msp.session_for("s")
    # Log a read record with a specific historical value.
    record = SvReadRecord("s", "v", b"historical", DependencyVector())
    lsn, size = msp.log.append(record)
    session.account_record(lsn, size, msp.epoch)

    cursor = ReplayCursor(msp, list(session.position_stream.positions()))
    ctx = ReplayContext(msp, session, cursor)

    def run():
        value = yield from ctx.read_shared("v")
        return value

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    # The live variable holds b"init", but replay reads the log.
    assert p.result == b"historical"
    assert msp.shared["v"].value == b"init"


def test_replay_write_is_skipped():
    sim, msp = build_msp()
    session = msp.session_for("s")
    record = SvWriteRecord("s", "v", b"old-write", DependencyVector())
    lsn, size = msp.log.append(record)
    session.account_record(lsn, size, msp.epoch)

    cursor = ReplayCursor(msp, list(session.position_stream.positions()))
    ctx = ReplayContext(msp, session, cursor)

    def run():
        yield from ctx.write_shared("v", b"whatever")

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    p.result  # raises if the replay failed
    # The live variable is untouched: the variable recovers separately.
    assert msp.shared["v"].value == b"init"


def test_replay_divergence_raises():
    """The log says 'read v' but the method writes: nondeterminism bug."""
    sim, msp = build_msp()
    session = msp.session_for("s")
    record = SvReadRecord("s", "v", b"x", DependencyVector())
    lsn, size = msp.log.append(record)
    session.account_record(lsn, size, msp.epoch)

    cursor = ReplayCursor(msp, list(session.position_stream.positions()))
    ctx = ReplayContext(msp, session, cursor)

    def run():
        yield from ctx.write_shared("v", b"boom")

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    with pytest.raises(SessionProtocolError, match="divergence"):
        p.result


def test_replay_switches_to_normal_when_stream_exhausted():
    sim, msp = build_msp()
    session = msp.session_for("s")
    cursor = ReplayCursor(msp, [])
    ctx = ReplayContext(msp, session, cursor)
    assert ctx.is_replay

    def run():
        value = yield from ctx.read_shared("v")
        return value

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    # Stream empty: the read ran live against the real variable.
    assert p.result == b"init"
    assert ctx.switched
    assert not ctx.is_replay


def test_replay_session_vars_behave_normally():
    sim, msp = build_msp()
    session = msp.session_for("s")
    cursor = ReplayCursor(msp, [])
    ctx = ReplayContext(msp, session, cursor)

    def run():
        yield from ctx.set_session_var("k", b"1")
        value = yield from ctx.get_session_var("k")
        return value

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert p.result == b"1"
    assert session.variables["k"] == b"1"


def test_normal_context_reports_not_replay():
    sim, msp = build_msp()
    session = msp.session_for("s")
    ctx = NormalContext(msp, session)
    assert ctx.is_replay is False
    assert ctx.session_id == "s"
