"""Property-based tests on the physical log's durability invariant.

For ANY interleaving of appends, flushes and crashes, the stable store
must end at a record boundary, every surviving record must parse back
identically, and the survivors must be exactly a prefix of what was
flushed.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.log_manager import LogManager
from repro.core.records import AnnouncementRecord, EosRecord, SvCheckpointRecord
from repro.sim import ProcessGroup, Simulator
from repro.storage import Disk, StableStore
from repro.wire import FrameReader


def make_log(seed=0):
    sim = Simulator()
    store = StableStore()
    disk = Disk(sim, rng=random.Random(seed))
    log = LogManager(sim, store, disk)
    log.start(group=ProcessGroup("t"))
    return sim, log


def sample_record(i: int):
    kind = i % 3
    if kind == 0:
        return AnnouncementRecord(f"m{i}", epoch=i % 4, recovered_lsn=i * 7)
    if kind == 1:
        return EosRecord(f"s{i % 5}", orphan_lsn=i * 3)
    return SvCheckpointRecord(f"v{i % 3}", bytes([i % 256]) * (i % 50 + 1), version=i)


# Operations: ("append",) | ("flush",) | ("crash",)
operation = st.sampled_from(["append", "flush", "crash"])


@settings(max_examples=60, deadline=None)
@given(st.lists(operation, min_size=1, max_size=40), st.integers(0, 100))
def test_durable_prefix_invariant(operations, seed):
    sim, log = make_log(seed)
    persisted: list = []  # records proven durable by a flush
    volatile: list = []   # appended but not yet flushed
    counter = [0]

    def driver():
        for op in operations:
            if op == "append":
                record = sample_record(counter[0])
                counter[0] += 1
                log.append(record)
                volatile.append(record)
            elif op == "flush":
                yield from log.flush(None)
                persisted.extend(volatile)
                volatile.clear()
            else:  # crash: the volatile tail evaporates
                log.store.crash()
                volatile.clear()

    process = sim.spawn(driver())
    sim.run()
    process.result  # re-raise driver failures

    # The durable log parses back to exactly the records proven durable,
    # in order — nothing lost, nothing resurrected, nothing torn.
    data = log.store.read(0, log.store.durable_end)
    from repro.core.records import decode_record

    parsed = [decode_record(p) for _o, p in FrameReader(data)]
    assert parsed == persisted
    assert log.store.durable_end <= log.store.end


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 60), st.integers(0, 100))
def test_scan_after_flush_returns_all(count, seed):
    sim, log = make_log(seed)
    records = [sample_record(i) for i in range(count)]

    def driver():
        for record in records:
            log.append(record)
        yield from log.flush(None)
        found = yield from log.scan_durable(0)
        return [r for _lsn, r in found]

    process = sim.spawn(driver())
    sim.run()
    assert process.result == records


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 40), st.integers(1, 39), st.integers(0, 50))
def test_partial_flush_keeps_prefix(total, flush_at, seed):
    if flush_at >= total:
        flush_at = total - 1
    sim, log = make_log(seed)
    records = [sample_record(i) for i in range(total)]
    lsns = []

    def driver():
        for record in records:
            lsn, _ = log.append(record)
            lsns.append(lsn)
        yield from log.flush(lsns[flush_at])

    sim.run_process(driver())
    log.store.crash()
    data = log.store.read(0, log.store.durable_end)
    from repro.core.records import decode_record

    parsed = [decode_record(p) for _o, p in FrameReader(data)]
    # At least records [0..flush_at] survive (flush covers through that
    # record), and survivors are a clean prefix.
    assert len(parsed) >= flush_at + 1
    assert parsed == records[: len(parsed)]
