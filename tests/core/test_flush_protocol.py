"""Unit tests for the distributed log flush protocol (§3.1)."""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.dv import DependencyVector, StateId
from repro.core.errors import FlushFailed
from repro.core.msp import MiddlewareServer
from repro.core.records import AnnouncementRecord
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def build_pair(seed=0):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    domains = ServiceDomainConfig([["msp1", "msp2"]])
    msp1 = MiddlewareServer(sim, net, "msp1", domains, config=RecoveryConfig(), rng=rng)
    msp2 = MiddlewareServer(sim, net, "msp2", domains, config=RecoveryConfig(), rng=rng)
    p1 = msp1.start_process()
    p2 = msp2.start_process()
    sim.run_until_process(p1, limit=10_000)
    sim.run_until_process(p2, limit=10_000)
    return sim, msp1, msp2


def dv_of(*entries):
    dv = DependencyVector()
    for msp, epoch, lsn in entries:
        dv.observe(msp, StateId(epoch, lsn))
    return dv


def test_empty_dv_is_noop():
    sim, msp1, _msp2 = build_pair()
    dv = DependencyVector()

    def run():
        writes_before = msp1.disk.stats.writes
        yield from msp1.distributed_flush(dv, "test")
        return msp1.disk.stats.writes - writes_before

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert p.result == 0


def test_local_leg_flushes_own_log():
    sim, msp1, _msp2 = build_pair()
    lsn, _ = msp1.log.append(AnnouncementRecord("x", 0, 0))
    dv = dv_of(("msp1", 0, lsn))

    def run():
        yield from msp1.distributed_flush(dv, "test")

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert msp1.log.is_durable(lsn)
    # The covered entry was pruned from the DV.
    assert dv.get("msp1") is None


def test_remote_leg_flushes_peer_log():
    sim, msp1, msp2 = build_pair()
    lsn, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))
    dv = dv_of(("msp2", 0, lsn))

    def run():
        yield from msp1.distributed_flush(dv, "test")

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert msp2.log.is_durable(lsn)
    assert dv.get("msp2") is None


def test_parallel_legs_overlap():
    """Two legs run in parallel: total time < sum of the legs."""
    sim, msp1, msp2 = build_pair()
    lsn1, _ = msp1.log.append(AnnouncementRecord("x", 0, 0))
    lsn2, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))
    dv = dv_of(("msp1", 0, lsn1), ("msp2", 0, lsn2))

    def run():
        start = sim.now
        yield from msp1.distributed_flush(dv, "test")
        return sim.now - start

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    # Each flush costs ~8 ms (up to ~15 with an unlucky OS seek); a
    # remote round adds ~2-3 ms.  Sequential would be the sum (~20-30);
    # parallel is the max of the legs.
    assert p.result < 22.0


def test_flush_fails_when_remote_state_lost():
    """The remote crashed losing the requested LSN: FlushFailed."""
    sim, msp1, msp2 = build_pair()
    lsn, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))
    dv = dv_of(("msp2", 0, lsn))
    # Crash msp2 before anything was flushed, then restart it.
    msp2.crash()
    msp2.restart_process()

    def run():
        try:
            yield from msp1.distributed_flush(dv, "test")
        except FlushFailed:
            return "failed"
        return "ok"

    p = sim.spawn(run())
    sim.run_until_process(p, limit=60_000)
    assert p.result == "failed"


def test_flush_succeeds_for_durable_old_epoch_state():
    """State flushed before the crash survives it: the flush succeeds
    even though the remote has moved to a new epoch."""
    sim, msp1, msp2 = build_pair()
    lsn, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))

    def prepare():
        yield from msp2.log.flush(lsn)

    p = sim.spawn(prepare())
    sim.run_until_process(p, limit=10_000)
    msp2.crash()
    msp2.restart_process()
    dv = dv_of(("msp2", 0, lsn))

    def run():
        try:
            yield from msp1.distributed_flush(dv, "test")
        except FlushFailed:
            return "failed"
        return "ok"

    p = sim.spawn(run())
    sim.run_until_process(p, limit=60_000)
    assert p.result == "ok"


def test_flush_retries_while_target_down():
    """The target is down; the leg retries until it recovers, then
    resolves from the announcement."""
    sim, msp1, msp2 = build_pair()
    lsn, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))

    def prepare():
        yield from msp2.log.flush(lsn)

    p = sim.spawn(prepare())
    sim.run_until_process(p, limit=10_000)
    msp2.crash()  # down, not restarted yet
    dv = dv_of(("msp2", 0, lsn))
    outcome = {}

    def run():
        try:
            yield from msp1.distributed_flush(dv, "test")
            outcome["result"] = "ok"
        except FlushFailed:
            outcome["result"] = "failed"

    sim.spawn(run())

    def restarter():
        yield 300.0  # several retry timeouts pass first
        msp2.restart_process()

    sim.spawn(restarter())
    sim.run(until=30_000)
    assert outcome["result"] == "ok"


def test_fail_fast_on_known_orphan():
    sim, msp1, _msp2 = build_pair()
    msp1.table.record("msp2", 0, 10)
    dv = dv_of(("msp2", 0, 99))

    def run():
        start = sim.now
        try:
            yield from msp1.distributed_flush(dv, "test")
        except FlushFailed:
            return sim.now - start
        return None

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert p.result == 0.0  # no waiting: decided from local knowledge
