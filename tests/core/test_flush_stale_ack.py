"""Regression tests: a stale flush ack must not re-send the request.

The old ``_remote_leg`` handled any reply with a mismatched ``req_id``
by falling through to a full retry iteration — re-sending the
FlushRequest and making the target flush again.  A duplicated ack (or
one raced by a timeout resend) therefore doubled flush traffic; under a
duplication-faulted link every ack bred another request.  The fixed leg
discards the stale ack and keeps waiting for the matching one.
"""

from repro.core.messages import FlushReply
from repro.core.records import AnnouncementRecord
from repro.net.network import Envelope

from tests.core.test_flush_protocol import build_pair, dv_of


def _count_flush_requests(msp):
    """Wrap the MSP's flush-service inbox to count arriving requests."""
    inbox = msp.node.bind("flush")  # create-or-fetch: the daemon reuses it
    counted = []
    original = inbox.put

    def counting_put(envelope):
        counted.append(envelope.payload)
        original(envelope)

    inbox.put = counting_put
    return counted


def _inject_stale_ack(sim, msp, period_ms=0.05):
    """Drop one stale FlushReply into the first pending flush-ack port.

    ``req_id=0`` is never allocated (the counter starts at 1), so the
    injected reply can only ever be stale.  The injector polls because
    the leg binds its ack port only once the flush starts.
    """
    injected = []

    def injector():
        while not injected:
            for port, inbox in list(msp.node._ports.items()):
                if port.startswith("flush-ack:"):
                    inbox.put(
                        Envelope(
                            source="test",
                            destination=msp.name,
                            port=port,
                            payload=FlushReply(req_id=0, ok=False),
                            size_bytes=0,
                        )
                    )
                    injected.append(port)
                    break
            yield period_ms

    sim.spawn(injector())
    return injected


def test_stale_ack_does_not_resend_request():
    sim, msp1, msp2 = build_pair()
    lsn, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))
    dv = dv_of(("msp2", 0, lsn))
    requests = _count_flush_requests(msp2)
    injected = _inject_stale_ack(sim, msp1)

    def run():
        yield from msp1.distributed_flush(dv, "test")
        return "ok"

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert p.result == "ok"
    assert injected, "the stale ack was never injected"
    # The flush succeeded off the one real ack; the stale one was
    # discarded without another FlushRequest round (the bug doubled it).
    assert len(requests) == 1
    assert msp1.stats.stale_flush_acks == 1
    assert msp2.log.is_durable(lsn)


def test_stale_ack_counted_in_metrics_when_traced():
    from repro.trace import Tracer

    sim, msp1, msp2 = build_pair()
    tracer = Tracer(sim).attach()
    lsn, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))
    dv = dv_of(("msp2", 0, lsn))
    _inject_stale_ack(sim, msp1)

    def run():
        yield from msp1.distributed_flush(dv, "test")

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert tracer.metrics.counters["flush.stale_acks"].value == 1
    assert any(e.name == "flush.stale-ack" for e in tracer.events)


def test_matching_ack_still_resolves_normally():
    # Control: without injection the leg behaves exactly as before.
    sim, msp1, msp2 = build_pair()
    lsn, _ = msp2.log.append(AnnouncementRecord("x", 0, 0))
    dv = dv_of(("msp2", 0, lsn))
    requests = _count_flush_requests(msp2)

    def run():
        yield from msp1.distributed_flush(dv, "test")

    p = sim.spawn(run())
    sim.run_until_process(p, limit=10_000)
    assert len(requests) == 1
    assert msp1.stats.stale_flush_acks == 0
