"""Lazy on-demand session recovery (DESIGN.md §15): interleavings.

The hand-picked schedules ISSUE 7 names: a request arriving for a
session the background pump is mid-replay on, a duplicate request for a
session still being recovered inline, and a chain head pointing below
the truncation floor (which must raise, never serve stale state).  The
broad schedule space is covered by the fuzz battery and the hypothesis
equivalence tests; these pin the specific races.
"""

import pytest

from repro.core import RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.crash_recovery import walk_session_chain
from repro.core.msp import MiddlewareServer
from repro.core.records import NO_LSN
from repro.core.session import SessionStatus
from repro.net import Network
from repro.sim import RngRegistry, Simulator
from repro.storage import LogTruncatedError


def counter_method(ctx, argument):
    yield from ctx.compute(0.2)
    raw = yield from ctx.get_session_var("count")
    count = int.from_bytes(raw or b"\x00", "big") + 1
    yield from ctx.set_session_var("count", count.to_bytes(4, "big"))
    shared_raw = yield from ctx.read_shared("total")
    total = int.from_bytes(shared_raw, "big") + 1
    yield from ctx.write_shared("total", total.to_bytes(8, "big"))
    return count.to_bytes(4, "big")


def lazy_config(**overrides):
    config = RecoveryConfig(recovery_mode="lazy")
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def build_world(seed=0, config=None, n_clients=1):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    domains = ServiceDomainConfig()
    msp = MiddlewareServer(
        sim, net, "msp1", domains, config=config or lazy_config(), rng=rng
    )
    msp.register_service("counter", counter_method)
    msp.register_shared("total", (0).to_bytes(8, "big"))
    clients = [EndClient(sim, net, f"client{i}") for i in range(n_clients)]
    return sim, net, msp, clients


def drive(sim, msp, clients, n_calls, crash_after_calls=()):
    """Each client runs ``n_calls`` on its own session; crash the MSP
    after the first client's i-th call for each i in the crash set.
    Runs until every driver finishes (not a fixed horizon, so the
    checkpoint daemons do not keep mutating state afterwards)."""
    msp.start_process()
    sessions = [c.open_session("msp1") for c in clients]
    results = [[] for _ in clients]

    def driver(idx):
        def process():
            yield 1.0
            for i in range(n_calls):
                result = yield from sessions[idx].call("counter", b"")
                results[idx].append(int.from_bytes(result.payload, "big"))
                if idx == 0 and (i + 1) in crash_after_calls:
                    msp.crash()
                    msp.restart_process()

        return process()

    procs = [sim.spawn(driver(idx)) for idx in range(len(clients))]
    for proc in procs:
        sim.run_until_process(proc, limit=1_200_000)
    return results


def settle(sim, msp):
    """Run until the pump has drained every lazy-pending session."""
    def idle():
        for _ in range(200):
            if not any(s.lazy_pending for s in msp.sessions.values()):
                return
            yield 50.0

    p = sim.spawn(idle())
    sim.run_until_process(p, limit=sim.now + 600_000)


# -- configuration validation -------------------------------------------------


def test_unknown_recovery_mode_rejected():
    from repro.core.errors import SessionProtocolError

    sim, _net, msp, _clients = build_world(
        config=RecoveryConfig(recovery_mode="sideways")
    )
    boot = msp.start_process()
    sim.run_until_process(boot, limit=10_000)
    with pytest.raises(SessionProtocolError, match="recovery_mode"):
        boot.result


def test_lazy_requires_value_logging():
    from repro.core.errors import SessionProtocolError

    sim, _net, msp, _clients = build_world(
        config=lazy_config(sv_logging="access-order")
    )
    boot = msp.start_process()
    sim.run_until_process(boot, limit=10_000)
    with pytest.raises(SessionProtocolError, match="value logging"):
        boot.result


# -- basic lazy crash/restart -------------------------------------------------


def test_lazy_crash_restart_is_exactly_once():
    sim, _net, msp, clients = build_world()
    results = drive(sim, msp, clients, 10, crash_after_calls={3, 7})
    assert results[0] == list(range(1, 11))
    total = int.from_bytes(msp.shared["total"].value, "big")
    assert total == 10
    assert msp.stats.lazy_recoveries >= 1
    assert msp.stats.served_before_recovery == 0


def test_lazy_multi_session_pump_drains_all():
    sim, _net, msp, clients = build_world(n_clients=4)
    results = drive(sim, msp, clients, 6, crash_after_calls={3})
    for r in results:
        assert r == list(range(1, 7))
    settle(sim, msp)
    assert not any(s.lazy_pending for s in msp.sessions.values())
    assert all(
        s.status is SessionStatus.NORMAL for s in msp.sessions.values()
    )
    # Four sessions were pending; the pump (or an arriving request)
    # recovered each exactly once.
    assert msp.stats.lazy_recoveries >= 4
    assert msp.stats.served_before_recovery == 0


# -- inline recovery: a request beats the pump --------------------------------


def test_request_for_unrecovered_session_recovers_inline(monkeypatch):
    """With the pump stubbed out, the only path back to NORMAL is the
    inline hook in ``_handle_request`` — the arriving resend must
    trigger the chain replay and then answer exactly-once."""
    import repro.core.crash_recovery as cr

    monkeypatch.setattr(cr, "spawn_recovery_pump", lambda msp: None)
    sim, _net, msp, clients = build_world()
    results = drive(sim, msp, clients, 8, crash_after_calls={4})
    assert results[0] == list(range(1, 9))
    assert msp.stats.inline_recoveries >= 1
    assert msp.stats.pump_recoveries == 0
    assert msp.stats.served_before_recovery == 0


def test_duplicate_request_during_inline_replay_gets_busy(monkeypatch):
    """Two requests for the same unrecovered session: the first claims
    the session and replays it inline; the client's resend (the second
    request) sees RECOVERING and is answered busy, then retried."""
    import repro.core.crash_recovery as cr

    monkeypatch.setattr(cr, "spawn_recovery_pump", lambda msp: None)
    # Make the replayed chain long (no session checkpoints) and the
    # client impatient, so resends land mid-replay.
    config = lazy_config(session_ckpt_threshold_bytes=None)
    sim, _net, msp, clients = build_world(config=config)
    clients[0].resend_timeout_ms = 5.0
    results = drive(sim, msp, clients, 30, crash_after_calls={25})
    assert results[0] == list(range(1, 31))
    assert msp.stats.inline_recoveries >= 1
    assert msp.stats.served_before_recovery == 0


# -- request arrives while the pump is mid-replay -----------------------------


def test_request_during_pump_replay_is_busy_then_served():
    """The pump claims S and is mid-replay when S's next request
    arrives: the request must not slip in (busy reply), and the resend
    is served from fully recovered state."""
    config = lazy_config(session_ckpt_threshold_bytes=None)
    sim, _net, msp, clients = build_world(config=config)
    clients[0].resend_timeout_ms = 5.0
    busy_before = msp.stats.busy_replies
    results = drive(sim, msp, clients, 40, crash_after_calls={35})
    assert results[0] == list(range(1, 41))
    assert msp.stats.lazy_recoveries >= 1
    assert msp.stats.served_before_recovery == 0
    # The claim raced with live traffic at least once: some request hit
    # a RECOVERING session and was turned away rather than served early.
    assert msp.stats.busy_replies > busy_before


# -- chain head below the truncation floor ------------------------------------


def test_chain_below_truncation_floor_raises():
    """A chain head pointing below the truncation floor must raise
    ``LogTruncatedError`` — never serve stale (partially replayed)
    state.  The floor only ever advances over state captured by a
    checkpoint, so this is unreachable in a correct log; the walk still
    refuses rather than trusting the caller."""
    sim, _net, msp, clients = build_world()
    results = drive(sim, msp, clients, 6)
    assert results[0] == list(range(1, 7))
    session = next(iter(msp.sessions.values()))
    assert session.chain_lsn != NO_LSN
    # Recycle everything durable, stranding the chain below the floor.
    unit = msp.log.partitions[0]
    assert unit.store.truncate(unit.store.durable_end) >= 0
    walk = walk_session_chain(msp, session, session.chain_lsn)
    with pytest.raises(LogTruncatedError):
        for _ in walk:
            pass


# -- stats and counters -------------------------------------------------------


def test_lazy_stats_partition_into_inline_and_pump():
    sim, _net, msp, clients = build_world(n_clients=3)
    drive(sim, msp, clients, 6, crash_after_calls={2, 4})
    settle(sim, msp)
    stats = msp.stats
    assert stats.lazy_recoveries == stats.inline_recoveries + stats.pump_recoveries
    assert stats.served_before_recovery == 0


def test_eager_mode_never_counts_lazy_recoveries():
    sim, _net, msp, clients = build_world(config=RecoveryConfig())
    results = drive(sim, msp, clients, 8, crash_after_calls={4})
    assert results[0] == list(range(1, 9))
    assert msp.stats.lazy_recoveries == 0
    assert msp.stats.inline_recoveries == 0
    assert msp.stats.pump_recoveries == 0
