"""Two-MSP integration: locally optimistic logging and orphan recovery.

Reproduces the paper's Fig. 13 topology: an end client calls
ServiceMethod1 on MSP1, which reads/writes SV0, calls ServiceMethod2 on
MSP2 (which reads/writes SV2 and SV3), then reads/writes SV1 and its
session state.
"""

import pytest

from repro.core import LoggingMode, RecoveryConfig, ServiceDomainConfig
from repro.core.client import EndClient
from repro.core.msp import MiddlewareServer
from repro.net import Network
from repro.sim import RngRegistry, Simulator


def encode(n: int) -> bytes:
    return n.to_bytes(8, "big")


def decode(raw: bytes) -> int:
    return int.from_bytes(raw, "big")


def service_method1(ctx, argument):
    yield from ctx.compute(0.2)
    sv0 = decode((yield from ctx.read_shared("SV0")))
    yield from ctx.write_shared("SV0", encode(sv0 + 1))
    reply = yield from ctx.call("msp2", "service_method2", argument)
    sv1 = decode((yield from ctx.read_shared("SV1")))
    yield from ctx.write_shared("SV1", encode(sv1 + 1))
    raw = yield from ctx.get_session_var("count")
    count = decode(raw or encode(0)) + 1
    yield from ctx.set_session_var("count", encode(count))
    return encode(count)


def service_method2(ctx, argument):
    yield from ctx.compute(0.2)
    sv2 = decode((yield from ctx.read_shared("SV2")))
    yield from ctx.write_shared("SV2", encode(sv2 + 1))
    sv3 = decode((yield from ctx.read_shared("SV3")))
    yield from ctx.write_shared("SV3", encode(sv3 + 1))
    raw = yield from ctx.get_session_var("count")
    count = decode(raw or encode(0)) + 1
    yield from ctx.set_session_var("count", encode(count))
    return encode(count)


def build_world(same_domain=True, seed=0, config1=None, config2=None):
    sim = Simulator()
    rng = RngRegistry(seed)
    net = Network(sim, rng=rng)
    if same_domain:
        domains = ServiceDomainConfig([["msp1", "msp2"]])
    else:
        domains = ServiceDomainConfig([["msp1"], ["msp2"]])
    msp1 = MiddlewareServer(sim, net, "msp1", domains, config=config1 or RecoveryConfig(), rng=rng)
    msp2 = MiddlewareServer(sim, net, "msp2", domains, config=config2 or RecoveryConfig(), rng=rng)
    msp1.register_service("service_method1", service_method1)
    msp1.register_shared("SV0", encode(0))
    msp1.register_shared("SV1", encode(0))
    msp2.register_service("service_method2", service_method2)
    msp2.register_shared("SV2", encode(0))
    msp2.register_shared("SV3", encode(0))
    client = EndClient(sim, net, "client1")
    return sim, net, msp1, msp2, client


def run_calls(sim, msp1, msp2, client, n, before_each=None):
    msp1.start_process()
    msp2.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for i in range(n):
            if before_each:
                before_each(i)
            result = yield from session.call("service_method1", b"x" * 100)
            results.append(decode(result.payload))

    process = sim.spawn(driver())
    sim.run_until_process(process, limit=1_200_000)
    return results


def final_state(msp1, msp2):
    return {
        "SV0": decode(msp1.shared["SV0"].value),
        "SV1": decode(msp1.shared["SV1"].value),
        "SV2": decode(msp2.shared["SV2"].value),
        "SV3": decode(msp2.shared["SV3"].value),
    }


def test_two_msps_basic_flow():
    sim, _net, msp1, msp2, client = build_world()
    results = run_calls(sim, msp1, msp2, client, 10)
    assert results == list(range(1, 11))
    assert final_state(msp1, msp2) == {"SV0": 10, "SV1": 10, "SV2": 10, "SV3": 10}


def test_optimistic_fewer_flushes_than_pessimistic():
    """Paper §5.2: pessimistic needs 3 sequential flushes per request,
    locally optimistic 1 distributed flush (2 in parallel)."""
    sim_o, _n, o1, o2, client_o = build_world(same_domain=True)
    run_calls(sim_o, o1, o2, client_o, 20)
    optimistic_flushes = o1.log.stats.physical_flushes + o2.log.stats.physical_flushes

    sim_p, _n, p1, p2, client_p = build_world(same_domain=False)
    run_calls(sim_p, p1, p2, client_p, 20)
    pessimistic_flushes = p1.log.stats.physical_flushes + p2.log.stats.physical_flushes

    assert optimistic_flushes < pessimistic_flushes
    # ~2 flushes/request optimistic vs ~3 pessimistic.
    assert optimistic_flushes <= 2 * 20 + 4
    assert pessimistic_flushes >= 3 * 20


def test_optimistic_faster_response():
    """Locally optimistic logging reduces response time (paper Fig. 14)."""
    sim_o, _n, o1, o2, client_o = build_world(same_domain=True)
    run_calls(sim_o, o1, o2, client_o, 30)
    sim_p, _n, p1, p2, client_p = build_world(same_domain=False)
    run_calls(sim_p, p1, p2, client_p, 30)
    assert client_o.stats.mean_response_ms < client_p.stats.mean_response_ms


def test_intra_domain_messages_carry_dv():
    sim, _net, msp1, msp2, client = build_world(same_domain=True)
    run_calls(sim, msp1, msp2, client, 3)
    # MSP2 logged request records with attached DVs.
    from repro.core.records import RequestRecord

    found_dv = False
    offset = 0
    while offset < msp2.store.end:
        record, offset = msp2.log.record_at(offset)
        if isinstance(record, RequestRecord) and record.sender_dv is not None:
            found_dv = True
    assert found_dv


def test_cross_domain_messages_carry_no_dv():
    sim, _net, msp1, msp2, client = build_world(same_domain=False)
    run_calls(sim, msp1, msp2, client, 3)
    from repro.core.records import ReplyRecord, RequestRecord

    offset = 0
    while offset < msp2.store.end:
        record, offset = msp2.log.record_at(offset)
        if isinstance(record, (RequestRecord, ReplyRecord)):
            assert record.sender_dv is None


def test_msp2_crash_creates_orphan_and_recovers():
    """The paper's §5.4 forced-crash scenario: MSP2 dies right after its
    reply reaches MSP1, losing unflushed log records; SE1 at MSP1
    becomes an orphan and must roll back; exactly-once still holds."""
    sim, _net, msp1, msp2, client = build_world(same_domain=True)
    msp1.start_process()
    msp2.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for i in range(12):
            result = yield from session.call("service_method1", b"")
            results.append(decode(result.payload))
            if i == 5:
                # Kill MSP2 before the distributed flush of the *next*
                # request completes: its buffered records are lost.
                msp2.crash()
                msp2.restart_process()

    process = sim.spawn(driver())
    sim.run_until_process(process, limit=1_200_000)
    assert results == list(range(1, 13))
    state = final_state(msp1, msp2)
    assert state == {"SV0": 12, "SV1": 12, "SV2": 12, "SV3": 12}


def test_orphan_detected_when_msp2_killed_mid_exchange():
    """Kill MSP2 at the worst moment: after MSP1 merged MSP2's reply DV
    but before anything was flushed — MSP1's session must perform
    orphan recovery (not merely MSP2 crash recovery)."""
    sim, _net, msp1, msp2, client = build_world(same_domain=True)
    msp1.start_process()
    msp2.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for _ in range(8):
            result = yield from session.call("service_method1", b"")
            results.append(decode(result.payload))

    def crasher():
        # Mid-flight of an exchange (~request 2), after reply2 likely
        # arrived at MSP1 but before the end-of-request flush.
        yield 32.0
        msp2.crash()
        msp2.restart_process()

    process = sim.spawn(driver())
    sim.spawn(crasher())
    sim.run_until_process(process, limit=1_200_000)
    assert results == list(range(1, 9))
    state = final_state(msp1, msp2)
    assert state == {"SV0": 8, "SV1": 8, "SV2": 8, "SV3": 8}


@pytest.mark.parametrize("crash_time", [28.0, 30.0, 33.0, 36.0, 40.0, 44.0])
def test_exactly_once_over_crash_timing_sweep(crash_time):
    """Sweep the MSP2 kill instant across a request's lifetime; the
    end-to-end exactly-once guarantee must hold at every point."""
    sim, _net, msp1, msp2, client = build_world(same_domain=True)
    msp1.start_process()
    msp2.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for _ in range(8):
            result = yield from session.call("service_method1", b"")
            results.append(decode(result.payload))

    def crasher():
        yield crash_time
        msp2.crash()
        msp2.restart_process()

    process = sim.spawn(driver())
    sim.spawn(crasher())
    sim.run_until_process(process, limit=1_200_000)
    assert results == list(range(1, 9)), f"crash at {crash_time}"
    assert final_state(msp1, msp2) == {"SV0": 8, "SV1": 8, "SV2": 8, "SV3": 8}


def test_both_msps_crash_concurrently():
    sim, _net, msp1, msp2, client = build_world(same_domain=True)
    msp1.start_process()
    msp2.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for _ in range(10):
            result = yield from session.call("service_method1", b"")
            results.append(decode(result.payload))

    def crasher():
        yield 45.0
        msp2.crash()
        msp1.crash()
        msp1.restart_process()
        msp2.restart_process()

    process = sim.spawn(driver())
    sim.spawn(crasher())
    sim.run_until_process(process, limit=1_200_000)
    assert results == list(range(1, 11))
    assert final_state(msp1, msp2) == {"SV0": 10, "SV1": 10, "SV2": 10, "SV3": 10}


def test_pessimistic_domains_no_orphans_on_crash():
    """Across domains only the crashed MSP recovers; MSP1 sessions never
    become orphans (recovery independence between domains)."""
    sim, _net, msp1, msp2, client = build_world(same_domain=False)
    msp1.start_process()
    msp2.start_process()
    session = client.open_session("msp1")
    results = []

    def driver():
        yield 1.0
        for i in range(10):
            result = yield from session.call("service_method1", b"")
            results.append(decode(result.payload))
            if i == 4:
                msp2.crash()
                msp2.restart_process()

    process = sim.spawn(driver())
    sim.run_until_process(process, limit=1_200_000)
    assert results == list(range(1, 11))
    assert msp1.stats.orphan_recoveries == 0
    assert final_state(msp1, msp2) == {"SV0": 10, "SV1": 10, "SV2": 10, "SV3": 10}
