"""Codec coverage for the lazy-recovery chain fields (DESIGN.md §15).

Two guarantees:

1. **Eager byte-identity** — a record without ``prev_lsn`` (and a
   checkpoint without ``session_chain_heads``) encodes to exactly the
   bytes the pre-lazy codec produced; the golden-bytes suite pins the
   absolute hex, this file pins the *prefix property* (the chain link is
   a pure suffix) so any future reordering of the trailing fields fails
   loudly.
2. **Roundtrip** — every chained record kind carries ``prev_lsn``
   through both the fast per-kind decoder and the general decoder.
"""

import pytest

from repro.core import records as R
from repro.core.dv import DependencyVector, StateId
from repro.core.records import NO_LSN, _decode_record_general, decode_record


def _dv() -> DependencyVector:
    dv = DependencyVector()
    dv.observe("MSP1", StateId(0, 12345))
    return dv


def _chained_records(prev_lsn):
    return [
        R.RequestRecord("s-1", 7, "method", b"arg", sender_dv=_dv(), prev_lsn=prev_lsn),
        R.ReplyRecord("s-1", "out-1", 3, b"pay", sender_dv=_dv(), prev_lsn=prev_lsn),
        R.SvReadRecord("s-1", "v", b"val", variable_dv=_dv(), prev_lsn=prev_lsn),
        R.SvWriteRecord(
            "s-1", "v", b"new", writer_dv=_dv(), prev_write_lsn=64, prev_lsn=prev_lsn
        ),
        R.SvUpdateRecord(
            "s-1", "v", b"old", b"new", variable_dv=_dv(), writer_dv=_dv(),
            prev_write_lsn=64, prev_lsn=prev_lsn,
        ),
        R.SvOrderRecord("s-1", "v", 5, is_write=True, prev_lsn=prev_lsn),
    ]


@pytest.mark.parametrize("decoder", [decode_record, _decode_record_general])
@pytest.mark.parametrize("prev_lsn", [0, 1, 4096, (3 << 48) | 12345, NO_LSN])
def test_prev_lsn_roundtrips(decoder, prev_lsn):
    for record in _chained_records(prev_lsn):
        decoded = decoder(record.encode())
        assert decoded == record, type(record).__name__
        assert decoded.prev_lsn == prev_lsn


@pytest.mark.parametrize("decoder", [decode_record, _decode_record_general])
def test_unchained_records_decode_with_no_prev_lsn(decoder):
    for record in _chained_records(None):
        decoded = decoder(record.encode())
        assert decoded == record, type(record).__name__
        assert decoded.prev_lsn is None


def test_prev_lsn_is_a_pure_suffix():
    """Eager logs stay byte-identical: the chain link only appends."""
    for plain, chained in zip(_chained_records(None), _chained_records(9000)):
        plain_bytes, chained_bytes = plain.encode(), chained.encode()
        assert chained_bytes.startswith(plain_bytes), type(plain).__name__
        assert len(chained_bytes) > len(plain_bytes)


def _ckpt(partition_ends=(), session_chain_heads=None):
    return R.MspCheckpointRecord(
        recovered_snapshot={"msp1": {0: 3}},
        session_start_lsns={"s-1": 100, "s-2": 220},
        sv_start_lsns={"v": 40},
        epoch=3,
        partition_ends=partition_ends,
        session_chain_heads=session_chain_heads or {},
    )


@pytest.mark.parametrize("decoder", [decode_record, _decode_record_general])
@pytest.mark.parametrize("ends", [(), (512,), (512, 0, 77, 4096)])
def test_checkpoint_chain_heads_roundtrip(decoder, ends):
    heads = {"s-1": 480, "s-2": NO_LSN}
    record = _ckpt(partition_ends=ends, session_chain_heads=heads)
    decoded = decoder(record.encode())
    assert decoded == record
    assert decoded.session_chain_heads == heads
    assert tuple(decoded.partition_ends) == tuple(ends)


@pytest.mark.parametrize("decoder", [decode_record, _decode_record_general])
def test_checkpoint_without_heads_is_byte_identical(decoder):
    """An eager checkpoint (no heads) omits both trailing blocks at
    P=1 — the exact pre-lazy encoding — and decodes to empty heads."""
    record = _ckpt()
    decoded = decoder(record.encode())
    assert decoded == record
    assert decoded.session_chain_heads == {}
    # Heads force the ends block (even a 0-length one at P=1), so the
    # two trailing fields stay unambiguous; without heads the P=1
    # encoding must not grow at all.
    with_heads = _ckpt(session_chain_heads={"s-1": 480})
    assert len(record.encode()) < len(with_heads.encode())
    assert with_heads.encode().startswith(record.encode())
