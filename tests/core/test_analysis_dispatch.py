"""Unit tests for the type-keyed analysis-scan dispatch.

``analyze_scan`` is the pure-CPU core of recovery step 2 (§4.3); these
tests drive it with a hand-built record list (no simulator, no disk) and
check the reconstructed :class:`AnalysisState` directly — the dispatch
table must reproduce exactly what the old ``isinstance`` chain did.
"""

from repro.core.crash_recovery import _ANALYSIS_DISPATCH, AnalysisState, analyze_scan
from repro.core.dv import DependencyVector
from repro.core.records import (
    EosRecord,
    FillerRecord,
    LogRecord,
    ReplyRecord,
    RequestRecord,
    SessionCheckpointRecord,
    SessionEndRecord,
    SvOrderRecord,
    SvReadRecord,
)


class _StubMsp:
    """Just enough MSP surface for the handlers that touch shared state."""

    shared: dict = {}


def _request(session_id, seq):
    return RequestRecord(session_id, seq, "m", b"x")


def _session_ckpt(session_id):
    return SessionCheckpointRecord(
        session_id,
        variables={},
        buffered_reply=None,
        buffered_reply_seq=0,
        next_expected_seq=1,
        outgoing_next_seq={},
    )


def test_dispatch_covers_every_recovery_record_kind():
    # Every leaf record type except filler (pure padding) must have a
    # handler; a new record kind without one is a silent recovery bug.
    leaf_types = set(LogRecord.__args__)
    assert set(_ANALYSIS_DISPATCH) == leaf_types - {FillerRecord}


def test_position_stream_membership():
    records = [
        (0, _request("s1", 1)),
        (10, ReplyRecord("s1", "out1", 1, b"r")),
        (20, SvReadRecord("s1", "SV0", b"v", DependencyVector())),
        (30, _request("s2", 1)),
        (40, FillerRecord(16)),  # ignored
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.positions == {"s1": [0, 10, 20], "s2": [30]}
    assert state.session_ckpts == {}
    assert state.ended == set()


def test_session_checkpoint_truncates_positions():
    records = [
        (0, _request("s1", 1)),
        (10, _request("s1", 2)),
        (20, _session_ckpt("s1")),
        (30, _request("s1", 3)),
    ]
    state = analyze_scan(_StubMsp(), records)
    # Only records after the checkpoint matter for replay.
    assert state.positions == {"s1": [30]}
    assert state.session_ckpts == {"s1": 20}


def test_session_end_removes_session():
    records = [
        (0, _request("s1", 1)),
        (10, _session_ckpt("s1")),
        (20, SessionEndRecord("s1")),
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.positions == {}
    assert state.session_ckpts == {}
    assert state.ended == {"s1"}
    # A later checkpoint would resurrect it (new incarnation).
    records.append((30, _session_ckpt("s1")))
    state = analyze_scan(_StubMsp(), records)
    assert state.ended == set()
    assert state.session_ckpts == {"s1": 30}


def test_eos_hides_skipped_records():
    records = [
        (0, _request("s1", 1)),
        (10, _request("s1", 2)),  # the orphan
        (20, _request("s1", 3)),  # skipped work
        (30, EosRecord("s1", orphan_lsn=10)),
    ]
    state = analyze_scan(_StubMsp(), records)
    # Everything at or after the orphan LSN is invisible.
    assert state.positions == {"s1": [0]}


def test_access_order_bookkeeping():
    records = [
        (0, SvOrderRecord("s1", "SV0", version=1, is_write=True)),
        (10, SvOrderRecord("s2", "SV0", version=1, is_write=False)),
        (20, SvOrderRecord("s3", "SV0", version=1, is_write=False)),
        (30, SvOrderRecord("s1", "SV0", version=2, is_write=True)),
    ]
    state = analyze_scan(_StubMsp(), records)
    assert state.order_writes == {"SV0": 2}
    assert state.order_reads == {"SV0": {1: 2}}
    assert state.positions["s1"] == [0, 30]


def test_empty_scan():
    state = analyze_scan(_StubMsp(), [])
    assert state == AnalysisState()
